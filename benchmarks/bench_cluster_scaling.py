"""Cluster scaling: throughput vs transport × ``--workers {1,2,4}``.

The multiprocess tier exists to beat the GIL on multi-core hosts, but its
*correctness* contract — merged scores bit-identical to the single-process
engine on every transport (pipe, shm, tcp), including the ensemble
max-over-bank reduction — must hold on any machine.  So this harness always
asserts parity, and gates the scaling assertions on the host actually having
more than one core: single-core CI still runs everything and records honest
numbers (annotated as dispatch overhead), it just skips the throughput
comparisons, which would only measure fork + carriage overhead there.

The dispatch micro-benchmark is the transport tier's headline claim and is
asserted unconditionally: the shared-memory ring must move at least 10x
fewer bytes through pipes per dispatch than the pipe transport at serving
scale (D=4000, batch 64).  Its full result is committed as JSON next to the
scaling table so the numbers backing the claim are inspectable.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, print_report
from repro.cluster.bench import (
    format_microbench_rows,
    format_scaling_rows,
    run_cluster_scaling_benchmark,
    run_dispatch_microbench,
)
from repro.eval.tables import format_table

#: On a multi-core host the sharded cluster must not fall off a cliff vs the
#: single process (shared CI runners make aggressive speedup floors flaky;
#: regressions in the dispatch path still trip this).
MIN_MULTICORE_RELATIVE_RATE = 0.8

#: With two workers pinned to distinct CPUs the shm cluster must actually
#: scale — the whole point of the transport tier (only asserted when two
#: CPUs exist to pin to).
MIN_PINNED_TWO_WORKER_SPEEDUP = 1.5

#: The committed shm claim: ≥10x fewer pipe bytes per dispatch than pipe.
MIN_SHM_PIPE_BYTE_REDUCTION = 10.0

WORKER_COUNTS = (1, 2, 4)
TRANSPORTS = ("pipe", "shm", "tcp")


@pytest.fixture(scope="module")
def scaling_result():
    return run_cluster_scaling_benchmark(
        dimension=4000,
        num_features=64,
        num_classes=10,
        num_samples=256,
        batch_size=64,
        worker_counts=WORKER_COUNTS,
        transports=TRANSPORTS,
        cpu_affinity="auto",
        seed=0,
    )


@pytest.fixture(scope="module")
def microbench_result():
    return run_dispatch_microbench(
        dimension=4000,
        num_features=64,
        num_classes=10,
        batch_size=64,
        k=10,
        transports=TRANSPORTS,
        seed=0,
    )


def test_cluster_scaling_report(scaling_result):
    """Print and persist the throughput table (cpu count + pin map recorded)."""
    config = scaling_result["config"]
    body = format_table(
        ["mode", "samples/s", "vs single-process", "merged scores"],
        format_scaling_rows(scaling_result),
    )
    body += f"\nhost cpu count: {scaling_result['cpu_count']}"
    body += f"\navailable cpus: {scaling_result['available_cpus']}"
    pinned = {
        key: pins
        for key, pins in scaling_result["pin_maps"].items()
        if pins is not None
    }
    body += f"\npin maps (worker -> cpu): {pinned if pinned else 'not applied'}"
    if scaling_result["scaling_note"]:
        body += f"\nnote: {scaling_result['scaling_note']}"
    print_report(
        (
            f"Cluster scaling (D={config['dimension']}, "
            f"batch={config['batch_size']}, K={config['num_classes']})"
        ),
        body,
    )


def test_merged_scores_are_bit_identical(scaling_result):
    """Parity holds on every transport × worker count + the ensemble merge."""
    parity = scaling_result["parity"]
    for transport in TRANSPORTS:
        for count in WORKER_COUNTS:
            key = f"{transport}:workers-{count}"
            assert parity[key], f"score mismatch for {key}"
        assert parity[f"ensemble:{transport}-workers-2"], (
            f"ensemble max-over-bank merge mismatch on {transport}"
        )


def test_dispatch_microbench_report(microbench_result):
    """Persist the per-dispatch cost table + the raw JSON behind the claim."""
    config = microbench_result["config"]
    body = format_table(
        [
            "transport",
            "us/dispatch",
            "pipe B/disp",
            "shm B/disp",
            "socket B/disp",
            "frames/disp",
            "pipe-byte cut",
        ],
        format_microbench_rows(microbench_result),
    )
    body += f"\nhost cpu count: {microbench_result['cpu_count']}"
    title = (
        f"Cluster dispatch micro-benchmark (D={config['dimension']}, "
        f"batch={config['batch_size']}, k={config['k']})"
    )
    print_report(title, body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(
        RESULTS_DIR,
        f"cluster_dispatch_microbench_d_{config['dimension']}"
        f"_batch_{config['batch_size']}.json",
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(microbench_result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_shm_ring_cuts_pipe_bytes_10x(microbench_result):
    """The shm ring moves ≥10x fewer bytes through pipes than pipe transport."""
    reduction = microbench_result["pipe_byte_reduction"]["shm"]
    assert reduction >= MIN_SHM_PIPE_BYTE_REDUCTION, (
        f"shm transport only cut pipe bytes by {reduction:.1f}x "
        f"(need >= {MIN_SHM_PIPE_BYTE_REDUCTION:.0f}x)"
    )


def test_multicore_scaling(scaling_result):
    """On multi-core hosts the cluster must hold its own against one process."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core host: cluster scaling is not expected to pay off")
    best = max(
        scaling_result["rates"][f"{transport}:workers-{count}"]
        for transport in TRANSPORTS
        for count in WORKER_COUNTS
    )
    floor = MIN_MULTICORE_RELATIVE_RATE * scaling_result["rates"]["single-process"]
    assert best >= floor, (
        f"best cluster rate {best:.0f}/s fell below "
        f"{MIN_MULTICORE_RELATIVE_RATE:.0%} of the single-process rate"
    )


def test_two_pinned_workers_speed_up(scaling_result):
    """With ≥2 CPUs, two pinned shm workers must clear 1.5x single-process."""
    if scaling_result["cpu_count"] < 2:
        pytest.skip(
            "single-CPU host: pinning cannot create parallelism "
            f"(recorded honestly: {scaling_result['scaling_note']})"
        )
    best = max(
        scaling_result["speedups"][f"{transport}:workers-2"]
        for transport in TRANSPORTS
    )
    assert best >= MIN_PINNED_TWO_WORKER_SPEEDUP, (
        f"best 2-pinned-worker speedup {best:.2f}x fell below "
        f"{MIN_PINNED_TWO_WORKER_SPEEDUP}x despite {scaling_result['cpu_count']} CPUs"
    )
