"""Cluster scaling: throughput vs ``--workers {1,2,4}`` at serving scale.

The multiprocess tier exists to beat the GIL on multi-core hosts, but its
*correctness* contract — merged scores bit-identical to the single-process
engine, including the ensemble max-over-bank reduction — must hold on any
machine.  So this harness always asserts parity, and gates the scaling
assertion on the host actually having more than one core (single-core CI
still runs everything and records honest numbers, it just skips the
throughput comparison, which would only measure fork + pipe overhead there).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import print_report
from repro.cluster.bench import format_scaling_rows, run_cluster_scaling_benchmark
from repro.eval.tables import format_table

#: On a multi-core host the sharded cluster must not fall off a cliff vs the
#: single process (shared CI runners make aggressive speedup floors flaky;
#: regressions in the dispatch path still trip this).
MIN_MULTICORE_RELATIVE_RATE = 0.8

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def scaling_result():
    return run_cluster_scaling_benchmark(
        dimension=4000,
        num_features=64,
        num_classes=10,
        num_samples=256,
        batch_size=64,
        worker_counts=WORKER_COUNTS,
        seed=0,
    )


def test_cluster_scaling_report(scaling_result):
    """Print and persist the throughput-vs-workers table."""
    config = scaling_result["config"]
    body = format_table(
        ["mode", "samples/s", "vs single-process", "merged scores"],
        format_scaling_rows(scaling_result),
    )
    body += f"\nhost cpu count: {scaling_result['cpu_count']}"
    print_report(
        (
            f"Cluster scaling (D={config['dimension']}, "
            f"batch={config['batch_size']}, K={config['num_classes']})"
        ),
        body,
    )


def test_merged_scores_are_bit_identical(scaling_result):
    """Parity holds for every worker count and for the ensemble merge path."""
    parity = scaling_result["parity"]
    for count in WORKER_COUNTS:
        assert parity[f"workers-{count}"], f"score mismatch at {count} workers"
    assert parity["ensemble-workers-2"], "ensemble max-over-bank merge mismatch"


def test_multicore_scaling(scaling_result):
    """On multi-core hosts the cluster must hold its own against one process."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core host: cluster scaling is not expected to pay off")
    best = max(
        scaling_result["rates"][f"workers-{count}"] for count in WORKER_COUNTS
    )
    floor = MIN_MULTICORE_RELATIVE_RATE * scaling_result["rates"]["single-process"]
    assert best >= floor, (
        f"best cluster rate {best:.0f}/s fell below "
        f"{MIN_MULTICORE_RELATIVE_RATE:.0%} of the single-process rate"
    )
