"""Figure 3 — basic vs enhanced retraining trajectories on Fashion-MNIST.

The paper's case study (Sec. 3.3) compares the default retraining strategy
against an "enhanced" variant that (a) updates every wrong class that is more
similar than the true class and (b) scales each update by the similarity
error.  Figure 3 shows, over retraining iterations, that the enhanced variant
starts higher, converges higher, and is more stable, while basic retraining
oscillates after its initial convergence.

This benchmark regenerates both trajectories (training and testing accuracy
per iteration) on the Fashion-MNIST substitute and renders them as text
sparklines plus summary statistics (start / final / best / oscillation).

Both strategies ride the packed training path (epoch scoring + ordered
scatter-add over packed words — bit-identical to the sequential loop), and
the report includes the per-iteration wall time each variant recorded in
``RetrainingHistory.iteration_seconds``.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_DIMENSION, BENCH_PROFILE, print_report
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.datasets.registry import get_dataset
from repro.eval.figures import TrajectorySeries, render_trajectories
from repro.hdc.encoders import RecordEncoder

FIG3_ITERATIONS = 40
FIG3_DATASET = "fashion_mnist"


def run_fig3():
    data = get_dataset(FIG3_DATASET, profile=BENCH_PROFILE, seed=3)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=3)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    results = {}
    for name, model in (
        ("basic retraining", RetrainingHDC(iterations=FIG3_ITERATIONS, epsilon=0.0, seed=3)),
        (
            "enhanced retraining",
            EnhancedRetrainingHDC(iterations=FIG3_ITERATIONS, epsilon=0.0, seed=3),
        ),
    ):
        model.fit(
            train_encoded,
            data.train_labels,
            validation_hypervectors=test_encoded,
            validation_labels=data.test_labels,
        )
        results[name] = model.history_
    return results


def test_fig3_retraining_trajectories(benchmark):
    histories = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    iterations = list(range(1, FIG3_ITERATIONS + 1))
    train_series = [
        TrajectorySeries(name, iterations, history.train_accuracy)
        for name, history in histories.items()
    ]
    test_series = [
        TrajectorySeries(name, iterations, history.test_accuracy)
        for name, history in histories.items()
    ]
    print_report(
        f"Figure 3(a) — training trajectory on {FIG3_DATASET} "
        f"(D={BENCH_DIMENSION}, {FIG3_ITERATIONS} iterations)",
        render_trajectories(train_series, x_label="retraining iteration"),
    )
    print_report(
        f"Figure 3(b) — testing trajectory on {FIG3_DATASET}",
        render_trajectories(test_series, x_label="retraining iteration"),
    )

    timing_lines = [
        f"{'variant':<22} {'total (s)':>10} {'mean/iter (s)':>14} {'max/iter (s)':>13}"
    ]
    for name, history in histories.items():
        seconds = history.iteration_seconds
        timing_lines.append(
            f"{name:<22} {sum(seconds):>10.3f} "
            f"{sum(seconds) / len(seconds):>14.5f} {max(seconds):>13.5f}"
        )
    timing_lines.append("")
    timing_lines.append(
        "packed training path (epoch scorer + ordered scatter-add); "
        "bit-identical to the sequential loop"
    )
    print_report(
        f"Figure 3 — per-iteration retraining wall time on {FIG3_DATASET} "
        f"(D={BENCH_DIMENSION})",
        "\n".join(timing_lines),
    )

    for history in histories.values():
        assert len(history.iteration_seconds) == history.iterations

    basic_train = histories["basic retraining"].train_accuracy
    enhanced_train = histories["enhanced retraining"].train_accuracy
    basic_test = histories["basic retraining"].test_accuracy
    enhanced_test = histories["enhanced retraining"].test_accuracy

    # Shape checks mirroring the paper's observations: the enhanced strategy
    # converges at least as high and is at least as stable.
    assert max(enhanced_test) >= max(basic_test) - 0.02
    assert enhanced_train[-1] >= basic_train[-1] - 0.02

    def oscillation(series):
        tail = series[len(series) // 2 :]
        return sum(abs(b - a) for a, b in zip(tail, tail[1:])) / max(len(tail) - 1, 1)

    assert oscillation(enhanced_test) <= oscillation(basic_test) + 0.01
