"""Figure 3 — basic vs enhanced retraining trajectories on Fashion-MNIST.

The paper's case study (Sec. 3.3) compares the default retraining strategy
against an "enhanced" variant that (a) updates every wrong class that is more
similar than the true class and (b) scales each update by the similarity
error.  Figure 3 shows, over retraining iterations, that the enhanced variant
starts higher, converges higher, and is more stable, while basic retraining
oscillates after its initial convergence.

This benchmark regenerates both trajectories (training and testing accuracy
per iteration) on the Fashion-MNIST substitute and renders them as text
sparklines plus summary statistics (start / final / best / oscillation).

All strategies ride the packed training paths (epoch scoring + ordered
scatter-add for the retraining variants, incremental packed scoring for the
ensemble — each bit-identical to its sequential loop), and the committed
report includes the per-iteration wall time every trainer recorded in
``RetrainingHistory.iteration_seconds``, rendered through
:func:`repro.eval.reports.training_timing_report`.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_DIMENSION, BENCH_PROFILE, print_report
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.datasets.registry import get_dataset
from repro.eval.figures import TrajectorySeries, render_trajectories
from repro.eval.reports import training_timing_report
from repro.hdc.encoders import RecordEncoder

FIG3_ITERATIONS = 40
FIG3_DATASET = "fashion_mnist"
#: The ensemble trainer rides along for the timing report only (it records
#: the same ``RetrainingHistory`` timing fields); a smaller pass budget keeps
#: its stochastic training from dominating the benchmark's wall clock.
FIG3_ENSEMBLE_ITERATIONS = 10


def run_fig3():
    data = get_dataset(FIG3_DATASET, profile=BENCH_PROFILE, seed=3)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=3)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    results = {}
    for name, model in (
        ("basic retraining", RetrainingHDC(iterations=FIG3_ITERATIONS, epsilon=0.0, seed=3)),
        (
            "enhanced retraining",
            EnhancedRetrainingHDC(iterations=FIG3_ITERATIONS, epsilon=0.0, seed=3),
        ),
    ):
        model.fit(
            train_encoded,
            data.train_labels,
            validation_hypervectors=test_encoded,
            validation_labels=data.test_labels,
        )
        results[name] = model.history_

    ensemble = MultiModelHDC(
        models_per_class=16, iterations=FIG3_ENSEMBLE_ITERATIONS, seed=3
    )
    ensemble.fit(train_encoded, data.train_labels)
    return results, {**results, "multimodel ensemble": ensemble.history_}


def test_fig3_retraining_trajectories(benchmark):
    histories, timing_histories = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    iterations = list(range(1, FIG3_ITERATIONS + 1))
    train_series = [
        TrajectorySeries(name, iterations, history.train_accuracy)
        for name, history in histories.items()
    ]
    test_series = [
        TrajectorySeries(name, iterations, history.test_accuracy)
        for name, history in histories.items()
    ]
    print_report(
        f"Figure 3(a) — training trajectory on {FIG3_DATASET} "
        f"(D={BENCH_DIMENSION}, {FIG3_ITERATIONS} iterations)",
        render_trajectories(train_series, x_label="retraining iteration"),
    )
    print_report(
        f"Figure 3(b) — testing trajectory on {FIG3_DATASET}",
        render_trajectories(test_series, x_label="retraining iteration"),
    )

    print_report(
        f"Figure 3 — per-iteration training wall time on {FIG3_DATASET} "
        f"(D={BENCH_DIMENSION})",
        training_timing_report(
            timing_histories,
            footnote=(
                "packed training paths (epoch scorer + ordered scatter-add; "
                "incremental packed scoring for the ensemble); each "
                "bit-identical to its sequential loop"
            ),
        ),
    )

    for history in timing_histories.values():
        assert len(history.iteration_seconds) == history.iterations

    basic_train = histories["basic retraining"].train_accuracy
    enhanced_train = histories["enhanced retraining"].train_accuracy
    basic_test = histories["basic retraining"].test_accuracy
    enhanced_test = histories["enhanced retraining"].test_accuracy

    # Shape checks mirroring the paper's observations: the enhanced strategy
    # converges at least as high and is at least as stable.
    assert max(enhanced_test) >= max(basic_test) - 0.02
    assert enhanced_train[-1] >= basic_train[-1] - 0.02

    def oscillation(series):
        tail = series[len(series) // 2 :]
        return sum(abs(b - a) for a, b in zip(tail, tail[1:])) / max(len(tail) - 1, 1)

    assert oscillation(enhanced_test) <= oscillation(basic_test) + 0.01
