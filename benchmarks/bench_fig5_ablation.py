"""Figure 5 — the weight-decay / dropout ablation on CIFAR-10.

The paper trains LeHDC on CIFAR-10 three ways — with both weight decay and
dropout, without dropout, and without weight decay — and plots training and
testing accuracy per epoch.  The headline observation: the fully regularised
model has the *lowest training* accuracy but the *highest testing* accuracy
(both regularisers combat the over-fitting caused by the very wide single
layer), and this benchmark checks that ordering at scaled-down size.
"""

from __future__ import annotations


from benchmarks.conftest import (
    BENCH_DIMENSION,
    BENCH_LEHDC_EPOCHS,
    BENCH_PROFILE,
    print_report,
)
from repro.core.configs import get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import get_dataset
from repro.eval.figures import TrajectorySeries, render_trajectories
from repro.hdc.encoders import RecordEncoder

FIG5_DATASET = "cifar10"
FIG5_EPOCHS = max(BENCH_LEHDC_EPOCHS, 40)


def fig5_variants():
    """The three regularisation variants of Fig. 5 (batch/LR adapted as in Table 1)."""
    paper = get_paper_config(FIG5_DATASET).with_overrides(
        epochs=FIG5_EPOCHS, batch_size=64, learning_rate=0.01
    )
    return {
        "with both": paper,
        "without dropout": paper.with_overrides(dropout_rate=0.0),
        "without weight decay": paper.with_overrides(weight_decay=0.0),
    }


def run_fig5():
    data = get_dataset(FIG5_DATASET, profile=BENCH_PROFILE, seed=5)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=5)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    histories = {}
    final_test = {}
    for name, config in fig5_variants().items():
        model = LeHDCClassifier(config=config, seed=5)
        model.fit(
            train_encoded,
            data.train_labels,
            validation_hypervectors=test_encoded,
            validation_labels=data.test_labels,
        )
        histories[name] = model.history_
        final_test[name] = model.score(test_encoded, data.test_labels)
    return histories, final_test


def test_fig5_weight_decay_dropout_ablation(benchmark):
    histories, final_test = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    epochs = list(range(1, FIG5_EPOCHS + 1))
    train_series = [
        TrajectorySeries(name, epochs, history.train_accuracy)
        for name, history in histories.items()
    ]
    test_series = [
        TrajectorySeries(name, epochs, history.validation_accuracy)
        for name, history in histories.items()
    ]
    print_report(
        f"Figure 5(a) — LeHDC training accuracy on {FIG5_DATASET} "
        f"(D={BENCH_DIMENSION}, {FIG5_EPOCHS} epochs, profile={BENCH_PROFILE})",
        render_trajectories(train_series, x_label="epoch"),
    )
    print_report(
        f"Figure 5(b) — LeHDC testing accuracy on {FIG5_DATASET}",
        render_trajectories(test_series, x_label="epoch"),
    )
    print_report(
        "Figure 5 — final test accuracy per variant",
        "\n".join(f"{name:22s} {accuracy:.4f}" for name, accuracy in final_test.items()),
    )

    # Shape checks from the paper: the fully regularised variant has the best
    # (or tied-best) final test accuracy, and its training accuracy does not
    # exceed the unregularised variants by the end of training.
    best_variant = max(final_test, key=final_test.get)
    assert final_test["with both"] >= final_test[best_variant] - 0.02
    assert (
        histories["with both"].train_accuracy[-1]
        <= max(
            histories["without dropout"].train_accuracy[-1],
            histories["without weight decay"].train_accuracy[-1],
        )
        + 0.02
    )
