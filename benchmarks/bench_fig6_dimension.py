"""Figure 6 — accuracy versus hypervector dimension on Fashion-MNIST and ISOLET.

The paper sweeps ``D`` from 10 000 down to 2 000 for every training strategy
and reports two observations this benchmark checks:

1. LeHDC dominates every other strategy at every dimension;
2. LeHDC at the *smallest* swept dimension already matches the retraining
   strategy at the *largest* (the scalability headline: LeHDC@2 000 ≈
   retraining@10 000) — measured here through
   :meth:`DimensionSweepResult.crossover_dimension`;
3. multi-model can fall below the baseline (the ISOLET panel).

The default sweep is scaled down to ``{1000, 2000, 4000}``; set
``REPRO_BENCH_DIMENSION`` to at least 10 000 and export
``REPRO_BENCH_FIG6_DIMENSIONS=2000,4000,6000,8000,10000`` to mirror the paper
exactly.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import (
    BENCH_LEHDC_EPOCHS,
    BENCH_PROFILE,
    BENCH_RETRAIN_ITERS,
    print_report,
)
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.eval.sweep import run_dimension_sweep
from repro.eval.tables import format_table

FIG6_DATASETS = ("fashion_mnist", "isolet")


def fig6_dimensions():
    configured = os.environ.get("REPRO_BENCH_FIG6_DIMENSIONS")
    if configured:
        return tuple(int(value) for value in configured.split(","))
    return (1000, 2000, 4000)


def fig6_strategies(dataset_name: str):
    config = get_paper_config(dataset_name).with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )
    return {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "multimodel": lambda rng: MultiModelHDC(models_per_class=8, iterations=2, seed=rng),
        "retraining": lambda rng: RetrainingHDC(iterations=BENCH_RETRAIN_ITERS, seed=rng),
        "lehdc": lambda rng: LeHDCClassifier(config=config, seed=rng),
    }


@pytest.mark.parametrize("dataset_name", FIG6_DATASETS)
def test_fig6_dimension_sweep(benchmark, dataset_name):
    dimensions = fig6_dimensions()

    def run():
        return run_dimension_sweep(
            dataset_name=dataset_name,
            dimensions=dimensions,
            strategies=fig6_strategies(dataset_name),
            num_levels=32,
            repetitions=1,
            profile=BENCH_PROFILE,
            seed=6,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    strategies = ["baseline", "multimodel", "retraining", "lehdc"]
    rows = []
    for dimension in result.dimensions:
        rows.append(
            [dimension]
            + [f"{result.summary(strategy)[dimension].mean:.4f}" for strategy in strategies]
        )
    print_report(
        f"Figure 6 — accuracy vs dimension on {dataset_name} (profile={BENCH_PROFILE})",
        format_table(["D"] + strategies, rows),
    )

    largest = result.dimensions[-1]
    smallest = result.dimensions[0]
    lehdc = result.summary("lehdc")
    retraining = result.summary("retraining")
    baseline = result.summary("baseline")

    # (1) LeHDC dominates at every dimension (small tolerance for single-run noise).
    for dimension in result.dimensions:
        assert lehdc[dimension].mean >= retraining[dimension].mean - 0.03
        assert lehdc[dimension].mean >= baseline[dimension].mean - 0.03

    # (2) The scalability headline: LeHDC reaches the accuracy of retraining at
    # the largest dimension while using a strictly smaller dimension.  (The
    # paper's exact statement — LeHDC@2 000 ≈ retraining@10 000 — is a 5x
    # dimension ratio; the scaled-down default sweep spans only 4x, so the
    # check is that the crossover happens strictly below the top dimension.)
    crossover = result.crossover_dimension("lehdc", "retraining", largest)
    print_report(
        f"Figure 6 — crossover on {dataset_name}",
        f"smallest D at which LeHDC matches retraining@{largest}: {crossover}",
    )
    assert crossover is not None
    assert crossover < largest
    assert lehdc[smallest].mean >= baseline[smallest].mean - 0.02
