"""Kernel-layer benchmark: fused encode, packed predict, dtype-policy training.

The ``repro.kernels`` refactor hoisted the packed/fused hot-path kernels out
of the serving engine into a shared compute layer that training, evaluation
and serving all ride.  This benchmark measures each moved kernel against the
implementation the seed repository shipped, writes the raw numbers as JSON
under ``benchmarks/results/``, and asserts the acceptance criteria:

* packed batch ``predict`` >= 5x the dense int64 dot rule at D=4000
  (the packed side pays for its own bit-packing, so this is end-to-end);
* fused ``RecordEncoder.encode`` >= 2x the seed per-feature loop.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, print_report
from repro.kernels.bench import format_report, run_kernel_benchmark

#: Acceptance thresholds from the kernels issue.
MIN_PACKED_PREDICT_SPEEDUP = 5.0
MIN_FUSED_ENCODE_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def kernel_result():
    return run_kernel_benchmark(
        dimension=4000,
        num_features=64,
        num_levels=32,
        num_classes=10,
        num_samples=512,
        seed=0,
    )


def test_kernel_benchmark_report(kernel_result):
    """Print the per-kernel speedup table and persist the JSON results."""
    config = kernel_result["config"]
    print_report(
        f"Kernel layer benchmark (D={config['dimension']})",
        format_report(kernel_result),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "bench_kernels.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(kernel_result, handle, indent=2)


def test_packed_predict_speedup(kernel_result):
    """Packed batch predict >= 5x the dense dot-similarity rule at D=4000."""
    speedup = kernel_result["predict"]["speedup"]
    assert speedup >= MIN_PACKED_PREDICT_SPEEDUP, (
        f"packed predict speedup {speedup:.1f}x is below the "
        f"{MIN_PACKED_PREDICT_SPEEDUP:.0f}x acceptance threshold"
    )


def test_fused_encode_speedup(kernel_result):
    """Fused LUT encode >= 2x the seed RecordEncoder per-feature loop."""
    speedup = kernel_result["encode"]["speedup"]
    assert speedup >= MIN_FUSED_ENCODE_SPEEDUP, (
        f"fused encode speedup {speedup:.1f}x is below the "
        f"{MIN_FUSED_ENCODE_SPEEDUP:.0f}x acceptance threshold"
    )


def test_vectorised_ngram_not_slower(kernel_result):
    """The rolled-window n-gram kernel must not regress the seed loop."""
    assert kernel_result["encode_ngram"]["speedup"] >= 1.0
