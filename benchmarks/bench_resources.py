"""Sec. 5.1 resource discussion — inference cost of the four strategies.

The paper argues LeHDC "has the same time consumption and resource occupation
as the baseline and retraining binary HDC" while the multi-model strategy
"costs more storage due to the multiple class hypervectors".  This benchmark
verifies that claim two ways:

1. analytically, through the :mod:`repro.hardware` cost model (storage bits,
   XOR+popcount operations, latency cycles on a word-serial datapath);
2. empirically, by timing actual nearest-Hamming inference (pytest-benchmark's
   natural use-case) for a baseline-trained and a LeHDC-trained model over the
   same queries — the timings must be statistically indistinguishable because
   the datapath is identical — and for a multi-model ensemble, which must be
   slower and larger.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_DIMENSION, print_report
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import get_dataset
from repro.eval.tables import format_table
from repro.hardware.cost_model import compare_strategies
from repro.hdc.encoders import RecordEncoder
from repro.kernels import pack_bipolar

NUM_QUERIES = 200


@pytest.fixture(scope="module")
def trained_models():
    data = get_dataset("ucihar", profile="tiny", seed=9)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=9)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    baseline = BaselineHDC(seed=9).fit(train_encoded, data.train_labels)
    lehdc = LeHDCClassifier(
        config=LeHDCConfig(epochs=10, batch_size=64, dropout_rate=0.3, weight_decay=0.03),
        seed=9,
    ).fit(train_encoded, data.train_labels)
    multimodel = MultiModelHDC(models_per_class=8, iterations=1, seed=9).fit(
        train_encoded, data.train_labels
    )
    queries = test_encoded[:NUM_QUERIES]
    return {
        "baseline": baseline,
        "lehdc": lehdc,
        "multimodel": multimodel,
        "queries": queries,
    }


def test_resource_cost_model(benchmark):
    """Analytical storage/operations/latency comparison (Sec. 5.1)."""

    def run():
        return compare_strategies(
            dimension=10_000, num_classes=10, multimodel_models_per_class=64
        )

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{cost.storage_kib:.1f}",
            cost.xor_popcount_ops,
            cost.latency_cycles,
        ]
        for name, cost in costs.items()
    ]
    print_report(
        "Sec. 5.1 — inference cost model (D=10000, K=10, multi-model N=64)",
        format_table(["strategy", "storage KiB", "xor+popcount ops", "latency cycles"], rows),
    )
    assert costs["lehdc"].storage_bits == costs["baseline"].storage_bits
    assert costs["lehdc"].latency_cycles == costs["retraining"].latency_cycles
    assert costs["multimodel"].storage_bits == 64 * costs["lehdc"].storage_bits


def test_inference_latency_baseline(benchmark, trained_models):
    """Measured inference latency of the baseline-trained class hypervectors."""
    model = trained_models["baseline"]
    queries = trained_models["queries"]
    benchmark(model.predict, queries)


def test_inference_latency_lehdc(benchmark, trained_models):
    """Measured inference latency of LeHDC-trained class hypervectors.

    Identical datapath to the baseline: the recorded timing should match the
    baseline benchmark within noise, demonstrating the zero-overhead claim.
    """
    model = trained_models["lehdc"]
    queries = trained_models["queries"]
    benchmark(model.predict, queries)
    assert model.class_hypervectors_.shape == trained_models["baseline"].class_hypervectors_.shape


def test_inference_latency_multimodel(benchmark, trained_models):
    """Measured inference latency of the multi-model ensemble (8x hypervectors)."""
    model = trained_models["multimodel"]
    queries = trained_models["queries"]
    benchmark(model.predict, queries)
    assert model.storage_hypervectors == 8 * trained_models["baseline"].class_hypervectors_.shape[0]


def test_inference_latency_packed_backend(benchmark, trained_models):
    """Bit-packed XOR+popcount inference, the hardware-style datapath."""
    model = trained_models["baseline"]
    queries = trained_models["queries"]
    packed_classes = pack_bipolar(model.class_hypervectors_)
    packed_queries = pack_bipolar(queries)

    def packed_predict():
        distances = packed_queries.hamming_distance(packed_classes)
        return np.argmin(distances, axis=1)

    predictions = benchmark(packed_predict)
    np.testing.assert_array_equal(predictions, model.predict(queries))


def test_storage_comparison_report(trained_models):
    """Print the measured storage of each trained model's inference state."""
    baseline_bits = trained_models["baseline"].class_hypervectors_.size
    lehdc_bits = trained_models["lehdc"].class_hypervectors_.size
    multimodel_bits = (
        trained_models["multimodel"].model_hypervectors_.size
    )
    rows = [
        ["baseline", baseline_bits // 8192],
        ["lehdc", lehdc_bits // 8192],
        ["multimodel (8/class)", multimodel_bits // 8192],
    ]
    print_report(
        "Measured inference storage (KiB of packed class hypervectors)",
        format_table(["strategy", "storage KiB"], rows),
    )
    assert lehdc_bits == baseline_bits
    assert multimodel_bits == 8 * baseline_bits
