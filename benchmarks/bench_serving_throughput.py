"""Serving throughput: single-sample vs micro-batched, dense vs packed.

The serving subsystem exists because the paper's packed XOR+popcount path only
pays off when requests are batched — per-request Python/NumPy dispatch
otherwise dominates.  This benchmark measures the four corners of that design
space plus the concurrent micro-batching scheduler (the path the HTTP server
runs), and asserts the acceptance criterion: micro-batched packed inference
must be at least 5x faster than naive single-sample dense serving at D=4000.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_report
from repro.eval.tables import format_table
from repro.serve.bench import format_benchmark_rows, run_serving_benchmark

#: The acceptance threshold: batched-packed vs single-sample-dense throughput.
MIN_BATCHED_PACKED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def serving_result():
    return run_serving_benchmark(
        dimension=4000,
        num_features=64,
        num_classes=10,
        num_samples=256,
        batch_size=64,
        concurrency=8,
        seed=0,
    )


def test_serving_throughput_report(serving_result):
    """Print the throughput table and the scheduler's batch-size distribution."""
    config = serving_result["config"]
    body = format_table(
        ["mode", "samples/s", "vs single-dense"],
        format_benchmark_rows(serving_result),
    )
    distribution = serving_result["batch_size_distribution"]
    if distribution:
        body += f"\nscheduler batch sizes: {distribution}"
    print_report(
        (
            f"Serving throughput (D={config['dimension']}, "
            f"batch={config['batch_size']}, K={config['num_classes']})"
        ),
        body,
    )


def test_batched_packed_speedup(serving_result):
    """Micro-batched packed inference >= 5x single-sample dense throughput."""
    speedup = serving_result["speedups"]["batched-packed"]
    assert speedup >= MIN_BATCHED_PACKED_SPEEDUP, (
        f"batched-packed speedup {speedup:.1f}x is below the "
        f"{MIN_BATCHED_PACKED_SPEEDUP:.0f}x acceptance threshold"
    )


def test_packed_beats_dense_batched(serving_result):
    """At equal batch size the packed engine must not lose to the dense path."""
    rates = serving_result["rates"]
    assert rates["batched-packed"] >= rates["batched-dense"]


def test_scheduler_actually_coalesces(serving_result):
    """Under concurrent load the scheduler must form multi-sample batches."""
    distribution = serving_result["batch_size_distribution"]
    assert distribution, "scheduler recorded no batches"
    assert max(distribution) > 1, f"no coalescing observed: {distribution}"
