"""Table 1 — inference accuracy of the four training strategies on six benchmarks.

Regenerates the paper's Table 1: for every dataset, the test accuracy
(mean±std over repetitions) of Baseline Binary HDC, Multi-Model HDC,
Retraining HDC and LeHDC, plus the average increment of each strategy over
the baseline (the paper's "Avg Increment" column, +15.32 for LeHDC).

Scaled-down defaults (documented in DESIGN.md / EXPERIMENTS.md):

* synthetic dataset substitutes at the ``small`` profile instead of the real
  60k-sample datasets;
* ``D`` = 4 000 instead of 10 000 (raise via ``REPRO_BENCH_DIMENSION``);
* LeHDC keeps the Table 2 weight decay / dropout per dataset but uses batch
  size 64 and learning rate 0.01 so the number of Adam steps stays comparable
  to the paper despite the ~30x smaller training sets;
* Multi-Model uses 8 models/class and 2 passes instead of 64 models/class.

The qualitative shape to check against the paper: LeHDC wins on every
dataset, retraining is second, multi-model is inconsistent (sometimes below
baseline), and the LeHDC average increment over the baseline is the largest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_DIMENSION,
    BENCH_LEHDC_EPOCHS,
    BENCH_PROFILE,
    BENCH_REPETITIONS,
    BENCH_RETRAIN_ITERS,
    print_report,
)
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import PAPER_TABLE1, list_datasets
from repro.eval.experiment import run_strategy_comparison
from repro.eval.metrics import average_increment
from repro.eval.tables import format_table

STRATEGY_ORDER = ["baseline", "multimodel", "retraining", "lehdc"]

#: Collected rows, filled as the per-dataset benchmarks run and printed by the
#: session-ending summary benchmark.
_RESULTS: dict = {}


def bench_lehdc_config(dataset_name: str):
    """Table 2 regularisation with batch/LR adapted to the scaled-down data."""
    paper = get_paper_config(dataset_name)
    return paper.with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )


def bench_strategies(dataset_name: str):
    """The four Table 1 strategies at benchmark budgets."""
    config = bench_lehdc_config(dataset_name)
    return {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "multimodel": lambda rng: MultiModelHDC(
            models_per_class=8, iterations=2, seed=rng
        ),
        "retraining": lambda rng: RetrainingHDC(
            iterations=BENCH_RETRAIN_ITERS, seed=rng
        ),
        "lehdc": lambda rng: LeHDCClassifier(config=config, seed=rng),
    }


def run_dataset(dataset_name: str):
    return run_strategy_comparison(
        dataset_name=dataset_name,
        strategies=bench_strategies(dataset_name),
        dimension=BENCH_DIMENSION,
        num_levels=32,
        repetitions=BENCH_REPETITIONS,
        profile=BENCH_PROFILE,
        seed=2022,
    )


@pytest.mark.parametrize("dataset_name", list_datasets())
def test_table1_dataset(benchmark, dataset_name):
    """One Table 1 column: accuracy of all four strategies on *dataset_name*."""
    result = benchmark.pedantic(run_dataset, args=(dataset_name,), rounds=1, iterations=1)
    _RESULTS[dataset_name] = result
    summary = result.summary_percent()

    rows = [
        [
            strategy,
            str(summary[strategy]),
            f"{PAPER_TABLE1[dataset_name][strategy]:.2f}",
        ]
        for strategy in STRATEGY_ORDER
    ]
    print_report(
        f"Table 1 column — {dataset_name} (D={BENCH_DIMENSION}, "
        f"profile={BENCH_PROFILE}, reps={BENCH_REPETITIONS})",
        format_table(["strategy", "measured acc % (mean±std)", "paper acc %"], rows),
    )

    # Shape checks: LeHDC must beat the baseline and at least match retraining.
    assert summary["lehdc"].mean > summary["baseline"].mean
    assert summary["lehdc"].mean >= summary["retraining"].mean - 1.0


def test_table1_average_increment(benchmark):
    """The "Avg Increment" column: average gain over the baseline across datasets.

    Runs after the per-dataset benchmarks (pytest executes them in file
    order); any dataset that has not been measured yet is measured here.
    """

    def compute():
        for name in list_datasets():
            if name not in _RESULTS:
                _RESULTS[name] = run_dataset(name)
        baseline_means = [
            _RESULTS[name].summary_percent()["baseline"].mean for name in list_datasets()
        ]
        increments = {}
        for strategy in ("multimodel", "retraining", "lehdc"):
            strategy_means = [
                _RESULTS[name].summary_percent()[strategy].mean for name in list_datasets()
            ]
            increments[strategy] = average_increment(strategy_means, baseline_means)
        return increments

    increments = benchmark.pedantic(compute, rounds=1, iterations=1)
    paper_increments = {"multimodel": 2.22, "retraining": 8.67, "lehdc": 15.32}
    rows = [
        [strategy, f"{increments[strategy]:+.2f}", f"{paper_increments[strategy]:+.2f}"]
        for strategy in ("multimodel", "retraining", "lehdc")
    ]
    print_report(
        "Table 1 — average increment over Baseline Binary HDC (percentage points)",
        format_table(["strategy", "measured", "paper"], rows),
    )

    # Shape check: LeHDC has the largest average increment and it is clearly positive.
    assert increments["lehdc"] > increments["retraining"]
    assert increments["lehdc"] > 3.0
