"""Table 2 — LeHDC hyper-parameter configurations and their sensitivity.

Table 2 itself is a configuration table (weight decay, learning rate, batch
size, dropout rate, epochs per dataset); it is encoded verbatim in
:data:`repro.core.configs.PAPER_CONFIGS`.  This benchmark (a) prints that
table for the record, and (b) runs the sensitivity / ablation studies around
it that DESIGN.md calls out:

* a small grid over weight decay x dropout rate on one dataset, showing the
  paper's chosen cell is at (or near) the best test accuracy;
* the latent-clipping ablation (BinaryConnect-style clip vs the paper's
  unclipped latent weights bounded by weight decay);
* coupled vs decoupled weight decay (Eq. 10 literal vs AdamW-style).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_DIMENSION,
    BENCH_LEHDC_EPOCHS,
    BENCH_PROFILE,
    print_report,
)
from repro.core.configs import PAPER_CONFIGS, get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import get_dataset
from repro.eval.tables import format_table
from repro.hdc.encoders import RecordEncoder

GRID_DATASET = "ucihar"
WEIGHT_DECAYS = (0.0, 0.05)
DROPOUT_RATES = (0.0, 0.5)


def test_table2_configurations_printed(benchmark):
    """Print the Table 2 configuration verbatim (pure bookkeeping, no training)."""

    def render():
        rows = [
            [
                name,
                config.weight_decay,
                config.learning_rate,
                config.batch_size,
                config.dropout_rate,
                config.epochs,
            ]
            for name, config in PAPER_CONFIGS.items()
        ]
        return format_table(
            ["dataset", "WD", "LR", "B", "DR", "epochs"], rows, title="Table 2 (paper values)"
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print_report("Table 2 — LeHDC hyper-parameters", table)
    assert "fashion_mnist" in table


@pytest.fixture(scope="module")
def encoded_grid_dataset():
    data = get_dataset(GRID_DATASET, profile=BENCH_PROFILE, seed=22)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=22)
    encoder.fit(data.train_features)
    return {
        "train": encoder.encode(data.train_features),
        "train_labels": data.train_labels,
        "test": encoder.encode(data.test_features),
        "test_labels": data.test_labels,
    }


def _fit_accuracy(encoded, config, seed=22):
    model = LeHDCClassifier(config=config, seed=seed)
    model.fit(encoded["train"], encoded["train_labels"])
    return model.score(encoded["test"], encoded["test_labels"])


def test_table2_regularisation_grid(benchmark, encoded_grid_dataset):
    """Weight-decay x dropout grid around the paper's UCIHAR/ISOLET/PAMAP row."""
    base = get_paper_config(GRID_DATASET).with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )

    def run():
        grid = {}
        for weight_decay in WEIGHT_DECAYS:
            for dropout_rate in DROPOUT_RATES:
                config = base.with_overrides(
                    weight_decay=weight_decay, dropout_rate=dropout_rate
                )
                grid[(weight_decay, dropout_rate)] = _fit_accuracy(
                    encoded_grid_dataset, config
                )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [weight_decay, dropout_rate, f"{accuracy:.4f}"]
        for (weight_decay, dropout_rate), accuracy in sorted(grid.items())
    ]
    print_report(
        f"Table 2 sensitivity — weight decay x dropout on {GRID_DATASET}",
        format_table(["weight decay", "dropout", "test accuracy"], rows),
    )
    # The paper's regularised cell must be competitive with the best cell.
    paper_cell = grid[(0.05, 0.5)]
    assert paper_cell >= max(grid.values()) - 0.03


def test_table2_latent_clip_and_decay_ablation(benchmark, encoded_grid_dataset):
    """Latent clipping and coupled/decoupled weight decay (DESIGN.md ablations)."""
    base = get_paper_config(GRID_DATASET).with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )
    variants = {
        "clip=1.0, decoupled WD": base,
        "no clip, decoupled WD": base.with_overrides(latent_clip=None),
        "clip=1.0, coupled WD": base.with_overrides(decoupled_weight_decay=False),
    }

    def run():
        return {
            name: _fit_accuracy(encoded_grid_dataset, config)
            for name, config in variants.items()
        }

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        f"Design-choice ablation on {GRID_DATASET}",
        "\n".join(f"{name:26s} {accuracy:.4f}" for name, accuracy in accuracies.items()),
    )
    # All variants must train to a sensible accuracy; the default must be
    # within a small margin of the best variant.
    assert all(accuracy > 0.6 for accuracy in accuracies.values())
    assert accuracies["clip=1.0, decoupled WD"] >= max(accuracies.values()) - 0.05
