"""Table 2 — LeHDC hyper-parameter configurations and their sensitivity.

Table 2 itself is a configuration table (weight decay, learning rate, batch
size, dropout rate, epochs per dataset); it is encoded verbatim in
:data:`repro.core.configs.PAPER_CONFIGS`.  This benchmark (a) prints that
table for the record, and (b) runs the sensitivity / ablation studies around
it that DESIGN.md calls out:

* a small grid over weight decay x dropout rate on one dataset, showing the
  paper's chosen cell is at (or near) the best test accuracy;
* the latent-clipping ablation (BinaryConnect-style clip vs the paper's
  unclipped latent weights bounded by weight decay);
* coupled vs decoupled weight decay (Eq. 10 literal vs AdamW-style).

Every grid/ablation cell is fitted through
:func:`repro.eval.sweep.run_fit_grid` on one shared
:class:`repro.eval.sweep.PackedSplits`: the dataset is encoded and packed
exactly once per module, no matter how many hyper-parameter cells run on it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_DIMENSION,
    BENCH_LEHDC_EPOCHS,
    BENCH_PROFILE,
    print_report,
)
from repro.core.configs import PAPER_CONFIGS, get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import get_dataset
from repro.eval.sweep import PackedSplits, run_fit_grid
from repro.eval.tables import format_table
from repro.hdc.encoders import RecordEncoder

GRID_DATASET = "ucihar"
WEIGHT_DECAYS = (0.0, 0.05)
DROPOUT_RATES = (0.0, 0.5)


def test_table2_configurations_printed(benchmark):
    """Print the Table 2 configuration verbatim (pure bookkeeping, no training)."""

    def render():
        rows = [
            [
                name,
                config.weight_decay,
                config.learning_rate,
                config.batch_size,
                config.dropout_rate,
                config.epochs,
            ]
            for name, config in PAPER_CONFIGS.items()
        ]
        return format_table(
            ["dataset", "WD", "LR", "B", "DR", "epochs"], rows, title="Table 2 (paper values)"
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print_report("Table 2 — LeHDC hyper-parameters", table)
    assert "fashion_mnist" in table


@pytest.fixture(scope="module")
def grid_splits():
    """One encoded + packed split pair shared by every grid cell below."""
    data = get_dataset(GRID_DATASET, profile=BENCH_PROFILE, seed=22)
    encoder = RecordEncoder(dimension=BENCH_DIMENSION, num_levels=32, seed=22)
    return PackedSplits.from_dataset(data, encoder)


def _accuracy_grid(splits, configs, seed=22):
    """Fit one LeHDC per config cell on the shared packed split."""
    cells = {
        key: (lambda config=config: LeHDCClassifier(config=config, seed=seed))
        for key, config in configs.items()
    }
    return {
        key: cell.test_accuracy for key, cell in run_fit_grid(splits, cells).items()
    }


def test_table2_regularisation_grid(benchmark, grid_splits):
    """Weight-decay x dropout grid around the paper's UCIHAR/ISOLET/PAMAP row."""
    base = get_paper_config(GRID_DATASET).with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )

    def run():
        configs = {
            (weight_decay, dropout_rate): base.with_overrides(
                weight_decay=weight_decay, dropout_rate=dropout_rate
            )
            for weight_decay in WEIGHT_DECAYS
            for dropout_rate in DROPOUT_RATES
        }
        return _accuracy_grid(grid_splits, configs)

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [weight_decay, dropout_rate, f"{accuracy:.4f}"]
        for (weight_decay, dropout_rate), accuracy in sorted(grid.items())
    ]
    print_report(
        f"Table 2 sensitivity — weight decay x dropout on {GRID_DATASET}",
        format_table(["weight decay", "dropout", "test accuracy"], rows),
    )
    # The paper's regularised cell must be competitive with the best cell.
    paper_cell = grid[(0.05, 0.5)]
    assert paper_cell >= max(grid.values()) - 0.03


def test_table2_latent_clip_and_decay_ablation(benchmark, grid_splits):
    """Latent clipping and coupled/decoupled weight decay (DESIGN.md ablations)."""
    base = get_paper_config(GRID_DATASET).with_overrides(
        epochs=BENCH_LEHDC_EPOCHS, batch_size=64, learning_rate=0.01
    )
    variants = {
        "clip=1.0, decoupled WD": base,
        "no clip, decoupled WD": base.with_overrides(latent_clip=None),
        "clip=1.0, coupled WD": base.with_overrides(decoupled_weight_decay=False),
    }

    def run():
        return _accuracy_grid(grid_splits, variants)

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        f"Design-choice ablation on {GRID_DATASET}",
        "\n".join(f"{name:26s} {accuracy:.4f}" for name, accuracy in accuracies.items()),
    )
    # All variants must train to a sensible accuracy; the default must be
    # within a small margin of the best variant.
    assert all(accuracy > 0.6 for accuracy in accuracies.values())
    assert accuracies["clip=1.0, decoupled WD"] >= max(accuracies.values()) - 0.05
