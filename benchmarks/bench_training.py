"""Packed-training benchmark: training ``fit()`` on packed words vs the seed loops.

The packed-training issues moved training onto the kernel layer: one blocked
XOR+popcount scoring of the whole packed training set per pass, followed by
an ordered scatter-add of the misclassified samples' updates (the retraining
family), or by sequential stochastic bit-flips replayed on an incrementally
maintained score matrix (the SearcHD-style ensemble).  This benchmark
measures every strategy's full ``fit()`` against the seed's sequential
per-sample loop (still available as ``packed_epochs=False``), writes the raw
numbers as JSON under ``benchmarks/results/``, and asserts the acceptance
criteria:

* ``RetrainingHDC.fit()`` >= 5x the seed dense loop at D=4000, with a
  bit-identical accuracy history (the benchmark runner verifies bit-identity
  of histories, class hypervectors and accumulators before reporting);
* ``MultiModelHDC.fit()`` >= 5x the seed dense loop at D=4000 with the
  paper's 64 models per class — bit-identical models, history and RNG
  stream, both ``push_away`` settings, verified before timing;
* AdaptHD / enhanced retraining and the packed baseline bundling must not
  be slower than their dense counterparts.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, print_report
from repro.kernels.bench_train import format_training_report, run_training_benchmark

#: Acceptance thresholds from the packed-training issues (PR 3 / PR 4).
MIN_RETRAINING_FIT_SPEEDUP = 5.0
MIN_MULTIMODEL_FIT_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def training_result():
    return run_training_benchmark(
        dimension=4000,
        num_features=64,
        num_levels=32,
        num_classes=10,
        num_samples=2000,
        iterations=20,
        seed=0,
    )


def test_training_benchmark_report(training_result):
    """Print the per-strategy speedup table and persist the JSON results."""
    config = training_result["config"]
    print_report(
        f"Packed training benchmark (D={config['dimension']})",
        format_training_report(training_result),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "bench_training.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(training_result, handle, indent=2)


def test_retraining_fit_speedup(training_result):
    """Packed ``RetrainingHDC.fit()`` >= 5x the seed sequential loop at D=4000."""
    speedup = training_result["retraining"]["speedup"]
    assert speedup >= MIN_RETRAINING_FIT_SPEEDUP, (
        f"packed retraining fit speedup {speedup:.1f}x is below the "
        f"{MIN_RETRAINING_FIT_SPEEDUP:.0f}x acceptance threshold"
    )


def test_multimodel_fit_speedup(training_result):
    """Packed ensemble ``fit()`` >= 5x the seed loop at D=4000, 64 models/class."""
    section = training_result["multimodel"]
    assert section["models_per_class"] == 64
    speedup = section["speedup"]
    assert speedup >= MIN_MULTIMODEL_FIT_SPEEDUP, (
        f"packed multimodel fit speedup {speedup:.1f}x is below the "
        f"{MIN_MULTIMODEL_FIT_SPEEDUP:.0f}x acceptance threshold"
    )


def test_histories_bit_identical(training_result):
    """The runner verifies bit-identity before timing; the flags must be set."""
    for section in ("retraining", "adapthd", "enhanced", "multimodel"):
        assert training_result[section]["bit_identical"] is True
    assert training_result["multimodel"]["rng_stream_identical"] is True
    assert training_result["multimodel"]["push_away_bit_identical"] is True


def test_variants_and_bundle_not_slower(training_result):
    """AdaptHD, enhanced retraining and packed bundling must not regress."""
    assert training_result["adapthd"]["speedup"] >= 1.0
    assert training_result["enhanced"]["speedup"] >= 1.0
    assert training_result["bundle"]["speedup"] >= 1.0
