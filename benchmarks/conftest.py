"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(see DESIGN.md's per-experiment index).  The runs are scaled down so the whole
harness finishes in minutes on a laptop CPU; the knobs below can be raised via
environment variables to approach paper scale:

=============================  =======================================  =========
environment variable           meaning                                  default
=============================  =======================================  =========
``REPRO_BENCH_PROFILE``        dataset profile (tiny / small / full)    small
``REPRO_BENCH_DIMENSION``      hypervector dimension ``D``              4000
``REPRO_BENCH_REPETITIONS``    repetitions for mean±std aggregation     2
``REPRO_BENCH_LEHDC_EPOCHS``   LeHDC training epochs                    30
``REPRO_BENCH_RETRAIN_ITERS``  retraining iterations                    30
=============================  =======================================  =========
"""

from __future__ import annotations

import os

import pytest


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "small")
BENCH_DIMENSION = _int_env("REPRO_BENCH_DIMENSION", 4000)
BENCH_REPETITIONS = _int_env("REPRO_BENCH_REPETITIONS", 2)
BENCH_LEHDC_EPOCHS = _int_env("REPRO_BENCH_LEHDC_EPOCHS", 30)
BENCH_RETRAIN_ITERS = _int_env("REPRO_BENCH_RETRAIN_ITERS", 30)


@pytest.fixture(scope="session")
def bench_settings():
    """The harness-wide benchmark settings as a dictionary."""
    return {
        "profile": BENCH_PROFILE,
        "dimension": BENCH_DIMENSION,
        "repetitions": BENCH_REPETITIONS,
        "lehdc_epochs": BENCH_LEHDC_EPOCHS,
        "retraining_iterations": BENCH_RETRAIN_ITERS,
    }


#: Directory where every report block is also written as a text file, so the
#: tables/figures survive pytest's output capture and can be pasted into
#: EXPERIMENTS.md.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _slugify(title: str) -> str:
    keep = [c.lower() if c.isalnum() else "_" for c in title]
    slug = "".join(keep)
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug.strip("_")[:80]


def print_report(title: str, body: str) -> None:
    """Print a benchmark report block and persist it under ``benchmarks/results/``."""
    banner = "=" * max(len(title), 20)
    block = f"{banner}\n{title}\n{banner}\n{body}\n"
    print("\n" + block, flush=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, _slugify(title) + ".txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(block)
