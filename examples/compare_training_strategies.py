#!/usr/bin/env python3
"""Compare every HDC training strategy on one benchmark (a mini Table 1).

The paper's central experiment (Table 1) pits four ways of obtaining binary
class hypervectors against each other — centroid bundling, SearcHD-style
multi-model ensembles, QuantHD-style retraining, and LeHDC — on the same
encoded data.  This example reruns that comparison on a single dataset,
including the two extra comparators implemented in this repository (AdaptHD
and the Sec. 3.3 enhanced retraining), and prints a Table-1-style report with
the paper's published numbers alongside for reference.

Usage::

    python examples/compare_training_strategies.py [dataset]

where ``dataset`` is one of mnist, fashion_mnist, cifar10, ucihar, isolet,
pamap (default: ucihar).
"""

from __future__ import annotations

import sys

from repro import (
    AdaptHDC,
    BaselineHDC,
    EnhancedRetrainingHDC,
    LeHDCClassifier,
    MultiModelHDC,
    RecordEncoder,
    RetrainingHDC,
    get_dataset,
    get_paper_config,
)
from repro.datasets.registry import PAPER_TABLE1
from repro.eval.tables import format_table

DIMENSION = 2000
SEED = 1


def build_strategies(dataset_name: str):
    """All training strategies at quick-example budgets (order = report order)."""
    lehdc_config = get_paper_config(dataset_name).with_overrides(
        epochs=30, batch_size=64, learning_rate=0.01
    )
    return {
        "baseline": BaselineHDC(seed=SEED),
        "multimodel": MultiModelHDC(models_per_class=8, iterations=2, seed=SEED),
        "retraining": RetrainingHDC(iterations=25, seed=SEED),
        "adapthd": AdaptHDC(iterations=25, seed=SEED),
        "enhanced retraining": EnhancedRetrainingHDC(iterations=25, seed=SEED),
        "lehdc": LeHDCClassifier(config=lehdc_config, seed=SEED),
    }


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "ucihar"
    data = get_dataset(dataset_name, profile="small", seed=SEED)
    print(f"Dataset: {data.describe()}")
    print("Encoding once; every strategy trains on the same hypervectors...\n")

    encoder = RecordEncoder(dimension=DIMENSION, num_levels=32, seed=SEED)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    paper_row = PAPER_TABLE1.get(dataset_name, {})
    rows = []
    for name, model in build_strategies(dataset_name).items():
        model.fit(train_encoded, data.train_labels)
        train_accuracy = model.score(train_encoded, data.train_labels)
        test_accuracy = model.score(test_encoded, data.test_labels)
        paper_value = paper_row.get(name)
        rows.append(
            [
                name,
                f"{train_accuracy:.4f}",
                f"{test_accuracy:.4f}",
                f"{paper_value:.2f}%" if paper_value is not None else "-",
            ]
        )
        print(f"  trained {name:22s} test accuracy {test_accuracy:.4f}")

    print()
    print(
        format_table(
            ["strategy", "train acc", "test acc", "paper Table 1 (real data)"],
            rows,
            title=f"Strategy comparison on {dataset_name} (D={DIMENSION}, synthetic substitute)",
        )
    )
    print(
        "\nExpected shape (per the paper): lehdc on top, retraining variants next,\n"
        "multi-model inconsistent, baseline last.  Absolute values differ from the\n"
        "paper because the dataset is a synthetic substitute at reduced scale."
    )


if __name__ == "__main__":
    main()
