#!/usr/bin/env python3
"""Using the library on your own data, with your own encoder choices.

LeHDC is encoder-agnostic (Sec. 2.1: "LeHDC does not modify the encoding
process, and hence can work with any encoders").  This example shows the
pieces you would assemble for a new sensing task:

* a custom dataset — here a synthetic "machine-vibration" problem built
  directly with the generator API rather than the registry;
* two different encoders (record-based and N-gram) with a quantile quantiser,
  which is more robust for heavy-tailed sensor features;
* the same LeHDC training applied on top of either encoder;
* inspection of the training history (loss / accuracy per epoch) that the
  classifier records.
"""

from __future__ import annotations

import numpy as np

from repro import LeHDCClassifier, LeHDCConfig, NGramEncoder, RecordEncoder
from repro.classifiers.baseline import BaselineHDC
from repro.datasets.base import Dataset, train_test_split
from repro.datasets.synthetic import make_gaussian_classes
from repro.eval.figures import TrajectorySeries, render_trajectories

SEED = 5


def build_vibration_dataset() -> Dataset:
    """A 5-class 'bearing fault' style problem: 48 spectral features per sample."""
    features, labels, test_features, test_labels = make_gaussian_classes(
        num_classes=5,
        num_features=48,
        train_size=900,
        test_size=300,
        class_sep=1.8,
        clusters_per_class=3,  # each fault type shows several operating modes
        noise_std=1.0,
        noise_feature_fraction=0.2,  # some spectral bins carry no information
        seed=SEED,
    )
    # Heavy-tail the features a bit, as real vibration spectra are.
    rng = np.random.default_rng(SEED)
    features = features ** 2 + 0.01 * rng.exponential(size=features.shape)
    test_features = test_features ** 2
    return Dataset(
        name="vibration",
        train_features=features,
        train_labels=labels,
        test_features=test_features,
        test_labels=test_labels,
        metadata={"source": "example"},
    )


def main() -> None:
    data = build_vibration_dataset()
    print(f"Dataset: {data.describe()}\n")

    config = LeHDCConfig(
        epochs=40,
        batch_size=64,
        learning_rate=0.01,
        weight_decay=0.03,
        dropout_rate=0.3,
        validation_fraction=0.15,  # track held-out accuracy during training
    )

    encoders = {
        "record encoder (quantile levels)": RecordEncoder(
            dimension=2000, num_levels=32, quantizer="quantile", seed=SEED
        ),
        "3-gram encoder (quantile levels)": NGramEncoder(
            dimension=2000, num_levels=32, ngram=3, quantizer="quantile", seed=SEED
        ),
    }

    for name, encoder in encoders.items():
        encoder.fit(data.train_features)
        train_encoded = encoder.encode(data.train_features)
        test_encoded = encoder.encode(data.test_features)

        baseline = BaselineHDC(seed=SEED).fit(train_encoded, data.train_labels)
        lehdc = LeHDCClassifier(config=config, seed=SEED)
        lehdc.fit(train_encoded, data.train_labels)

        print(f"--- {name}")
        print(f"    baseline accuracy : {baseline.score(test_encoded, data.test_labels):.4f}")
        print(f"    LeHDC accuracy    : {lehdc.score(test_encoded, data.test_labels):.4f}")

        history = lehdc.history_
        series = [
            TrajectorySeries("train accuracy", list(range(history.epochs)), history.train_accuracy),
            TrajectorySeries(
                "held-out accuracy", list(range(history.epochs)), history.validation_accuracy
            ),
        ]
        print(render_trajectories(series, title="    LeHDC training history", x_label="epoch"))
        print()


if __name__ == "__main__":
    main()
