#!/usr/bin/env python3
"""Dimension scaling study: how small can the hypervectors get? (Fig. 6 story)

Hypervector dimension ``D`` is the main cost knob of a binary HDC deployment:
storage, energy and latency all scale linearly with it.  Figure 6 of the paper
shows that LeHDC keeps its accuracy advantage as ``D`` shrinks and reaches the
accuracy of the retraining strategy while using a fraction of its dimension.

This example sweeps ``D`` on one dataset for the baseline, retraining, and
LeHDC strategies, prints the accuracy-vs-dimension series, and reports the
crossover: the smallest ``D`` at which LeHDC matches retraining at the largest
swept ``D`` — i.e. how much smaller a LeHDC model can be for the same quality.

Usage::

    python examples/dimension_scaling.py [dataset]

(default dataset: isolet, the right panel of Fig. 6).
"""

from __future__ import annotations

import sys

from repro import run_dimension_sweep
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.lehdc import LeHDCClassifier
from repro.core.configs import get_paper_config
from repro.eval.figures import TrajectorySeries, render_trajectories
from repro.eval.tables import format_table

DIMENSIONS = (500, 1000, 2000, 4000)
SEED = 4


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "isolet"
    lehdc_config = get_paper_config(dataset_name).with_overrides(
        epochs=25, batch_size=64, learning_rate=0.01
    )
    strategies = {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "retraining": lambda rng: RetrainingHDC(iterations=20, seed=rng),
        "lehdc": lambda rng: LeHDCClassifier(config=lehdc_config, seed=rng),
    }

    print(f"Sweeping D over {DIMENSIONS} on {dataset_name} (this takes a minute)...\n")
    result = run_dimension_sweep(
        dataset_name=dataset_name,
        dimensions=DIMENSIONS,
        strategies=strategies,
        num_levels=32,
        repetitions=1,
        profile="small",
        seed=SEED,
    )

    rows = []
    for dimension in result.dimensions:
        rows.append(
            [dimension]
            + [f"{result.summary(name)[dimension].mean:.4f}" for name in strategies]
        )
    print(
        format_table(
            ["D"] + list(strategies), rows, title=f"Accuracy vs dimension on {dataset_name}"
        )
    )

    print()
    series = [
        TrajectorySeries(name, list(result.dimensions), result.series(name))
        for name in strategies
    ]
    print(render_trajectories(series, title="Accuracy trend (low D -> high D)", x_label="D"))

    largest = result.dimensions[-1]
    crossover = result.crossover_dimension("lehdc", "retraining", largest)
    reference = result.summary("retraining")[largest].mean
    print(
        f"\nRetraining accuracy at D={largest}: {reference:.4f}\n"
        f"Smallest D at which LeHDC matches it: {crossover}"
    )
    if crossover is not None and crossover < largest:
        print(
            f"=> a LeHDC model can be ~{largest // crossover}x smaller than the "
            "retraining model at the same accuracy — the Fig. 6 scalability result."
        )


if __name__ == "__main__":
    main()
