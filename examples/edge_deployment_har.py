#!/usr/bin/env python3
"""Edge-deployment scenario: human-activity recognition on a microcontroller.

The motivating use-case for binary HDC (and for LeHDC's zero-overhead
training improvement) is inference on highly resource-limited IoT devices.
This example walks the full deployment story on the UCIHAR substitute
(smartphone accelerometer/gyroscope activity recognition):

1. train class hypervectors with LeHDC on the "server";
2. export them as a bit-packed model (the only thing the device must store);
3. run device-style inference with XOR + popcount on the packed model and
   verify it matches the dense reference implementation bit for bit;
4. report the storage footprint and the operation count per query from the
   hardware cost model, comparing against a multi-model ensemble of the same
   accuracy class.
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    BaselineHDC,
    LeHDCClassifier,
    MultiModelHDC,
    RecordEncoder,
    get_dataset,
    get_paper_config,
)
from repro.eval.tables import format_table
from repro.hardware.cost_model import InferenceCostModel
from repro.kernels import pack_bipolar

DATASET = "ucihar"
DIMENSION = 2000
SEED = 3


def main() -> None:
    data = get_dataset(DATASET, profile="small", seed=SEED)
    print(f"Dataset: {data.describe()}")

    encoder = RecordEncoder(dimension=DIMENSION, num_levels=32, seed=SEED)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    # ------------------------------------------------------------- training
    config = get_paper_config(DATASET).with_overrides(
        epochs=30, batch_size=64, learning_rate=0.01
    )
    lehdc = LeHDCClassifier(config=config, seed=SEED)
    lehdc.fit(train_encoded, data.train_labels)
    baseline = BaselineHDC(seed=SEED).fit(train_encoded, data.train_labels)
    multimodel = MultiModelHDC(models_per_class=8, iterations=2, seed=SEED)
    multimodel.fit(train_encoded, data.train_labels)

    print(f"LeHDC test accuracy     : {lehdc.score(test_encoded, data.test_labels):.4f}")
    print(f"Baseline test accuracy  : {baseline.score(test_encoded, data.test_labels):.4f}")
    print(f"Multi-model accuracy    : {multimodel.score(test_encoded, data.test_labels):.4f}")

    # ------------------------------------------------- export for the device
    packed_model = pack_bipolar(lehdc.class_hypervectors_)
    print(
        f"\nExported model: {len(packed_model)} class hypervectors, "
        f"{packed_model.storage_bytes} bytes packed "
        f"({packed_model.storage_bytes / 1024:.1f} KiB)"
    )

    # -------------------------------------------------- device-style inference
    queries = test_encoded[:200]
    packed_queries = pack_bipolar(queries)

    start = time.perf_counter()
    distances = packed_queries.hamming_distance(packed_model)
    packed_predictions = np.argmin(distances, axis=1)
    packed_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    dense_predictions = lehdc.predict(queries)
    dense_elapsed = time.perf_counter() - start

    assert np.array_equal(packed_predictions, dense_predictions)
    print(
        f"Packed (XOR+popcount) inference matches the dense reference on "
        f"{len(queries)} queries"
    )
    print(f"  packed backend : {1000 * packed_elapsed:.1f} ms")
    print(f"  dense backend  : {1000 * dense_elapsed:.1f} ms")

    # -------------------------------------------------------- cost accounting
    model = InferenceCostModel(dimension=DIMENSION, num_classes=data.num_classes)
    rows = []
    for name, models_per_class in (("baseline / retraining / LeHDC", 1), ("multi-model (8/class)", 8)):
        cost = model.cost(name, models_per_class=models_per_class)
        rows.append(
            [name, f"{cost.storage_kib:.1f}", cost.xor_popcount_ops, cost.latency_cycles]
        )
    print()
    print(
        format_table(
            ["inference state", "storage KiB", "XOR+popcount ops/query", "latency cycles/query"],
            rows,
            title="Device-side cost model (Sec. 5.1): LeHDC adds zero overhead",
        )
    )
    print(
        f"\nPer-query encoding cost (shared by all strategies): "
        f"{model.encoding_cost_ops(data.num_features)} bind+accumulate operations"
    )


if __name__ == "__main__":
    main()
