#!/usr/bin/env python3
"""Per-class analysis: which classes does LeHDC actually recover?

Table 1 only reports overall accuracy.  This example digs one level deeper on
a multi-cluster activity-recognition workload (the PAMAP2 substitute, where
each activity spans several distinct motion modes): it prints a full
classification report for the baseline and for LeHDC, and a side-by-side
per-class recall comparison.  The pattern to look for — and the reason the
BNN view helps — is that centroid training collapses multi-modal classes into
a single average hypervector and loses several of them almost entirely, while
the discriminatively trained class hypervectors keep every class usable.
"""

from __future__ import annotations

from repro import BaselineHDC, LeHDCClassifier, RecordEncoder, get_dataset, get_paper_config
from repro.eval.reports import classification_report, compare_per_class

DATASET = "pamap"
DIMENSION = 2000
SEED = 7


def main() -> None:
    data = get_dataset(DATASET, profile="small", seed=SEED)
    print(f"Dataset: {data.describe()}\n")

    encoder = RecordEncoder(dimension=DIMENSION, num_levels=32, seed=SEED)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    baseline = BaselineHDC(seed=SEED).fit(train_encoded, data.train_labels)
    config = get_paper_config(DATASET).with_overrides(
        epochs=30, batch_size=64, learning_rate=0.01
    )
    lehdc = LeHDCClassifier(config=config, seed=SEED).fit(train_encoded, data.train_labels)

    reports = {}
    for name, model in (("baseline", baseline), ("lehdc", lehdc)):
        predictions = model.predict(test_encoded)
        reports[name] = classification_report(
            predictions, data.test_labels, num_classes=data.num_classes
        )
        print(f"=== {name} (overall accuracy {reports[name].accuracy:.4f})")
        print(reports[name].to_text())
        print()

    print(compare_per_class(reports, metric="recall"))
    worst_baseline = min(reports["baseline"].classes, key=lambda entry: entry.recall)
    improved = reports["lehdc"].classes[worst_baseline.label].recall
    print(
        f"\nBaseline's weakest class is {worst_baseline.label} "
        f"(recall {worst_baseline.recall:.2f}); LeHDC lifts it to {improved:.2f}."
    )


if __name__ == "__main__":
    main()
