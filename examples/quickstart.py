#!/usr/bin/env python3
"""Quickstart: train a LeHDC classifier end to end in a few lines.

This is the smallest useful program against the public API:

1. load a benchmark dataset (a synthetic Fashion-MNIST substitute by default;
   the real files are used automatically if ``$REPRO_DATA_DIR`` points at them);
2. build an ``HDCPipeline`` = record-based encoder + LeHDC classifier;
3. fit, score, and compare against the vanilla (baseline) binary HDC that the
   paper improves upon.

Run with ``python examples/quickstart.py``; it finishes in well under a
minute on a laptop CPU.
"""

from __future__ import annotations

from repro import (
    BaselineHDC,
    HDCPipeline,
    LeHDCClassifier,
    RecordEncoder,
    get_dataset,
    get_paper_config,
)

DATASET = "fashion_mnist"
DIMENSION = 2000  # the paper uses 10 000; 2 000 keeps the example fast
SEED = 0


def main() -> None:
    data = get_dataset(DATASET, profile="tiny", seed=SEED)
    print(f"Dataset: {data.describe()}")

    # --- baseline binary HDC (Eq. 2): bundle each class's sample hypervectors.
    baseline = HDCPipeline(
        RecordEncoder(dimension=DIMENSION, num_levels=32, seed=SEED),
        BaselineHDC(seed=SEED),
    )
    baseline.fit(data.train_features, data.train_labels)
    baseline_accuracy = baseline.score(data.test_features, data.test_labels)

    # --- LeHDC: same encoder, but the class hypervectors are trained as the
    # weights of the equivalent single-layer BNN (Adam + cross-entropy +
    # weight decay + dropout).  The Table 2 regularisation for this dataset is
    # kept; epochs are reduced so the example stays fast.
    config = get_paper_config(DATASET).with_overrides(
        epochs=30, batch_size=64, learning_rate=0.01
    )
    lehdc = HDCPipeline(
        RecordEncoder(dimension=DIMENSION, num_levels=32, seed=SEED),
        LeHDCClassifier(config=config, seed=SEED),
    )
    lehdc.fit(data.train_features, data.train_labels)
    lehdc_accuracy = lehdc.score(data.test_features, data.test_labels)

    print(f"Baseline binary HDC accuracy : {baseline_accuracy:.4f}")
    print(f"LeHDC accuracy               : {lehdc_accuracy:.4f}")
    print(f"Improvement                  : {lehdc_accuracy - baseline_accuracy:+.4f}")
    print(
        "Both models store exactly the same inference state: "
        f"{lehdc.class_hypervectors_.shape} binary class hypervectors."
    )


if __name__ == "__main__":
    main()
