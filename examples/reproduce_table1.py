#!/usr/bin/env python3
"""Reproduce the full Table 1 from the command line (outside pytest).

This drives the same experiment harness as ``benchmarks/bench_table1_accuracy.py``
but as a plain script with progress output, so the headline result — LeHDC's
>15% average accuracy increment over baseline binary HDC — can be regenerated
with one command:

    python examples/reproduce_table1.py                 # quick (tiny profile)
    python examples/reproduce_table1.py --profile small # benchmark scale
    python examples/reproduce_table1.py --dimension 10000 --profile full  # paper scale

The script prints measured mean±std accuracies next to the paper's published
values for every dataset and strategy, plus the average-increment row.
"""

from __future__ import annotations

import argparse
import time

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.registry import PAPER_TABLE1, list_datasets
from repro.eval.experiment import run_strategy_comparison
from repro.eval.metrics import average_increment
from repro.eval.tables import format_table

STRATEGY_ORDER = ("baseline", "multimodel", "retraining", "lehdc")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny", choices=["tiny", "small", "full"])
    parser.add_argument("--dimension", type=int, default=2000)
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--lehdc-epochs", type=int, default=30)
    parser.add_argument("--retraining-iterations", type=int, default=25)
    parser.add_argument(
        "--datasets", nargs="*", default=None, help="subset of datasets (default: all six)"
    )
    return parser.parse_args()


def strategies_for(dataset_name: str, args: argparse.Namespace):
    config = get_paper_config(dataset_name).with_overrides(
        epochs=args.lehdc_epochs, batch_size=64, learning_rate=0.01
    )
    return {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "multimodel": lambda rng: MultiModelHDC(models_per_class=8, iterations=2, seed=rng),
        "retraining": lambda rng: RetrainingHDC(
            iterations=args.retraining_iterations, seed=rng
        ),
        "lehdc": lambda rng: LeHDCClassifier(config=config, seed=rng),
    }


def main() -> None:
    args = parse_args()
    datasets = args.datasets or list_datasets()

    measured = {}
    for dataset_name in datasets:
        start = time.time()
        result = run_strategy_comparison(
            dataset_name=dataset_name,
            strategies=strategies_for(dataset_name, args),
            dimension=args.dimension,
            num_levels=32,
            repetitions=args.repetitions,
            profile=args.profile,
            seed=2022,
        )
        measured[dataset_name] = result.summary_percent()
        print(f"[{dataset_name}] done in {time.time() - start:.1f}s")

    rows = []
    for dataset_name in datasets:
        paper_row = PAPER_TABLE1[dataset_name]
        for strategy in STRATEGY_ORDER:
            rows.append(
                [
                    dataset_name,
                    strategy,
                    str(measured[dataset_name][strategy]),
                    f"{paper_row[strategy]:.2f}",
                ]
            )
    print()
    print(
        format_table(
            ["dataset", "strategy", "measured acc %", "paper acc %"],
            rows,
            title=(
                f"Table 1 reproduction (profile={args.profile}, D={args.dimension}, "
                f"reps={args.repetitions}; synthetic substitutes)"
            ),
        )
    )

    baseline_means = [measured[name]["baseline"].mean for name in datasets]
    print("\nAverage increment over baseline (percentage points):")
    for strategy in ("multimodel", "retraining", "lehdc"):
        strategy_means = [measured[name][strategy].mean for name in datasets]
        print(f"  {strategy:11s} {average_increment(strategy_means, baseline_means):+6.2f}")
    print("  (paper:      multimodel +2.22, retraining +8.67, lehdc +15.32)")


if __name__ == "__main__":
    main()
