"""repro — reproduction of "LeHDC: Learning-Based Hyperdimensional Computing
Classifier" (Duan et al., DAC 2022).

The package is organised as:

* :mod:`repro.hdc` — hypervector algebra, item memories and encoders;
* :mod:`repro.nn` — the NumPy neural-network substrate (Adam, dropout, binary
  linear layer with straight-through estimator);
* :mod:`repro.classifiers` — baseline HDC and the heuristic training
  strategies the paper compares against;
* :mod:`repro.core` — LeHDC itself: class hypervectors trained as the weights
  of an equivalent single-layer BNN;
* :mod:`repro.datasets` — synthetic substitutes for the six paper benchmarks
  (plus loaders for the real files when present);
* :mod:`repro.eval` — multi-seed experiments, dimension sweeps, tables and
  text figures;
* :mod:`repro.hardware` — the inference cost model behind the paper's
  zero-overhead claim;
* :mod:`repro.serve` — the packed-inference serving stack: engine,
  micro-batching, model registry and a stdlib JSON/HTTP front-end.

Quickstart::

    from repro import RecordEncoder, LeHDCClassifier, HDCPipeline, get_dataset

    data = get_dataset("fashion_mnist", profile="small", seed=0)
    pipeline = HDCPipeline(RecordEncoder(dimension=4000, seed=0), LeHDCClassifier(seed=0))
    pipeline.fit(data.train_features, data.train_labels)
    print(pipeline.score(data.test_features, data.test_labels))
"""

from repro.classifiers import (
    AdaptHDC,
    BaselineHDC,
    EnhancedRetrainingHDC,
    HDCPipeline,
    MultiModelHDC,
    NearestCentroidClassifier,
    NonBinaryHDC,
    RetrainingHDC,
)
from repro.core import (
    DEFAULT_CONFIG,
    PAPER_CONFIGS,
    BNNTrainer,
    LeHDCClassifier,
    LeHDCConfig,
    NonBinaryLeHDCClassifier,
    SingleLayerBNN,
)
from repro.core.configs import get_paper_config
from repro.datasets import Dataset, get_dataset, list_datasets
from repro.eval import run_dimension_sweep, run_strategy_comparison
from repro.hdc import NGramEncoder, RecordEncoder
from repro.io import load_model, read_model_metadata, save_model
from repro.serve import BatchScheduler, ModelRegistry, PackedInferenceEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # encoders
    "RecordEncoder",
    "NGramEncoder",
    # classifiers
    "BaselineHDC",
    "RetrainingHDC",
    "EnhancedRetrainingHDC",
    "AdaptHDC",
    "MultiModelHDC",
    "NonBinaryHDC",
    "NearestCentroidClassifier",
    "HDCPipeline",
    # LeHDC core
    "LeHDCClassifier",
    "NonBinaryLeHDCClassifier",
    "LeHDCConfig",
    "PAPER_CONFIGS",
    "DEFAULT_CONFIG",
    "get_paper_config",
    "SingleLayerBNN",
    "BNNTrainer",
    # datasets
    "Dataset",
    "get_dataset",
    "list_datasets",
    # evaluation
    "run_strategy_comparison",
    "run_dimension_sweep",
    # persistence
    "save_model",
    "load_model",
    "read_model_metadata",
    # serving
    "PackedInferenceEngine",
    "BatchScheduler",
    "ModelRegistry",
]
