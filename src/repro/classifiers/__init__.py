"""HDC classifiers and training strategies compared in the paper.

All classifiers share the :class:`~repro.classifiers.base.HDCClassifierBase`
interface and operate on *already encoded* sample hypervectors, so a single
encoding pass can be shared across every strategy in an experiment (the
encoding is identical for all of them — the paper's point is that only the
training of the class hypervectors differs).  The
:class:`~repro.classifiers.pipeline.HDCPipeline` wrapper couples an encoder
with any classifier to give a raw-features ``fit``/``predict`` API.

Strategies:

* :class:`BaselineHDC` - centroid bundling (Eq. 2), the "Baseline Binary HDC"
  row of Table 1;
* :class:`RetrainingHDC` - QuantHD-style retraining (Eq. 3 / Fig. 2), the
  "Retraining" row;
* :class:`EnhancedRetrainingHDC` - the improved heuristic of the Sec. 3.3
  case study (Fig. 3);
* :class:`AdaptHDC` - adaptive-learning-rate retraining (the paper's Ref. [6]);
* :class:`MultiModelHDC` - SearcHD-style multi-model ensemble, the
  "Multi-Model" row;
* :class:`NonBinaryHDC` - non-binary (integer centroid) HDC with cosine
  similarity, the "perceptron view" of Sec. 3.1;
* :class:`NearestCentroidClassifier` - classical nearest-centroid reference in
  raw feature space.

The learning-based strategy itself (LeHDC) lives in :mod:`repro.core`.
"""

from repro.classifiers.base import HDCClassifierBase
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.nonbinary import NonBinaryHDC
from repro.classifiers.nearest_centroid import NearestCentroidClassifier
from repro.classifiers.pipeline import HDCPipeline

__all__ = [
    "HDCClassifierBase",
    "BaselineHDC",
    "RetrainingHDC",
    "EnhancedRetrainingHDC",
    "AdaptHDC",
    "MultiModelHDC",
    "NonBinaryHDC",
    "NearestCentroidClassifier",
    "HDCPipeline",
]
