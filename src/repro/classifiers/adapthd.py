"""AdaptHD-style retraining with an adaptive learning rate (the paper's Ref. [6]).

Imani et al.'s AdaptHD adapts the retraining step size instead of using a
fixed ``alpha``.  The paper summarises the idea as making the rate depend on
"the validation error rate or the difference between the similarities of
``cosine(En(x), c_correct)`` and ``cosine(En(x), c_wrong)``".  This
implementation provides both variants:

* ``mode="data"`` - per-sample adaptive rate proportional to the similarity
  gap between the predicted wrong class and the true class (samples that are
  badly misclassified get a larger update);
* ``mode="iteration"`` - per-iteration adaptive rate proportional to the
  current training error rate (early noisy iterations take large steps, later
  ones refine).

It is included as an additional comparator for the benchmark harness; the
paper discusses it qualitatively in Sec. 3.2 when arguing that even adaptive
heuristics use incomplete similarity information.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.retraining import RetrainingHDC
from repro.utils.rng import SeedLike


class AdaptHDC(RetrainingHDC):
    """Retraining with an adaptive (data- or iteration-dependent) learning rate.

    Parameters
    ----------
    mode:
        ``"data"`` (per-sample similarity-gap scaling) or ``"iteration"``
        (per-iteration error-rate scaling).
    max_learning_rate:
        Upper bound on the adaptive rate (the AdaptHD papers sweep a small
        integer range; the exact cap only sets the scale of updates).
    Other parameters are inherited from :class:`RetrainingHDC`.
    """

    def __init__(
        self,
        iterations: int = 150,
        max_learning_rate: float = 1.0,
        mode: str = "data",
        epsilon: float = 1e-4,
        shuffle: bool = True,
        packed_epochs: bool = True,
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        if mode not in ("data", "iteration"):
            raise ValueError(f"mode must be 'data' or 'iteration', got {mode!r}")
        super().__init__(
            iterations=iterations,
            learning_rate=max_learning_rate,
            first_iteration_learning_rate=max_learning_rate,
            epsilon=epsilon,
            shuffle=shuffle,
            packed_epochs=packed_epochs,
            tie_break=tie_break,
            seed=seed,
        )
        self.mode = mode
        self.max_learning_rate = float(max_learning_rate)
        self._current_error_rate = 1.0

    def fit(
        self,
        hypervectors,
        labels,
        validation_hypervectors=None,
        validation_labels=None,
        packed_train=None,
    ):
        self._current_error_rate = 1.0
        result = super().fit(
            hypervectors,
            labels,
            validation_hypervectors=validation_hypervectors,
            validation_labels=validation_labels,
            packed_train=packed_train,
        )
        return result

    def _update(
        self,
        nonbinary: np.ndarray,
        sample: np.ndarray,
        true_label: int,
        predicted: int,
        alpha: float,
        scores: np.ndarray,
    ) -> None:
        if self.mode == "iteration":
            # Track a running error estimate within the pass and scale by it.
            if self.history_ is not None and self.history_.train_accuracy:
                self._current_error_rate = 1.0 - self.history_.train_accuracy[-1]
            rate = self.max_learning_rate * max(self._current_error_rate, 0.05)
        else:
            dimension = sample.shape[0]
            # Similarity gap between the winning wrong class and the true class,
            # normalised to [0, 1]; larger gap -> larger corrective step.
            gap = (scores[predicted] - scores[true_label]) / (2.0 * dimension)
            rate = self.max_learning_rate * float(np.clip(gap * 2.0 + 0.1, 0.05, 1.0))
        nonbinary[true_label] += rate * sample
        nonbinary[predicted] -= rate * sample

    def _epoch_updates(self, scores, labels, predicted, visit, alpha, dimension):
        """Vectorised :meth:`_update`: per-sample adaptive rates for one pass.

        Both rate rules are pass-constant or depend only on the (fixed)
        epoch scores, so the per-sample rates vectorise exactly; the update
        layout mirrors the base class (``+rate`` true, ``-rate`` predicted,
        in visit order).
        """
        if self.mode == "iteration":
            # The error estimate is frozen within a pass (the history only
            # grows after it), so the per-sample rule collapses to one rate.
            if self.history_ is not None and self.history_.train_accuracy:
                self._current_error_rate = 1.0 - self.history_.train_accuracy[-1]
            rates = np.full(
                visit.size, self.max_learning_rate * max(self._current_error_rate, 0.05)
            )
        else:
            gaps = (
                scores[visit, predicted[visit]] - scores[visit, labels[visit]]
            ) / (2.0 * dimension)
            rates = self.max_learning_rate * np.clip(gaps * 2.0 + 0.1, 0.05, 1.0)
        count = visit.size
        class_indices = np.empty(2 * count, dtype=np.intp)
        class_indices[0::2] = labels[visit]
        class_indices[1::2] = predicted[visit]
        coefficients = np.empty(2 * count, dtype=np.float64)
        coefficients[0::2] = rates
        coefficients[1::2] = -rates
        sample_rows = np.repeat(visit, 2)
        return class_indices, coefficients, sample_rows


__all__ = ["AdaptHDC"]
