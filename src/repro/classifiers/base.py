"""Shared interface for HDC classifiers.

Every strategy ends up with a set of binary class hypervectors and classifies
a query by nearest Hamming distance (Eq. 4) — that is the whole point of the
paper: inference is identical across strategies, only training differs.  The
base class therefore owns the inference path and accuracy scoring, and
subclasses implement ``fit`` to produce ``class_hypervectors_``.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.hdc.hypervector import dot_similarity, hamming_distance
from repro.kernels.packed import PackedHypervectors, pack_bipolar, packed_dot_scores
from repro.utils.rng import RngMixin, SeedLike
from repro.utils.validation import check_fitted, check_labels, check_matrix


def top_k_from_scores(scores: np.ndarray, k: int):
    """Select the ``k`` best classes per row of a ``(n, K)`` score matrix.

    Returns ``(labels, scores)``, both ``(n, k)``, best first; ``k`` is
    clipped to the number of classes.  Shared by
    :meth:`~repro.classifiers.pipeline.HDCPipeline.top_k` and the serving
    engine so tie-ordering and clipping can never diverge between the dense
    and packed paths.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(int(k), scores.shape[1])
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(scores, order, axis=1)


class HDCClassifierBase(RngMixin, abc.ABC):
    """Abstract binary-HDC classifier operating on encoded hypervectors.

    Parameters
    ----------
    seed:
        Seed or generator used for any stochastic part of training
        (tie-breaking, shuffling, stochastic updates).

    Attributes
    ----------
    class_hypervectors_:
        ``(K, D)`` int8 bipolar matrix after :meth:`fit`; ``None`` before.
    num_classes_:
        Number of classes ``K`` seen during :meth:`fit`.
    """

    def __init__(self, seed: SeedLike = None):
        super().__init__(seed=seed)
        self.class_hypervectors_: Optional[np.ndarray] = None
        self.num_classes_: Optional[int] = None
        #: (source array, packed form) — holding the source keeps the cache
        #: validity check a simple identity comparison.
        self._packed_classes_cache = None

    # ------------------------------------------------------------------ fit
    @abc.abstractmethod
    def fit(self, hypervectors: np.ndarray, labels: np.ndarray) -> "HDCClassifierBase":
        """Train class hypervectors from encoded samples and integer labels."""

    def supports_packed_training(self) -> bool:
        """True when :meth:`fit` accepts a shared pre-packed training set.

        Strategies riding the packed training kernels take an optional
        ``packed_train=`` :class:`~repro.kernels.train.PackedTrainingSet`
        in :meth:`fit`, letting experiment loops encode + pack each split
        once and share it across strategies.  The default is ``False``;
        the centroid/retraining family overrides it.
        """
        return False

    def _validate_fit_inputs(self, hypervectors, labels):
        hypervectors = check_matrix(hypervectors, "hypervectors")
        labels = check_labels(labels, hypervectors.shape[0])
        num_classes = int(labels.max()) + 1
        if num_classes < 2:
            raise ValueError("training data must contain at least two classes")
        return hypervectors, labels, num_classes

    # ------------------------------------------------------------ inference
    def decision_scores(self, hypervectors: np.ndarray) -> np.ndarray:
        """Similarity of each sample to each class: higher is more similar.

        Returns the integer dot product ``En(x)^T c_k`` (the BNN output of
        Eq. 6); argmax over it equals argmin over Hamming distance.
        """
        check_fitted(self, "class_hypervectors_")
        hypervectors = check_matrix(
            hypervectors, "hypervectors", n_columns=self.class_hypervectors_.shape[1]
        )
        return dot_similarity(hypervectors, self.class_hypervectors_)

    def hamming_distances(self, hypervectors: np.ndarray) -> np.ndarray:
        """Normalised Hamming distance of each sample to each class hypervector."""
        check_fitted(self, "class_hypervectors_")
        hypervectors = check_matrix(
            hypervectors, "hypervectors", n_columns=self.class_hypervectors_.shape[1]
        )
        return hamming_distance(hypervectors, self.class_hypervectors_)

    def predict(self, hypervectors: np.ndarray) -> np.ndarray:
        """Predict integer class labels for encoded samples (Eq. 4)."""
        return np.argmax(self.decision_scores(hypervectors), axis=1)

    # ------------------------------------------------------ packed inference
    def supports_packed_scoring(self) -> bool:
        """True when this classifier's scoring has an exact packed twin.

        By default that means the shared dot-similarity rule (classifiers
        that override :meth:`decision_scores` are assumed bespoke and the
        packed paths fall back to dense for them, e.g. non-binary centroids
        with cosine scoring).  A classifier whose bespoke rule *does* reduce
        to XOR + popcount — the multi-model ensemble's max-over-sub-models —
        overrides this together with :meth:`decision_scores_packed` and
        :meth:`packed_inference_bank`.
        """
        return type(self).decision_scores is HDCClassifierBase.decision_scores

    def decision_scores_packed(self, packed_queries: PackedHypervectors) -> np.ndarray:
        """``(n, K)`` integer dot scores computed entirely over packed words.

        Bit-for-bit equal to :meth:`decision_scores` on the corresponding
        dense bipolar queries (``dot = D - 2 * differing_bits``); only valid
        when :meth:`supports_packed_scoring` is true.
        """
        if not self.supports_packed_scoring():
            raise ValueError(
                f"{type(self).__name__} overrides decision_scores; its scoring "
                "cannot be reproduced by the packed kernel (use decision_scores)"
            )
        check_fitted(self, "class_hypervectors_")
        if packed_queries.dimension != self.class_hypervectors_.shape[1]:
            raise ValueError(
                f"dimension mismatch: {packed_queries.dimension} vs "
                f"{self.class_hypervectors_.shape[1]}"
            )
        return packed_dot_scores(packed_queries, self.packed_class_hypervectors())

    def predict_packed(self, packed_queries: PackedHypervectors) -> np.ndarray:
        """Predict labels from bit-packed queries (Eq. 4 via XOR + popcount)."""
        return np.argmax(self.decision_scores_packed(packed_queries), axis=1)

    def score(self, hypervectors: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on encoded samples."""
        hypervectors = check_matrix(hypervectors, "hypervectors")
        labels = check_labels(labels, hypervectors.shape[0])
        return float(np.mean(self.predict(hypervectors) == labels))

    # -------------------------------------------------------------- helpers
    @property
    def dimension_(self) -> int:
        """Hypervector dimension ``D`` of the fitted model."""
        check_fitted(self, "class_hypervectors_")
        return int(self.class_hypervectors_.shape[1])

    def packed_class_hypervectors(self) -> PackedHypervectors:
        """Export the fitted class hypervectors in bit-packed form.

        Returns a :class:`~repro.kernels.packed.PackedHypervectors` holding
        the ``(K, ceil(D/64))`` uint64 words an accelerator (or the serving
        engine) keeps resident — the entire inference-time model.  The packed
        form is cached and invalidated when ``class_hypervectors_`` is
        replaced (every ``fit`` assigns a fresh array).
        """
        check_fitted(self, "class_hypervectors_")
        cache = self._packed_classes_cache
        if cache is None or cache[0] is not self.class_hypervectors_:
            cache = (self.class_hypervectors_, pack_bipolar(self.class_hypervectors_))
            self._packed_classes_cache = cache
        return cache[1]

    def packed_inference_bank(self) -> PackedHypervectors:
        """The packed words the packed scoring rule keeps resident.

        For shared-rule classifiers this is :meth:`packed_class_hypervectors`
        (one row per class); the multi-model ensemble overrides it with its
        flat ``K * N`` model bank.  The serving engine calls it at compile
        time to pre-build the cache and to account resident packed storage —
        which is how the ensemble's linear-in-``N`` storage growth shows up
        in serving metrics.
        """
        return self.packed_class_hypervectors()

    def adopt_packed_bank(self, packed: PackedHypervectors) -> None:
        """Install an externally held packed bank as this model's scoring words.

        ``repro.cluster`` publishes the packed inference bank into a shared
        memory segment; worker processes hand the attached zero-copy view back
        through this method so :meth:`packed_inference_bank` (and therefore
        every packed scoring call) reads the shared words instead of
        re-packing a private copy.  The bank must match the fitted model's
        shape; only the packed cache is replaced, the dense hypervectors are
        untouched.
        """
        check_fitted(self, "class_hypervectors_")
        num_rows, dimension = self.class_hypervectors_.shape
        if packed.dimension != dimension or len(packed) != num_rows:
            raise ValueError(
                f"packed bank is {len(packed)} x D={packed.dimension}, expected "
                f"{num_rows} x D={dimension}"
            )
        self._packed_classes_cache = (self.class_hypervectors_, packed)


__all__ = ["HDCClassifierBase", "top_k_from_scores"]
