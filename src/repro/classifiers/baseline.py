"""Baseline binary HDC: centroid bundling (Eq. 2).

Each class hypervector is the element-wise majority (sum + sign) of all
training sample hypervectors belonging to that class.  This is the "Baseline
Binary HDC" row of Table 1 and the initialisation every retraining strategy
starts from.

When a pre-packed copy of the training set is supplied (``fit(packed_train=…)``),
the accumulation runs over packed words via
:func:`repro.kernels.train.bundle_packed` — the same integer sums as the
dense ``np.add.at`` rule, so the downstream ``sgn`` (and its tie-break RNG
draws) are bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.kernels.train import PackedTrainingSet, bundle_packed
from repro.utils.rng import SeedLike


class BaselineHDC(HDCClassifierBase):
    """Vanilla binary HDC classifier trained by class-wise bundling.

    Parameters
    ----------
    tie_break:
        How ``sgn(0)`` is resolved when a class's accumulated sum has zero
        entries (paper: random).
    seed:
        Seed or generator for tie-breaking.
    """

    def __init__(self, tie_break: str = "random", seed: SeedLike = None):
        super().__init__(seed=seed)
        if tie_break not in ("random", "positive"):
            raise ValueError(
                f"tie_break must be 'random' or 'positive', got {tie_break!r}"
            )
        self.tie_break = tie_break
        self.accumulators_: Optional[np.ndarray] = None

    def supports_packed_training(self) -> bool:
        """Accepts a shared :class:`PackedTrainingSet` via ``fit(packed_train=…)``."""
        return True

    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        packed_train: Optional[PackedTrainingSet] = None,
    ) -> "BaselineHDC":
        """Bundle the sample hypervectors of each class into its class hypervector."""
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        dimension = hypervectors.shape[1]
        if packed_train is not None:
            packed_train.require_matches(hypervectors)
            accumulators = bundle_packed(packed_train.packed, labels, num_classes)
        else:
            accumulators = np.zeros((num_classes, dimension), dtype=np.int64)
            # np.add.at accumulates rows grouped by label without a Python loop
            # over samples.
            np.add.at(accumulators, labels, hypervectors.astype(np.int64))
        self.accumulators_ = accumulators
        self.class_hypervectors_ = sign_with_ties(
            accumulators, rng=self.rng, tie_break=self.tie_break
        ).astype(BIPOLAR_DTYPE)
        self.num_classes_ = num_classes
        return self


__all__ = ["BaselineHDC"]
