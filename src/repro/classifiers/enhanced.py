"""Enhanced retraining: the Sec. 3.3 case-study heuristic (Fig. 3).

Two modifications over :class:`~repro.classifiers.retraining.RetrainingHDC`,
exactly as described in the paper's case study:

1. when a sample is misclassified, *all* class hypervectors whose similarity
   to the sample exceeds the true class's similarity are pushed away, not just
   the single most-similar wrong class;
2. every update is scaled by the similarity error — the difference between
   the observed Hamming distance and the ideal one (0 for the true class,
   0.5 for a wrong class) — which is the squared-error gradient the paper
   points out is missing from plain retraining.

The paper uses this variant only to demonstrate that the limitations it
identified are real (it remains a heuristic); here it also serves as an extra
comparison point in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.retraining import RetrainingHDC


class EnhancedRetrainingHDC(RetrainingHDC):
    """Retraining with multi-class updates scaled by the similarity error."""

    def _update(
        self,
        nonbinary: np.ndarray,
        sample: np.ndarray,
        true_label: int,
        predicted: int,
        alpha: float,
        scores: np.ndarray,
    ) -> None:
        dimension = sample.shape[0]
        # Convert dot-product scores to normalised Hamming distances:
        # hamming = (D - dot) / (2 D).
        distances = (dimension - scores) / (2.0 * dimension)
        true_distance = distances[true_label]

        # Ideal distance to the true class is 0; scale its pull by how far we are.
        nonbinary[true_label] += alpha * true_distance * 2.0 * sample

        # Every wrong class at least as similar as the true class gets pushed
        # away, scaled by how much closer than the ideal 0.5 it sits.
        closer_wrong = np.flatnonzero(distances <= true_distance)
        for wrong_label in closer_wrong:
            if wrong_label == true_label:
                continue
            shortfall = 0.5 - distances[wrong_label]
            if shortfall <= 0:
                continue
            nonbinary[wrong_label] -= alpha * shortfall * 2.0 * sample


__all__ = ["EnhancedRetrainingHDC"]
