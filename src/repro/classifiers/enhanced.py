"""Enhanced retraining: the Sec. 3.3 case-study heuristic (Fig. 3).

Two modifications over :class:`~repro.classifiers.retraining.RetrainingHDC`,
exactly as described in the paper's case study:

1. when a sample is misclassified, *all* class hypervectors whose similarity
   to the sample exceeds the true class's similarity are pushed away, not just
   the single most-similar wrong class;
2. every update is scaled by the similarity error — the difference between
   the observed Hamming distance and the ideal one (0 for the true class,
   0.5 for a wrong class) — which is the squared-error gradient the paper
   points out is missing from plain retraining.

The paper uses this variant only to demonstrate that the limitations it
identified are real (it remains a heuristic); here it also serves as an extra
comparison point in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.retraining import RetrainingHDC


class EnhancedRetrainingHDC(RetrainingHDC):
    """Retraining with multi-class updates scaled by the similarity error."""

    def _update(
        self,
        nonbinary: np.ndarray,
        sample: np.ndarray,
        true_label: int,
        predicted: int,
        alpha: float,
        scores: np.ndarray,
    ) -> None:
        dimension = sample.shape[0]
        # Convert dot-product scores to normalised Hamming distances:
        # hamming = (D - dot) / (2 D).
        distances = (dimension - scores) / (2.0 * dimension)
        true_distance = distances[true_label]

        # Ideal distance to the true class is 0; scale its pull by how far we are.
        nonbinary[true_label] += alpha * true_distance * 2.0 * sample

        # Every wrong class at least as similar as the true class gets pushed
        # away, scaled by how much closer than the ideal 0.5 it sits.
        closer_wrong = np.flatnonzero(distances <= true_distance)
        for wrong_label in closer_wrong:
            if wrong_label == true_label:
                continue
            shortfall = 0.5 - distances[wrong_label]
            if shortfall <= 0:
                continue
            nonbinary[wrong_label] -= alpha * shortfall * 2.0 * sample

    def _epoch_updates(self, scores, labels, predicted, visit, alpha, dimension):
        """Vectorised :meth:`_update`: multi-class pushes for one whole pass.

        Per misclassified sample the sequential loop applies the true-class
        pull first, then one push per closer-than-true wrong class in
        ascending class order.  The flattened update list reproduces that
        order exactly: per sample a slot for the pull followed by its pushes
        (``np.nonzero`` on the per-sample mask is class-ascending already).
        """
        count = visit.size
        true_labels = labels[visit]
        distances = (dimension - scores[visit]) / (2.0 * dimension)
        true_distance = distances[np.arange(count), true_labels]
        shortfall = 0.5 - distances
        push_mask = (distances <= true_distance[:, None]) & (shortfall > 0)
        push_mask[np.arange(count), true_labels] = False
        push_sample, push_class = np.nonzero(push_mask)

        pushes_per_sample = push_mask.sum(axis=1)
        slots = np.zeros(count + 1, dtype=np.intp)
        np.cumsum(1 + pushes_per_sample, out=slots[1:])
        total = int(slots[-1])
        class_indices = np.empty(total, dtype=np.intp)
        coefficients = np.empty(total, dtype=np.float64)
        sample_rows = np.empty(total, dtype=np.intp)

        pull_slots = slots[:-1]
        class_indices[pull_slots] = true_labels
        coefficients[pull_slots] = alpha * true_distance * 2.0
        sample_rows[pull_slots] = visit

        push_starts = np.cumsum(pushes_per_sample) - pushes_per_sample
        rank_within_sample = np.arange(push_sample.size) - push_starts[push_sample]
        push_slots = slots[push_sample] + 1 + rank_within_sample
        class_indices[push_slots] = push_class
        coefficients[push_slots] = -(alpha * shortfall[push_sample, push_class] * 2.0)
        sample_rows[push_slots] = visit[push_sample]
        return class_indices, coefficients, sample_rows


__all__ = ["EnhancedRetrainingHDC"]
