"""Multi-model (ensemble) HDC in the style of SearcHD, the paper's Ref. [8].

SearcHD keeps ``N`` binary class hypervectors *per class* instead of one and
trains them with stochastic updates: each misclassified sample updates the
per-class model it is most similar to, flipping a random subset of the bits
that disagree with the sample.  At inference, a query is compared against all
``K * N`` hypervectors and the class of the best match wins.

The paper uses 64 models per class in its evaluation (Sec. 5) and notes two
behaviours this implementation reproduces:

* the ensemble's storage grows linearly in ``N`` (captured by the hardware
  cost model and the resource benchmark);
* on datasets with many features/classes but few training samples the
  ensemble can do *worse* than the plain baseline (Table 1's CIFAR-10 and
  ISOLET rows), because each sub-model sees too few updates.

Training and inference are *packed-native* by default, matching SearcHD's own
pitch that binary models exist so hardware can run XOR+popcount instead of
GEMMs:

* ``fit`` scores the whole packed training set against the packed model bank
  once per pass and replays the sequential stochastic updates on an
  incrementally-maintained score matrix
  (:class:`~repro.kernels.train.EnsembleScoreboard`) — bit-identical to the
  seed per-sample loop (same models, same RNG stream, both ``push_away``
  settings), which stays available as ``packed_epochs=False`` and as the
  automatic fallback for non-bipolar inputs;
* ``decision_scores_packed`` scores packed queries against the flat packed
  model bank (blocked XOR+popcount) and takes the max over each class's
  sub-models, so the serving engine and the experiment loops' shared packed
  splits no longer fall back to dense for ensemble models.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.classifiers.retraining import RetrainingHistory
from repro.hdc.hypervector import BIPOLAR_DTYPE, random_hypervectors, sign_with_ties
from repro.kernels.linear import matmul
from repro.kernels.packed import PackedHypervectors, pack_bipolar, packed_dot_scores
from repro.kernels.train import EnsembleScoreboard, PackedTrainingSet, unpack_bit_rows
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fitted, check_matrix, check_positive_int, check_probability


class MultiModelHDC(HDCClassifierBase):
    """SearcHD-style multi-model binary HDC ensemble.

    Parameters
    ----------
    models_per_class:
        Number of binary hypervectors kept per class (paper: 64).
    iterations:
        Number of stochastic training passes over the data.
    flip_fraction:
        Fraction of disagreeing bits flipped toward a sample on an update
        (the stochastic update of SearcHD).
    push_away:
        When ``True`` also flip bits of the winning *wrong* sub-model away
        from a misclassified sample.  Disabled by default: with the small
        training sets used here the destructive update dominates and drags
        every sub-model toward noise, whereas the pull-only update keeps the
        ensemble's mixed behaviour reported in Table 1 (sometimes above,
        sometimes below the baseline).
    packed_epochs:
        Train on the packed incremental-scoring path (default).  The packed
        path is bit-identical to the seed per-sample loop — same
        ``model_hypervectors_``, same RNG stream — which remains available
        by passing ``False`` (benchmarking, regression comparison) and is
        taken automatically for non-bipolar inputs.
    seed:
        Seed or generator for initialisation and stochastic flips.

    Attributes
    ----------
    model_hypervectors_:
        ``(K, N, D)`` int8 bipolar model bank after :meth:`fit`.
    history_:
        A :class:`~repro.classifiers.retraining.RetrainingHistory` with the
        per-pass training accuracy (fraction of samples already classified
        correctly at visit time), the per-pass update volume (flipped bits
        as a fraction of all ``K * N * D`` model bits), and per-pass wall
        seconds — identical between the packed and sequential paths except
        for ``iteration_seconds``.
    """

    def __init__(
        self,
        models_per_class: int = 64,
        iterations: int = 10,
        flip_fraction: float = 0.02,
        push_away: bool = False,
        packed_epochs: bool = True,
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.models_per_class = check_positive_int(models_per_class, "models_per_class")
        self.iterations = check_positive_int(iterations, "iterations")
        self.flip_fraction = check_probability(flip_fraction, "flip_fraction")
        if self.flip_fraction == 0.0:
            raise ValueError("flip_fraction must be > 0 for training to make progress")
        self.push_away = bool(push_away)
        self.packed_epochs = bool(packed_epochs)
        self.model_hypervectors_: Optional[np.ndarray] = None
        self.history_: Optional[RetrainingHistory] = None
        #: (source bank, value) caches keyed on ``model_hypervectors_`` identity.
        self._packed_bank_cache = None
        self._score_bank_cache = None

    def supports_packed_training(self) -> bool:
        """Accepts a shared :class:`PackedTrainingSet` via ``fit(packed_train=…)``."""
        return True

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        packed_train: Optional[PackedTrainingSet] = None,
    ) -> "MultiModelHDC":
        """Train the per-class ensembles with stochastic bit-flip updates.

        ``packed_train`` supplies a pre-packed copy of ``hypervectors`` so
        experiment loops can encode + pack each split once and share it
        across strategies; when omitted, the packed copy is built here
        (bipolar input only — anything else falls back to the seed loop).
        """
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        train_set = self._resolve_training_set(hypervectors, packed_train)
        if train_set is not None:
            return self._fit_packed(train_set, labels, num_classes)
        return self._fit_sequential(hypervectors, labels, num_classes)

    def _resolve_training_set(
        self,
        hypervectors: np.ndarray,
        packed_train: Optional[PackedTrainingSet],
    ) -> Optional[PackedTrainingSet]:
        """Validate a supplied packed copy, or build one for bipolar input.

        ``packed_epochs=False`` wins over a supplied ``packed_train``: the
        flag's contract is "run the sequential loop", even under experiment
        loops that hand every strategy the shared packed set.
        """
        if packed_train is not None:
            packed_train.require_matches(hypervectors)
        if not self.packed_epochs:
            return None
        if packed_train is not None:
            return packed_train
        return PackedTrainingSet.try_from_dense(hypervectors)

    # ----------------------------------------------------------- packed fit
    def _fit_packed(
        self,
        train_set: PackedTrainingSet,
        labels: np.ndarray,
        num_classes: int,
    ) -> "MultiModelHDC":
        """Score-once + incremental column updates over packed words.

        Bit-identical to :meth:`_fit_sequential`: the scoreboard's visit-time
        rows equal the dense per-sample products exactly (integer XOR+popcount
        arithmetic), the flip selection runs on the same dense rows through
        the same RNG calls, and a flip patches exactly the one score column
        that changed.  Because the deltas are exact, the matrix built at
        scoreboard construction stays valid across pass boundaries — no
        re-scoring anywhere in the run.
        """
        dimension = train_set.dimension
        models_per_class = self.models_per_class
        models = self._initialise_models_packed(
            train_set, labels, num_classes, dimension
        )
        samples = train_set.samples
        num_samples = train_set.num_samples
        board = EnsembleScoreboard(
            train_set.packed,
            pack_bipolar(models.reshape(-1, dimension)).words,
            dimension,
        )

        history = RetrainingHistory()
        self.history_ = history
        for _ in range(self.iterations):
            started = time.perf_counter()
            order = self.rng.permutation(num_samples)
            correct = 0
            flipped_bits = 0
            for index in order:
                row = board.scores[index]
                best = int(np.argmax(row))
                predicted = best // models_per_class
                true_label = labels[index]
                if predicted == true_label:
                    correct += 1
                    continue
                sample = samples[index]
                base = true_label * models_per_class
                target = int(np.argmax(row[base : base + models_per_class]))
                chosen = self._flip_toward(models[true_label, target], sample)
                if chosen is not None:
                    board.flip_bits(base + target, chosen)
                    flipped_bits += chosen.size
                if self.push_away:
                    chosen = self._flip_away(
                        models[predicted, best % models_per_class], sample
                    )
                    if chosen is not None:
                        board.flip_bits(best, chosen)
                        flipped_bits += chosen.size
            self._record_pass(
                history,
                correct,
                num_samples,
                flipped_bits,
                board.num_models * dimension,
                started,
            )

        return self._publish_models(models, num_classes)

    def _initialise_models_packed(
        self,
        train_set: PackedTrainingSet,
        labels: np.ndarray,
        num_classes: int,
        dimension: int,
    ) -> np.ndarray:
        """Bootstrap-bundle the sub-models over packed words.

        Identical draws to :meth:`_initialise_models`: the per-model
        ``rng.choice`` and the ``sgn(0)`` tie draws must interleave exactly
        as in the seed loop (choice then sign, model by model — a later
        choice depends on an earlier sign's draws), so bundling cannot batch
        across the ``num_classes x models_per_class`` grid.  What moves to
        the kernel layer instead: each class's member rows are expanded from
        packed words to a 0/1 bit matrix *once*
        (:func:`~repro.kernels.train.unpack_bit_rows`), and every bootstrap
        bundle becomes a uint8 row-gather + column sum — the
        ``2 * set_bits - rows`` rule of
        :func:`~repro.kernels.train.bundle_packed` at an eighth of the dense
        ``astype(int64)`` path's memory traffic, with the exact same integer
        accumulators and therefore the exact same tie positions.
        """
        models = random_hypervectors(
            num_classes * self.models_per_class, dimension, seed=self.rng
        ).reshape(num_classes, self.models_per_class, dimension)
        words = train_set.packed.words
        for class_index in range(num_classes):
            member_indices = np.flatnonzero(labels == class_index)
            if member_indices.size == 0:
                continue
            subset_size = max(1, member_indices.size // 2)
            member_bits = unpack_bit_rows(words[member_indices], dimension)
            for model_index in range(self.models_per_class):
                chosen = self.rng.choice(member_indices, size=subset_size, replace=True)
                local_rows = np.searchsorted(member_indices, chosen)
                counts = member_bits[local_rows].sum(axis=0, dtype=np.int64)
                accumulated = 2 * counts - subset_size
                models[class_index, model_index] = sign_with_ties(
                    accumulated, rng=self.rng
                )
        return models

    # ------------------------------------------------------- sequential fit
    def _fit_sequential(
        self, hypervectors: np.ndarray, labels: np.ndarray, num_classes: int
    ) -> "MultiModelHDC":
        """The seed's per-sample loop: one dense model-bank matmul per sample."""
        dimension = hypervectors.shape[1]
        models = self._initialise_models(hypervectors, labels, num_classes, dimension)

        samples = hypervectors.astype(np.int8)
        num_samples = samples.shape[0]
        history = RetrainingHistory()
        self.history_ = history
        for _ in range(self.iterations):
            started = time.perf_counter()
            order = self.rng.permutation(num_samples)
            correct = 0
            flipped_bits = 0
            for index in order:
                sample = samples[index]
                true_label = labels[index]
                flat = models.reshape(-1, dimension)
                scores = flat.astype(np.int32) @ sample.astype(np.int32)
                best = int(np.argmax(scores))
                predicted = best // self.models_per_class
                if predicted == true_label:
                    correct += 1
                    continue
                # Pull the closest sub-model of the true class toward the sample
                # and push the winning wrong sub-model away, each by flipping a
                # random subset of disagreeing/agreeing bits.
                true_scores = scores[
                    true_label
                    * self.models_per_class : (true_label + 1)
                    * self.models_per_class
                ]
                target = int(np.argmax(true_scores))
                chosen = self._flip_toward(models[true_label, target], sample)
                if chosen is not None:
                    flipped_bits += chosen.size
                if self.push_away:
                    chosen = self._flip_away(
                        models[predicted, best % self.models_per_class], sample
                    )
                    if chosen is not None:
                        flipped_bits += chosen.size
            self._record_pass(
                history,
                correct,
                num_samples,
                flipped_bits,
                num_classes * self.models_per_class * dimension,
                started,
            )

        return self._publish_models(models, num_classes)

    def _initialise_models(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        dimension: int,
    ) -> np.ndarray:
        """Seed each sub-model by bundling a bootstrap subset of its class.

        SearcHD starts its per-class models from stochastic combinations of the
        class's encoded samples rather than pure noise; bootstrapping a random
        half of the class per sub-model reproduces that behaviour and gives the
        ensemble diversity without requiring many refinement passes.  Classes
        with no samples (possible only with malformed labels) fall back to a
        random hypervector.
        """
        from repro.hdc.hypervector import bundle

        models = random_hypervectors(
            num_classes * self.models_per_class, dimension, seed=self.rng
        ).reshape(num_classes, self.models_per_class, dimension)
        for class_index in range(num_classes):
            member_indices = np.flatnonzero(labels == class_index)
            if member_indices.size == 0:
                continue
            subset_size = max(1, member_indices.size // 2)
            for model_index in range(self.models_per_class):
                chosen = self.rng.choice(member_indices, size=subset_size, replace=True)
                models[class_index, model_index] = bundle(
                    hypervectors[chosen], rng=self.rng
                )
        return models

    # ------------------------------------------------------- shared helpers
    def _flip_toward(self, model: np.ndarray, sample: np.ndarray) -> Optional[np.ndarray]:
        """Flip a random subset of disagreeing bits toward *sample* in place.

        Returns the flipped positions (every chosen bit changes, since it
        disagreed) so the packed path can patch its score column, or ``None``
        when the model already matches the sample (no RNG consumed).
        """
        disagree = np.flatnonzero(model != sample)
        if disagree.size == 0:
            return None
        count = max(1, int(round(self.flip_fraction * disagree.size)))
        chosen = self.rng.choice(disagree, size=count, replace=False)
        model[chosen] = sample[chosen]
        return chosen

    def _flip_away(self, model: np.ndarray, sample: np.ndarray) -> Optional[np.ndarray]:
        """Flip a random subset of agreeing bits away from *sample* in place."""
        agree = np.flatnonzero(model == sample)
        if agree.size == 0:
            return None
        count = max(1, int(round(self.flip_fraction * agree.size)))
        chosen = self.rng.choice(agree, size=count, replace=False)
        model[chosen] = -sample[chosen]
        return chosen

    @staticmethod
    def _record_pass(
        history: RetrainingHistory,
        correct: int,
        num_samples: int,
        flipped_bits: int,
        total_model_bits: int,
        started: float,
    ) -> None:
        """Append one pass to the history (same fields on both fit paths).

        ``update_fraction`` is the pass's update *volume* — bits flipped as a
        fraction of all ``K * N * D`` model bits (a bit flipped twice counts
        twice), the ensemble analogue of retraining's flipped-bit fraction.
        Everything except ``iteration_seconds`` is derived from quantities
        the packed and sequential paths compute identically.
        """
        history.train_accuracy.append(correct / num_samples)
        history.update_fraction.append(flipped_bits / float(total_model_bits))
        history.iteration_seconds.append(time.perf_counter() - started)

    def _publish_models(self, models: np.ndarray, num_classes: int) -> "MultiModelHDC":
        """Install the trained bank and its derived per-class majority vectors."""
        self.model_hypervectors_ = models.astype(BIPOLAR_DTYPE)
        self.num_classes_ = num_classes
        # The base-class inference path expects one hypervector per class; the
        # ensemble overrides decision_scores instead, but we still expose the
        # per-class majority vector for storage accounting and inspection.
        majority = np.where(models.sum(axis=1) >= 0, 1, -1)
        self.class_hypervectors_ = majority.astype(BIPOLAR_DTYPE)
        return self

    # ------------------------------------------------------------ inference
    def supports_packed_scoring(self) -> bool:
        """The max-over-ensemble rule has an exact packed re-implementation."""
        return True

    def decision_scores(self, hypervectors: np.ndarray) -> np.ndarray:
        """Best sub-model similarity per class (max over the ensemble).

        Scores in int32 through the kernel matmul (|dot| <= D fits easily):
        the seed implementation re-cast the whole model bank *and* the
        queries to int64 on every call, doubling the memory traffic of the
        dense path for no extra range.
        """
        check_fitted(self, "model_hypervectors_")
        hypervectors = check_matrix(
            hypervectors,
            "hypervectors",
            n_columns=self.model_hypervectors_.shape[2],
        )
        num_classes, models_per_class, _ = self.model_hypervectors_.shape
        scores = matmul(
            hypervectors.astype(np.int32, copy=False), self._score_bank()
        )
        scores = scores.reshape(hypervectors.shape[0], num_classes, models_per_class)
        return scores.max(axis=2)

    def decision_scores_packed(self, packed_queries: PackedHypervectors) -> np.ndarray:
        """Max-over-ensemble scores computed entirely over packed words.

        One blocked XOR+popcount of the queries against the flat ``K * N``
        packed model bank, then the max over each class's sub-models —
        exactly equal to :meth:`decision_scores` (``dot = D - 2 * diff``).
        """
        check_fitted(self, "model_hypervectors_")
        num_classes, models_per_class, dimension = self.model_hypervectors_.shape
        if packed_queries.dimension != dimension:
            raise ValueError(
                f"dimension mismatch: {packed_queries.dimension} vs {dimension}"
            )
        scores = packed_dot_scores(packed_queries, self.packed_inference_bank())
        scores = scores.reshape(len(packed_queries), num_classes, models_per_class)
        return scores.max(axis=2)

    def packed_inference_bank(self) -> PackedHypervectors:
        """The flat ``(K * N, ceil(D/64))`` packed model bank, cached.

        This is what an accelerator (or the serving engine) keeps resident
        for an ensemble model — the paper's linear-in-``N`` storage growth,
        now visible as serving bytes.
        """
        check_fitted(self, "model_hypervectors_")
        cache = self._packed_bank_cache
        if cache is None or cache[0] is not self.model_hypervectors_:
            flat = self.model_hypervectors_.reshape(
                -1, self.model_hypervectors_.shape[2]
            )
            cache = (self.model_hypervectors_, pack_bipolar(flat))
            self._packed_bank_cache = cache
        return cache[1]

    def adopt_packed_bank(self, packed: PackedHypervectors) -> None:
        """Install a shared flat ``(K * N, ceil(D/64))`` bank (see base class).

        The ensemble's resident words are the flat model bank, not the
        per-class majority vectors, so the shape check and the cache this
        method installs both differ from the base implementation.
        """
        check_fitted(self, "model_hypervectors_")
        num_classes, models_per_class, dimension = self.model_hypervectors_.shape
        if packed.dimension != dimension or (
            len(packed) != num_classes * models_per_class
        ):
            raise ValueError(
                f"packed bank is {len(packed)} x D={packed.dimension}, expected "
                f"{num_classes * models_per_class} x D={dimension}"
            )
        self._packed_bank_cache = (self.model_hypervectors_, packed)

    def _score_bank(self) -> np.ndarray:
        """The transposed int32 model bank for the dense scoring path, cached."""
        cache = self._score_bank_cache
        if cache is None or cache[0] is not self.model_hypervectors_:
            flat = self.model_hypervectors_.reshape(
                -1, self.model_hypervectors_.shape[2]
            )
            cache = (
                self.model_hypervectors_,
                np.ascontiguousarray(flat.T, dtype=np.int32),
            )
            self._score_bank_cache = cache
        return cache[1]

    @property
    def storage_hypervectors(self) -> int:
        """Total number of binary hypervectors the ensemble must store."""
        check_fitted(self, "model_hypervectors_")
        return int(self.model_hypervectors_.shape[0] * self.model_hypervectors_.shape[1])


__all__ = ["MultiModelHDC"]
