"""Multi-model (ensemble) HDC in the style of SearcHD, the paper's Ref. [8].

SearcHD keeps ``N`` binary class hypervectors *per class* instead of one and
trains them with stochastic updates: each misclassified sample updates the
per-class model it is most similar to, flipping a random subset of the bits
that disagree with the sample.  At inference, a query is compared against all
``K * N`` hypervectors and the class of the best match wins.

The paper uses 64 models per class in its evaluation (Sec. 5) and notes two
behaviours this implementation reproduces:

* the ensemble's storage grows linearly in ``N`` (captured by the hardware
  cost model and the resource benchmark);
* on datasets with many features/classes but few training samples the
  ensemble can do *worse* than the plain baseline (Table 1's CIFAR-10 and
  ISOLET rows), because each sub-model sees too few updates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.hdc.hypervector import BIPOLAR_DTYPE, random_hypervectors
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fitted, check_matrix, check_positive_int, check_probability


class MultiModelHDC(HDCClassifierBase):
    """SearcHD-style multi-model binary HDC ensemble.

    Parameters
    ----------
    models_per_class:
        Number of binary hypervectors kept per class (paper: 64).
    iterations:
        Number of stochastic training passes over the data.
    flip_fraction:
        Fraction of disagreeing bits flipped toward a sample on an update
        (the stochastic update of SearcHD).
    push_away:
        When ``True`` also flip bits of the winning *wrong* sub-model away
        from a misclassified sample.  Disabled by default: with the small
        training sets used here the destructive update dominates and drags
        every sub-model toward noise, whereas the pull-only update keeps the
        ensemble's mixed behaviour reported in Table 1 (sometimes above,
        sometimes below the baseline).
    seed:
        Seed or generator for initialisation and stochastic flips.
    """

    def __init__(
        self,
        models_per_class: int = 64,
        iterations: int = 10,
        flip_fraction: float = 0.02,
        push_away: bool = False,
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.models_per_class = check_positive_int(models_per_class, "models_per_class")
        self.iterations = check_positive_int(iterations, "iterations")
        self.flip_fraction = check_probability(flip_fraction, "flip_fraction")
        if self.flip_fraction == 0.0:
            raise ValueError("flip_fraction must be > 0 for training to make progress")
        self.push_away = bool(push_away)
        self.model_hypervectors_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fit
    def fit(self, hypervectors: np.ndarray, labels: np.ndarray) -> "MultiModelHDC":
        """Train the per-class ensembles with stochastic bit-flip updates."""
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        dimension = hypervectors.shape[1]
        models = self._initialise_models(hypervectors, labels, num_classes, dimension)

        samples = hypervectors.astype(np.int8)
        for _ in range(self.iterations):
            order = self.rng.permutation(samples.shape[0])
            for index in order:
                sample = samples[index]
                true_label = labels[index]
                flat = models.reshape(-1, dimension)
                scores = flat.astype(np.int32) @ sample.astype(np.int32)
                best = int(np.argmax(scores))
                predicted = best // self.models_per_class
                if predicted == true_label:
                    continue
                # Pull the closest sub-model of the true class toward the sample
                # and push the winning wrong sub-model away, each by flipping a
                # random subset of disagreeing/agreeing bits.
                true_scores = scores[
                    true_label
                    * self.models_per_class : (true_label + 1)
                    * self.models_per_class
                ]
                target = int(np.argmax(true_scores))
                self._flip_toward(models[true_label, target], sample)
                if self.push_away:
                    self._flip_away(models[predicted, best % self.models_per_class], sample)

        self.model_hypervectors_ = models.astype(BIPOLAR_DTYPE)
        self.num_classes_ = num_classes
        # The base-class inference path expects one hypervector per class; the
        # ensemble overrides decision_scores instead, but we still expose the
        # per-class majority vector for storage accounting and inspection.
        majority = np.where(models.sum(axis=1) >= 0, 1, -1)
        self.class_hypervectors_ = majority.astype(BIPOLAR_DTYPE)
        return self

    def _initialise_models(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        dimension: int,
    ) -> np.ndarray:
        """Seed each sub-model by bundling a bootstrap subset of its class.

        SearcHD starts its per-class models from stochastic combinations of the
        class's encoded samples rather than pure noise; bootstrapping a random
        half of the class per sub-model reproduces that behaviour and gives the
        ensemble diversity without requiring many refinement passes.  Classes
        with no samples (possible only with malformed labels) fall back to a
        random hypervector.
        """
        from repro.hdc.hypervector import bundle

        models = random_hypervectors(
            num_classes * self.models_per_class, dimension, seed=self.rng
        ).reshape(num_classes, self.models_per_class, dimension)
        for class_index in range(num_classes):
            member_indices = np.flatnonzero(labels == class_index)
            if member_indices.size == 0:
                continue
            subset_size = max(1, member_indices.size // 2)
            for model_index in range(self.models_per_class):
                chosen = self.rng.choice(member_indices, size=subset_size, replace=True)
                models[class_index, model_index] = bundle(
                    hypervectors[chosen], rng=self.rng
                )
        return models

    def _flip_toward(self, model: np.ndarray, sample: np.ndarray) -> None:
        disagree = np.flatnonzero(model != sample)
        if disagree.size == 0:
            return
        count = max(1, int(round(self.flip_fraction * disagree.size)))
        chosen = self.rng.choice(disagree, size=count, replace=False)
        model[chosen] = sample[chosen]

    def _flip_away(self, model: np.ndarray, sample: np.ndarray) -> None:
        agree = np.flatnonzero(model == sample)
        if agree.size == 0:
            return
        count = max(1, int(round(self.flip_fraction * agree.size)))
        chosen = self.rng.choice(agree, size=count, replace=False)
        model[chosen] = -sample[chosen]

    # ------------------------------------------------------------ inference
    def decision_scores(self, hypervectors: np.ndarray) -> np.ndarray:
        """Best sub-model similarity per class (max over the ensemble)."""
        check_fitted(self, "model_hypervectors_")
        hypervectors = check_matrix(
            hypervectors,
            "hypervectors",
            n_columns=self.model_hypervectors_.shape[2],
        )
        num_classes, models_per_class, dimension = self.model_hypervectors_.shape
        flat = self.model_hypervectors_.reshape(-1, dimension).astype(np.int64)
        scores = hypervectors.astype(np.int64) @ flat.T
        scores = scores.reshape(hypervectors.shape[0], num_classes, models_per_class)
        return scores.max(axis=2)

    @property
    def storage_hypervectors(self) -> int:
        """Total number of binary hypervectors the ensemble must store."""
        check_fitted(self, "model_hypervectors_")
        return int(self.model_hypervectors_.shape[0] * self.model_hypervectors_.shape[1])


__all__ = ["MultiModelHDC"]
