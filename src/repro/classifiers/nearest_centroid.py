"""Classical nearest-centroid classifier in raw feature space.

The paper observes (Sec. 2.1) that baseline HDC inference "is similar to the
nearest centroid classification in machine learning".  This reference
implementation operates directly on the un-encoded feature vectors and serves
two purposes in the reproduction: a sanity check that the synthetic datasets
are learnable at all, and a concrete demonstration (in tests/examples) of the
analogy the paper draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.linear import matmul
from repro.utils.validation import check_fitted, check_labels, check_matrix


class NearestCentroidClassifier:
    """Nearest-centroid classification with Euclidean or cosine distance.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or ``"cosine"``.
    """

    def __init__(self, metric: str = "euclidean"):
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
        self.metric = metric
        self.centroids_: Optional[np.ndarray] = None
        self.num_classes_: Optional[int] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NearestCentroidClassifier":
        """Compute per-class mean feature vectors."""
        features = check_matrix(features, "features", dtype=np.float64)
        labels = check_labels(labels, features.shape[0])
        num_classes = int(labels.max()) + 1
        centroids = np.zeros((num_classes, features.shape[1]), dtype=np.float64)
        counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
        if np.any(counts == 0):
            raise ValueError("every class in [0, max(labels)] must have samples")
        np.add.at(centroids, labels, features)
        centroids /= counts[:, None]
        self.centroids_ = centroids
        self.num_classes_ = num_classes
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Label each sample with the class of its nearest centroid."""
        check_fitted(self, "centroids_")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.centroids_.shape[1]
        )
        if self.metric == "euclidean":
            # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
            # constant per sample and can be dropped from the argmin.
            cross = matmul(features, self.centroids_.T)
            centroid_norms = (self.centroids_**2).sum(axis=1)
            distances = centroid_norms[None, :] - 2.0 * cross
            return np.argmin(distances, axis=1)
        feature_norms = np.linalg.norm(features, axis=1, keepdims=True)
        centroid_norms = np.linalg.norm(self.centroids_, axis=1, keepdims=True).T
        feature_norms[feature_norms == 0] = 1.0
        centroid_norms[centroid_norms == 0] = 1.0
        similarities = matmul(features, self.centroids_.T) / (
            feature_norms * centroid_norms
        )
        return np.argmax(similarities, axis=1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on raw feature vectors."""
        features = check_matrix(features, "features", dtype=np.float64)
        labels = check_labels(labels, features.shape[0])
        return float(np.mean(self.predict(features) == labels))


__all__ = ["NearestCentroidClassifier"]
