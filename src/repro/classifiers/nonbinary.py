"""Non-binary HDC classifier (the "perceptron view" of Sec. 3.1).

Non-binary HDC keeps integer class hypervectors (the raw accumulated
centroids, without the final ``sgn``) and classifies by cosine similarity.
The paper notes the BNN equivalence extends to this case — the model becomes
a plain single-layer perceptron with non-binary weights — and that non-binary
HDC carries richer information at a higher hardware cost.  It is included as
an additional comparator and for tests of the binary/non-binary relationship.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.hdc.hypervector import sign_with_ties
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fitted, check_matrix


class NonBinaryHDC(HDCClassifierBase):
    """Centroid HDC with non-binarised class hypervectors and cosine scoring.

    Parameters
    ----------
    retraining_iterations:
        Optional number of perceptron-style retraining passes applied to the
        non-binary centroids after the initial accumulation (0 = plain
        centroids).
    learning_rate:
        Step size for those retraining passes.
    seed:
        Seed or generator controlling sample order during retraining.
    """

    def __init__(
        self,
        retraining_iterations: int = 0,
        learning_rate: float = 1.0,
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        if retraining_iterations < 0:
            raise ValueError(
                f"retraining_iterations must be >= 0, got {retraining_iterations}"
            )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.retraining_iterations = int(retraining_iterations)
        self.learning_rate = float(learning_rate)
        self.nonbinary_class_hypervectors_: Optional[np.ndarray] = None

    def fit(self, hypervectors: np.ndarray, labels: np.ndarray) -> "NonBinaryHDC":
        """Accumulate non-binary centroids and optionally retrain them."""
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        dimension = hypervectors.shape[1]
        centroids = np.zeros((num_classes, dimension), dtype=np.float64)
        np.add.at(centroids, labels, hypervectors.astype(np.float64))

        samples = hypervectors.astype(np.float64)
        for _ in range(self.retraining_iterations):
            order = self.rng.permutation(samples.shape[0])
            for index in order:
                sample = samples[index]
                true_label = labels[index]
                scores = self._cosine_scores(sample[None, :], centroids)[0]
                predicted = int(np.argmax(scores))
                if predicted != true_label:
                    centroids[true_label] += self.learning_rate * sample
                    centroids[predicted] -= self.learning_rate * sample

        self.nonbinary_class_hypervectors_ = centroids
        # Also expose the binarised form so the non-binary model can be dropped
        # into binary inference pipelines and compared head-to-head.
        self.class_hypervectors_ = sign_with_ties(centroids, rng=self.rng)
        self.num_classes_ = num_classes
        return self

    # ------------------------------------------------------------ inference
    def decision_scores(self, hypervectors: np.ndarray) -> np.ndarray:
        """Cosine similarity of each sample to each non-binary centroid."""
        check_fitted(self, "nonbinary_class_hypervectors_")
        hypervectors = check_matrix(
            hypervectors,
            "hypervectors",
            n_columns=self.nonbinary_class_hypervectors_.shape[1],
        )
        return self._cosine_scores(
            hypervectors.astype(np.float64), self.nonbinary_class_hypervectors_
        )

    @staticmethod
    def _cosine_scores(samples: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        sample_norms = np.linalg.norm(samples, axis=1, keepdims=True)
        centroid_norms = np.linalg.norm(centroids, axis=1, keepdims=True).T
        sample_norms[sample_norms == 0] = 1.0
        centroid_norms[centroid_norms == 0] = 1.0
        return (samples @ centroids.T) / (sample_norms * centroid_norms)


__all__ = ["NonBinaryHDC"]
