"""End-to-end pipeline: encoder + HDC classifier on raw feature vectors.

The classifiers in this package (and :class:`repro.core.LeHDCClassifier`)
take *encoded* hypervectors so experiments can share one encoding pass across
strategies.  :class:`HDCPipeline` is the user-facing composition: give it raw
features and labels and it handles fitting the encoder, encoding, training,
and prediction.  This is the object the quickstart example builds.

Prediction is *packed-native*: when the classifier scores with the shared
dot-similarity rule, queries are encoded straight to bit-packed words
(:meth:`~repro.hdc.encoders.Encoder.encode_packed` — the dense int8 matrix
never exists) and scored with the XOR+popcount kernel, with no
unpack→repack round-trips anywhere.  The packed scores equal the dense ones
exactly (``dot = D - 2 * differing_bits``), so predictions are bit-for-bit
identical to the dense path; classifiers with bespoke scoring fall back to
dense transparently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase, top_k_from_scores
from repro.hdc.encoders import Encoder
from repro.utils.validation import check_labels, check_matrix


class HDCPipeline:
    """Couples an :class:`~repro.hdc.encoders.Encoder` with an HDC classifier.

    Parameters
    ----------
    encoder:
        An unfitted (or pre-fitted) encoder instance.
    classifier:
        Any classifier following the :class:`HDCClassifierBase` interface,
        including :class:`repro.core.LeHDCClassifier`.
    encode_batch_size:
        Batch size forwarded to :meth:`Encoder.encode` to bound memory.
    prefer_packed:
        When true (default), prediction rides the packed XOR+popcount
        kernels whenever the classifier supports the shared scoring rule;
        set false to force the dense path (useful for A/B benchmarking —
        results are identical either way).
    """

    def __init__(
        self,
        encoder: Encoder,
        classifier: HDCClassifierBase,
        encode_batch_size: int = 256,
        prefer_packed: bool = True,
    ):
        self.encoder = encoder
        self.classifier = classifier
        self.encode_batch_size = int(encode_batch_size)
        self.prefer_packed = bool(prefer_packed)
        self._fitted = False

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        **fit_kwargs,
    ) -> "HDCPipeline":
        """Fit encoder (if needed), encode *features*, and train the classifier.

        Extra keyword arguments are forwarded to the classifier's ``fit``
        (e.g. validation data for trajectory recording).
        """
        features = check_matrix(features, "features", dtype=np.float64)
        labels = check_labels(labels, features.shape[0])
        if self.encoder.num_features is None:
            self.encoder.fit(features)
        encoded = self.encoder.encode(features, batch_size=self.encode_batch_size)
        self.classifier.fit(encoded, labels, **fit_kwargs)
        self._fitted = True
        return self

    # ------------------------------------------------------------- inference
    def _uses_packed_path(self) -> bool:
        """Whether prediction can ride the packed kernels for this classifier."""
        supports = getattr(self.classifier, "supports_packed_scoring", None)
        return self.prefer_packed and supports is not None and supports()

    def _decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Encode raw *features* and return the ``(n, K)`` decision scores.

        Packed and dense paths return the exact same integer dot scores.
        """
        if not self._fitted:
            raise RuntimeError("HDCPipeline is not fitted yet; call fit() first")
        features = check_matrix(features, "features", dtype=np.float64)
        if self._uses_packed_path():
            packed = self.encoder.encode_packed(
                features, batch_size=self.encode_batch_size
            )
            return self.classifier.decision_scores_packed(packed)
        encoded = self.encoder.encode(features, batch_size=self.encode_batch_size)
        return self.classifier.decision_scores(encoded)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Encode raw *features* and predict class labels."""
        return np.argmax(self._decision_scores(features), axis=1)

    def predict_batch(self, features: np.ndarray):
        """Predict labels and winning-class scores for a batch of raw features.

        Returns ``(labels, scores)`` where ``labels`` is the ``(n,)`` argmax
        prediction and ``scores`` the corresponding decision score (the
        integer dot similarity for binary classifiers).  This is the batched
        label+score surface the serving and evaluation layers build on;
        callers get both outputs from a single encode + similarity pass.
        """
        scores = self._decision_scores(features)
        labels = np.argmax(scores, axis=1)
        return labels, scores[np.arange(scores.shape[0]), labels]

    def top_k(self, features: np.ndarray, k: int = 5):
        """The ``k`` most similar classes per sample, best first.

        Returns ``(labels, scores)``, both of shape ``(n, k)``; ``k`` is
        clipped to the number of classes.
        """
        return top_k_from_scores(self._decision_scores(features), k)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on raw feature vectors."""
        features = check_matrix(features, "features", dtype=np.float64)
        labels = check_labels(labels, features.shape[0])
        return float(np.mean(self.predict(features) == labels))

    @property
    def class_hypervectors_(self) -> Optional[np.ndarray]:
        """The trained ``(K, D)`` class hypervectors (``None`` before fit)."""
        return self.classifier.class_hypervectors_


__all__ = ["HDCPipeline"]
