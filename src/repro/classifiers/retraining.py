"""QuantHD-style retraining (Eq. 3 / Fig. 2), the paper's main prior-art comparator.

Starting from the baseline centroids, each retraining iteration classifies the
training samples with the *binary* class hypervectors and, for every
misclassified sample, updates the *non-binary* accumulators of the true class
(``+ alpha * H``) and the predicted wrong class (``- alpha * H``).  The binary
hypervectors are re-derived by ``sgn`` after the pass.  Retraining stops when
the fraction of flipped bits falls below ``epsilon`` or the iteration budget
is exhausted.

The paper's evaluation uses ``alpha = 1.5`` on the first iteration and
``alpha = 0.05`` afterwards, with 150 iterations (Sec. 5); those are the
defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.classifiers.baseline import BaselineHDC
from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix, check_labels, check_positive_int


@dataclass
class RetrainingHistory:
    """Per-iteration record of a retraining run (used to draw Fig. 3)."""

    train_accuracy: List[float] = field(default_factory=list)
    update_fraction: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed retraining iterations."""
        return len(self.train_accuracy)


class RetrainingHDC(HDCClassifierBase):
    """Binary HDC with misclassification-driven retraining of class hypervectors.

    Parameters
    ----------
    iterations:
        Maximum number of retraining passes over the training set.
    learning_rate:
        Update step ``alpha`` applied from the second iteration onwards.
    first_iteration_learning_rate:
        Larger ``alpha`` for the first pass (paper: 1.5).
    epsilon:
        Convergence threshold on the fraction of class-hypervector bits that
        flip in one iteration; retraining stops early below it.
    shuffle:
        Whether to visit training samples in a fresh random order each pass
        (the update is sequential, so order matters).
    tie_break, seed:
        As in :class:`~repro.classifiers.baseline.BaselineHDC`.
    """

    def __init__(
        self,
        iterations: int = 150,
        learning_rate: float = 0.05,
        first_iteration_learning_rate: float = 1.5,
        epsilon: float = 1e-4,
        shuffle: bool = True,
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.iterations = check_positive_int(iterations, "iterations")
        if learning_rate <= 0 or first_iteration_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.learning_rate = float(learning_rate)
        self.first_iteration_learning_rate = float(first_iteration_learning_rate)
        self.epsilon = float(epsilon)
        self.shuffle = bool(shuffle)
        self.tie_break = tie_break
        self.history_: Optional[RetrainingHistory] = None
        self.nonbinary_class_hypervectors_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        validation_hypervectors: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
    ) -> "RetrainingHDC":
        """Retrain class hypervectors; optionally track held-out accuracy per pass.

        The optional validation arguments only add entries to
        ``history_.test_accuracy`` (for trajectory figures); they never
        influence the training itself.
        """
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        if (validation_hypervectors is None) != (validation_labels is None):
            raise ValueError(
                "validation_hypervectors and validation_labels must be given together"
            )
        if validation_hypervectors is not None:
            validation_hypervectors = check_matrix(
                validation_hypervectors,
                "validation_hypervectors",
                n_columns=hypervectors.shape[1],
            )
            validation_labels = check_labels(
                validation_labels, validation_hypervectors.shape[0]
            )

        baseline = BaselineHDC(tie_break=self.tie_break, seed=self.rng)
        baseline.fit(hypervectors, labels)
        nonbinary = baseline.accumulators_.astype(np.float64)
        binary = baseline.class_hypervectors_.astype(np.int8)
        samples = hypervectors.astype(np.float64)

        history = RetrainingHistory()
        # Expose the history while training so adaptive subclasses can read
        # the running statistics of completed iterations.
        self.history_ = history
        for iteration in range(self.iterations):
            alpha = (
                self.first_iteration_learning_rate
                if iteration == 0
                else self.learning_rate
            )
            order = (
                self.rng.permutation(samples.shape[0])
                if self.shuffle
                else np.arange(samples.shape[0])
            )
            correct = 0
            for index in order:
                sample = samples[index]
                true_label = labels[index]
                scores = binary.astype(np.float64) @ sample
                predicted = int(np.argmax(scores))
                if predicted == true_label:
                    correct += 1
                    continue
                self._update(nonbinary, sample, true_label, predicted, alpha, scores)
            new_binary = sign_with_ties(
                nonbinary, rng=self.rng, tie_break=self.tie_break
            )
            update_fraction = float(np.mean(new_binary != binary))
            binary = new_binary
            history.train_accuracy.append(correct / samples.shape[0])
            history.update_fraction.append(update_fraction)
            if validation_hypervectors is not None:
                self.class_hypervectors_ = binary.astype(BIPOLAR_DTYPE)
                self.num_classes_ = num_classes
                history.test_accuracy.append(
                    self.score(validation_hypervectors, validation_labels)
                )
            if update_fraction < self.epsilon and iteration > 0:
                break

        self.nonbinary_class_hypervectors_ = nonbinary
        self.class_hypervectors_ = binary.astype(BIPOLAR_DTYPE)
        self.num_classes_ = num_classes
        self.history_ = history
        return self

    # --------------------------------------------------------------- update
    def _update(
        self,
        nonbinary: np.ndarray,
        sample: np.ndarray,
        true_label: int,
        predicted: int,
        alpha: float,
        scores: np.ndarray,
    ) -> None:
        """Eq. 3: push the true class toward the sample, the wrong class away."""
        nonbinary[true_label] += alpha * sample
        nonbinary[predicted] -= alpha * sample


__all__ = ["RetrainingHDC", "RetrainingHistory"]
