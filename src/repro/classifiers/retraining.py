"""QuantHD-style retraining (Eq. 3 / Fig. 2), the paper's main prior-art comparator.

Starting from the baseline centroids, each retraining iteration classifies the
training samples with the *binary* class hypervectors and, for every
misclassified sample, updates the *non-binary* accumulators of the true class
(``+ alpha * H``) and the predicted wrong class (``- alpha * H``).  The binary
hypervectors are re-derived by ``sgn`` after the pass.  Retraining stops when
the fraction of flipped bits falls below ``epsilon`` or the iteration budget
is exhausted.

The paper's evaluation uses ``alpha = 1.5`` on the first iteration and
``alpha = 0.05`` afterwards, with 150 iterations (Sec. 5); those are the
defaults here.

Training is *packed-native* by default: because the binary class
hypervectors are fixed within a pass and the accumulator updates are
additive, each epoch is one blocked XOR+popcount scoring of the whole packed
training set (:func:`repro.kernels.train.score_epoch`) followed by an
ordered scatter-add of the misclassified samples' updates
(:func:`repro.kernels.train.apply_class_updates`).  The update order — and
therefore every float rounding and every ``sgn(0)`` tie-break draw — matches
the sequential loop exactly, so the packed path produces bit-identical
models and :class:`RetrainingHistory` for *any* ``shuffle`` setting; the
sequential loop is kept for non-bipolar inputs and for subclasses that
override :meth:`RetrainingHDC._update` without providing the vectorised
:meth:`RetrainingHDC._epoch_updates` counterpart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.classifiers.baseline import BaselineHDC
from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.kernels.packed import (
    pack_bipolar,
    pack_bits,
    sign_fuse_bits,
    try_pack_bipolar,
    unpack_bipolar,
)
from repro.kernels.train import (
    PackedTrainingSet,
    apply_class_updates,
    flip_fraction_packed,
    score_epoch,
)
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix, check_labels, check_positive_int


@dataclass
class RetrainingHistory:
    """Per-iteration record of a retraining run (used to draw Fig. 3)."""

    train_accuracy: List[float] = field(default_factory=list)
    update_fraction: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    #: Wall-clock seconds per retraining iteration (scoring + updates +
    #: re-sign + optional validation scoring); powers the timing columns of
    #: ``benchmarks/bench_fig3_retraining.py`` and ``repro bench-train``.
    iteration_seconds: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed retraining iterations."""
        return len(self.train_accuracy)


class RetrainingHDC(HDCClassifierBase):
    """Binary HDC with misclassification-driven retraining of class hypervectors.

    Parameters
    ----------
    iterations:
        Maximum number of retraining passes over the training set.
    learning_rate:
        Update step ``alpha`` applied from the second iteration onwards.
    first_iteration_learning_rate:
        Larger ``alpha`` for the first pass (paper: 1.5).
    epsilon:
        Convergence threshold on the fraction of class-hypervector bits that
        flip in one iteration; retraining stops early below it.
    shuffle:
        Whether to visit training samples in a fresh random order each pass
        (the update is sequential, so order matters).
    packed_epochs:
        Run each retraining pass on the packed kernels (default).  The packed
        path is bit-identical to the sequential loop; disabling it forces the
        seed's per-sample loop, which only remains useful for benchmarking
        and for regression comparison.
    tie_break, seed:
        As in :class:`~repro.classifiers.baseline.BaselineHDC`.
    """

    def __init__(
        self,
        iterations: int = 150,
        learning_rate: float = 0.05,
        first_iteration_learning_rate: float = 1.5,
        epsilon: float = 1e-4,
        shuffle: bool = True,
        packed_epochs: bool = True,
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.iterations = check_positive_int(iterations, "iterations")
        if learning_rate <= 0 or first_iteration_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.learning_rate = float(learning_rate)
        self.first_iteration_learning_rate = float(first_iteration_learning_rate)
        self.epsilon = float(epsilon)
        self.shuffle = bool(shuffle)
        self.packed_epochs = bool(packed_epochs)
        self.tie_break = tie_break
        self.history_: Optional[RetrainingHistory] = None
        self.nonbinary_class_hypervectors_: Optional[np.ndarray] = None

    def supports_packed_training(self) -> bool:
        """Accepts a shared :class:`PackedTrainingSet` via ``fit(packed_train=…)``."""
        return True

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        validation_hypervectors: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
        packed_train: Optional[PackedTrainingSet] = None,
    ) -> "RetrainingHDC":
        """Retrain class hypervectors; optionally track held-out accuracy per pass.

        The optional validation arguments only add entries to
        ``history_.test_accuracy`` (for trajectory figures); they never
        influence the training itself.  ``packed_train`` supplies a
        pre-packed copy of ``hypervectors`` (see
        :class:`~repro.kernels.train.PackedTrainingSet`) so experiment loops
        can encode + pack once and share the result across strategies; when
        omitted, the packed copy is built here.
        """
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        if (validation_hypervectors is None) != (validation_labels is None):
            raise ValueError(
                "validation_hypervectors and validation_labels must be given together"
            )
        if validation_hypervectors is not None:
            validation_hypervectors = check_matrix(
                validation_hypervectors,
                "validation_hypervectors",
                n_columns=hypervectors.shape[1],
            )
            validation_labels = check_labels(
                validation_labels, validation_hypervectors.shape[0]
            )

        train_set = self._resolve_training_set(hypervectors, packed_train)
        if train_set is not None and self._has_vectorised_updates():
            return self._fit_packed(
                train_set,
                hypervectors,
                labels,
                num_classes,
                validation_hypervectors,
                validation_labels,
            )
        return self._fit_sequential(
            hypervectors, labels, num_classes, validation_hypervectors, validation_labels
        )

    # ----------------------------------------------------------- packed fit
    def _fit_packed(
        self,
        train_set: PackedTrainingSet,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        validation_hypervectors: Optional[np.ndarray],
        validation_labels: Optional[np.ndarray],
    ) -> "RetrainingHDC":
        """One blocked scoring + ordered scatter-add per pass over packed words.

        Bit-identical to :meth:`_fit_sequential`: the epoch scores are the
        same integers, the accumulator updates land in the same order, and
        the re-sign consumes the RNG identically (``sign_fuse_bits`` mirrors
        ``sign_with_ties`` draw for draw).
        """
        baseline = BaselineHDC(tie_break=self.tie_break, seed=self.rng)
        baseline.fit(hypervectors, labels, packed_train=train_set)
        nonbinary = baseline.accumulators_.astype(np.float64)
        packed_classes = pack_bipolar(baseline.class_hypervectors_)
        samples = train_set.samples
        packed_samples = train_set.packed
        num_samples = train_set.num_samples
        dimension = train_set.dimension
        # Pack-only (no dense int8 copy retained): scoring the validation
        # split per pass needs just the words.
        packed_validation = (
            None
            if validation_hypervectors is None
            else try_pack_bipolar(validation_hypervectors)
        )

        history = RetrainingHistory()
        # Expose the history while training so adaptive subclasses can read
        # the running statistics of completed iterations.
        self.history_ = history
        for iteration in range(self.iterations):
            started = time.perf_counter()
            alpha = (
                self.first_iteration_learning_rate
                if iteration == 0
                else self.learning_rate
            )
            order = self.rng.permutation(num_samples) if self.shuffle else None
            scores, predicted = score_epoch(packed_samples, packed_classes)
            misclassified = predicted != labels
            correct = num_samples - int(np.count_nonzero(misclassified))
            # The rows the sequential loop would update, in its visit order.
            visit = (
                np.flatnonzero(misclassified)
                if order is None
                else order[misclassified[order]]
            )
            if visit.size:
                class_indices, coefficients, sample_rows = self._epoch_updates(
                    scores, labels, predicted, visit, alpha, dimension
                )
                apply_class_updates(
                    nonbinary, class_indices, coefficients, samples, sample_rows
                )
            new_bits = sign_fuse_bits(nonbinary, tie_break=self.tie_break, rng=self.rng)
            new_packed = pack_bits(new_bits, dimension)
            update_fraction = flip_fraction_packed(new_packed, packed_classes)
            packed_classes = new_packed
            history.train_accuracy.append(correct / num_samples)
            history.update_fraction.append(update_fraction)
            if validation_hypervectors is not None:
                self._publish_classes(packed_classes, num_classes)
                if packed_validation is not None:
                    _, val_predicted = score_epoch(packed_validation, packed_classes)
                    accuracy = float(np.mean(val_predicted == validation_labels))
                else:
                    accuracy = self.score(validation_hypervectors, validation_labels)
                history.test_accuracy.append(accuracy)
            history.iteration_seconds.append(time.perf_counter() - started)
            if update_fraction < self.epsilon and iteration > 0:
                break

        self.nonbinary_class_hypervectors_ = nonbinary
        self._publish_classes(packed_classes, num_classes)
        self.history_ = history
        return self

    def _publish_classes(self, packed_classes, num_classes: int) -> None:
        """Install the packed class HVs as the fitted model (dense + cache)."""
        self.class_hypervectors_ = unpack_bipolar(packed_classes)
        self.num_classes_ = num_classes
        # Pre-seed the packed cache: inference right after fit() should not
        # pay a re-pack of words we already hold.
        self._packed_classes_cache = (self.class_hypervectors_, packed_classes)

    def _resolve_training_set(
        self,
        hypervectors: np.ndarray,
        packed_train: Optional[PackedTrainingSet],
    ) -> Optional[PackedTrainingSet]:
        """Validate a supplied packed copy, or build one for bipolar input.

        ``packed_epochs=False`` wins over a supplied ``packed_train``: the
        flag's contract is "run the sequential loop", even under experiment
        loops that hand every strategy the shared packed set.
        """
        if packed_train is not None:
            packed_train.require_matches(hypervectors)
        if not self.packed_epochs:
            return None
        if packed_train is not None:
            return packed_train
        return PackedTrainingSet.try_from_dense(hypervectors)

    def _has_vectorised_updates(self) -> bool:
        """Whether this (sub)class's update rule has a vectorised counterpart.

        Walks the MRO for the most-derived class that defines either
        :meth:`_update` or :meth:`_epoch_updates`; the packed path is only
        taken when the vectorised hook is at least as specific as the
        per-sample one, so a subclass overriding ``_update`` alone keeps the
        sequential loop (and stays correct) until it ships the vectorised
        twin.
        """
        for klass in type(self).__mro__:
            defines_update = "_update" in klass.__dict__
            defines_epoch = "_epoch_updates" in klass.__dict__
            if defines_update or defines_epoch:
                return defines_epoch
        return True  # pragma: no cover - both hooks always exist on the base

    # ------------------------------------------------------- sequential fit
    def _fit_sequential(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        validation_hypervectors: Optional[np.ndarray],
        validation_labels: Optional[np.ndarray],
    ) -> "RetrainingHDC":
        """The seed's per-sample loop: one dense cast + matvec per sample."""
        baseline = BaselineHDC(tie_break=self.tie_break, seed=self.rng)
        baseline.fit(hypervectors, labels)
        nonbinary = baseline.accumulators_.astype(np.float64)
        binary = baseline.class_hypervectors_.astype(np.int8)
        samples = hypervectors.astype(np.float64)

        history = RetrainingHistory()
        # Expose the history while training so adaptive subclasses can read
        # the running statistics of completed iterations.
        self.history_ = history
        for iteration in range(self.iterations):
            started = time.perf_counter()
            alpha = (
                self.first_iteration_learning_rate
                if iteration == 0
                else self.learning_rate
            )
            order = (
                self.rng.permutation(samples.shape[0])
                if self.shuffle
                else np.arange(samples.shape[0])
            )
            correct = 0
            for index in order:
                sample = samples[index]
                true_label = labels[index]
                scores = binary.astype(np.float64) @ sample
                predicted = int(np.argmax(scores))
                if predicted == true_label:
                    correct += 1
                    continue
                self._update(nonbinary, sample, true_label, predicted, alpha, scores)
            new_binary = sign_with_ties(
                nonbinary, rng=self.rng, tie_break=self.tie_break
            )
            update_fraction = float(np.mean(new_binary != binary))
            binary = new_binary
            history.train_accuracy.append(correct / samples.shape[0])
            history.update_fraction.append(update_fraction)
            if validation_hypervectors is not None:
                self.class_hypervectors_ = binary.astype(BIPOLAR_DTYPE)
                self.num_classes_ = num_classes
                history.test_accuracy.append(
                    self.score(validation_hypervectors, validation_labels)
                )
            history.iteration_seconds.append(time.perf_counter() - started)
            if update_fraction < self.epsilon and iteration > 0:
                break

        self.nonbinary_class_hypervectors_ = nonbinary
        self.class_hypervectors_ = binary.astype(BIPOLAR_DTYPE)
        self.num_classes_ = num_classes
        self.history_ = history
        return self

    # --------------------------------------------------------------- update
    def _update(
        self,
        nonbinary: np.ndarray,
        sample: np.ndarray,
        true_label: int,
        predicted: int,
        alpha: float,
        scores: np.ndarray,
    ) -> None:
        """Eq. 3: push the true class toward the sample, the wrong class away."""
        nonbinary[true_label] += alpha * sample
        nonbinary[predicted] -= alpha * sample

    def _epoch_updates(
        self,
        scores: np.ndarray,
        labels: np.ndarray,
        predicted: np.ndarray,
        visit: np.ndarray,
        alpha: float,
        dimension: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`_update` for one epoch.

        Returns ``(class_indices, coefficients, sample_rows)`` describing
        every accumulator update of the pass *in the order the sequential
        loop applies them*: for each misclassified sample (``visit`` order),
        ``+alpha`` into the true class then ``-alpha`` into the predicted
        one.  Subclasses that override :meth:`_update` must override this
        hook too (or lose the packed path; see
        :meth:`_has_vectorised_updates`).
        """
        count = visit.size
        class_indices = np.empty(2 * count, dtype=np.intp)
        class_indices[0::2] = labels[visit]
        class_indices[1::2] = predicted[visit]
        coefficients = np.empty(2 * count, dtype=np.float64)
        coefficients[0::2] = alpha
        coefficients[1::2] = -alpha
        sample_rows = np.repeat(visit, 2)
        return class_indices, coefficients, sample_rows


__all__ = ["RetrainingHDC", "RetrainingHistory"]
