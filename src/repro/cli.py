"""Command-line interface: ``python -m repro <command>``.

The CLI wraps the experiment harness so the paper's headline results can be
regenerated without writing any Python:

* ``python -m repro list-datasets`` — show the registered benchmarks and
  whether real data is available for them;
* ``python -m repro train --dataset ucihar --strategy lehdc --save model.npz``
  — train one strategy on one benchmark and optionally save the model;
* ``python -m repro compare --dataset fashion_mnist`` — the Table-1 style
  strategy comparison on one dataset;
* ``python -m repro sweep --dataset isolet`` — the Fig.-6 dimension sweep;
* ``python -m repro predict --model model.npz --dataset ucihar`` — load a
  saved model and evaluate it on a dataset's test split;
* ``python -m repro serve --model model.npz --port 8080`` — serve saved
  models over JSON/HTTP with micro-batched packed inference
  (``--workers N`` adds the multiprocess tier: N worker processes sharing
  the packed model bank through shared memory, with ``--transport
  {pipe,shm,tcp}`` choosing the shard data plane; ``--trace FILE`` writes
  JSONL request traces, ``--log-level info`` enables the access log, and
  ``GET /metrics`` exposes Prometheus text format);
* ``python -m repro loadgen --url http://host:8080`` — soak-test a serving
  endpoint (or an in-process app) with seeded, reproducible traffic:
  open-loop Poisson or closed-loop, warm-up + measure phases, exact latency
  percentiles, JSON report output with server-side metric deltas;
  ``--quick`` for CI smoke, ``--trace FILE`` to record and check traces;
* ``python -m repro trace-summary trace.jsonl`` — per-stage latency
  breakdown (count/p50/p95/max per span name) of a recorded trace file;
  ``--exemplars K`` lists the K slowest request traces by ID;
* ``python -m repro top --url http://host:8080`` — live terminal dashboard
  over ``/v1/metrics``: per-tenant QPS/percentiles/SLO budgets, worker
  utilisation, fleet paging, breakers; ``--once --json`` for scripts;
* ``python -m repro bench-serve`` — the serving throughput comparison
  (single-sample vs micro-batched, dense vs packed);
* ``python -m repro bench-dispatch`` — the cluster-transport micro-benchmark
  (per-dispatch wall time and exact bytes moved through pipe vs
  shared-memory ring vs TCP socket, parity asserted bit-identical before
  any timing); ``--quick`` for CI smoke;
* ``python -m repro bench-kernels`` — the kernel-layer benchmark (fused
  encode vs the seed loop, packed XOR+popcount predict vs dense dot,
  float32-policy training vs forced float64); ``--quick`` for CI smoke;
* ``python -m repro bench-train`` — the packed-training benchmark
  (retraining/AdaptHD/enhanced ``fit()`` on packed epochs vs the seed's
  sequential loop, the SearcHD-style ensemble on incremental packed scoring
  vs the seed's per-sample dense matmul — bit-identity including the RNG
  stream verified first — and bundling over packed words vs dense
  ``np.add.at``); ``--quick`` for CI smoke.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.core.nonbinary_lehdc import NonBinaryLeHDCClassifier
from repro.datasets.loaders import try_load_real_dataset
from repro.datasets.registry import get_dataset, list_datasets
from repro.eval.sweep import run_dimension_sweep
from repro.eval.tables import format_table
from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.io import load_model, save_model

STRATEGY_CHOICES = (
    "baseline",
    "multimodel",
    "retraining",
    "adapthd",
    "enhanced",
    "lehdc",
    "lehdc-nonbinary",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LeHDC reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets", help="list registered benchmark datasets")

    def add_common(sub):
        sub.add_argument("--dataset", default="ucihar", help="registry dataset name")
        sub.add_argument("--profile", default="tiny", choices=["tiny", "small", "full"])
        sub.add_argument("--dimension", type=int, default=2000)
        sub.add_argument("--num-levels", type=int, default=32)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--encoder", default="record", choices=["record", "ngram"], help="encoder kind"
        )

    train = subparsers.add_parser("train", help="train one strategy on one dataset")
    add_common(train)
    train.add_argument("--strategy", default="lehdc", choices=STRATEGY_CHOICES)
    train.add_argument("--epochs", type=int, default=30, help="LeHDC epochs")
    train.add_argument("--iterations", type=int, default=25, help="retraining iterations")
    train.add_argument("--save", default=None, help="path to save the trained model (.npz)")

    compare = subparsers.add_parser("compare", help="compare all strategies on one dataset")
    add_common(compare)
    compare.add_argument("--epochs", type=int, default=30)
    compare.add_argument("--iterations", type=int, default=25)

    sweep = subparsers.add_parser("sweep", help="accuracy vs dimension sweep (Fig. 6)")
    add_common(sweep)
    sweep.add_argument(
        "--dimensions", type=int, nargs="+", default=[1000, 2000, 4000], help="D values"
    )
    sweep.add_argument("--epochs", type=int, default=25)
    sweep.add_argument("--iterations", type=int, default=20)

    predict = subparsers.add_parser("predict", help="evaluate a saved model on a dataset")
    predict.add_argument("--model", required=True, help="path of a model saved with --save")
    predict.add_argument("--dataset", default="ucihar")
    predict.add_argument("--profile", default="tiny", choices=["tiny", "small", "full"])
    predict.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser("serve", help="serve saved models over JSON/HTTP")
    serve.add_argument(
        "--model",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help="saved .npz model to serve; repeatable; NAME defaults to the file stem",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--max-batch-size", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "inference worker processes sharing the packed model bank via "
            "shared memory (1 = single-process serving)"
        ),
    )
    serve.add_argument(
        "--transport",
        default="pipe",
        choices=["pipe", "shm", "tcp"],
        help=(
            "cluster data plane for shard payloads when --workers > 1: "
            "pickled pipes (default), shared-memory rings with control "
            "frames on the pipe, or framed localhost TCP sockets"
        ),
    )
    serve.add_argument(
        "--scheduler-threads",
        type=int,
        default=1,
        help="engine-executing threads inside each model's micro-batch scheduler",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="request-level LRU prediction cache entries (0 disables)",
    )
    serve.add_argument(
        "--max-resident", type=int, default=4, help="LRU cap on in-memory engines"
    )
    serve.add_argument(
        "--kernel-backend",
        default=None,
        choices=["numpy", "threaded", "multiprocess"],
        help=(
            "kernel backend for the inference workers (overrides the "
            "REPRO_KERNEL_BACKEND environment variable; default: env, then numpy)"
        ),
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help=(
            "bound each model's micro-batch queue; a full queue sheds the "
            "request as 429 + Retry-After (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help=(
            "per-model cap on concurrently admitted requests; excess load "
            "sheds as 429 + Retry-After (default: unlimited)"
        ),
    )
    serve.add_argument(
        "--max-resident-banks",
        type=int,
        default=None,
        help=(
            "fleet-wide cap on resident shared-memory model banks when "
            "--workers > 1; the least-recently-used tenant's bank (and its "
            "worker pool) is paged out, to be cold-loaded on next use "
            "(default: unbounded)"
        ),
    )
    serve.add_argument(
        "--tenant-rps",
        type=float,
        default=None,
        help=(
            "per-tenant (per-model) token-bucket rate limit in requests/s; "
            "excess answers 429 tenant_rate_limited + Retry-After"
        ),
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="token-bucket burst size (default: max(1, 2x --tenant-rps))",
    )
    serve.add_argument(
        "--tenant-max-concurrent",
        type=int,
        default=None,
        help=(
            "per-tenant cap on in-flight requests; excess answers 429 "
            "tenant_quota_exceeded + Retry-After"
        ),
    )
    serve.add_argument(
        "--tenant-quotas",
        default=None,
        metavar="FILE",
        help=(
            "JSON quota config with per-tenant overrides "
            '({"defaults": {...}, "tenants": {name: {rps, burst, '
            'max_concurrent}}}); flags above set the defaults'
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "default per-request deadline in milliseconds (requests may "
            "override via the deadline_ms payload field); expired requests "
            "answer 504 instead of being scored"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        help=(
            "seconds the dispatcher waits for one worker shard before the "
            "hung-worker watchdog terminates and respawns it (default 60)"
        ),
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help=(
            "inject deterministic worker faults from PLAN — a preset name "
            "(quick, soak), a 'kind:key=value;...' spec, or a JSON plan; "
            "also honoured via REPRO_FAULTS (chaos testing only)"
        ),
    )
    serve.add_argument("--verbose", action="store_true", help="log HTTP requests")
    serve.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable the structured access log at this level (default: off)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write request traces as JSONL to FILE (also honoured via the "
            "REPRO_TRACE environment variable); inspect with trace-summary"
        ),
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="P",
        help="probability a request is traced (default 1.0; e.g. 0.01 for soaks)",
    )
    serve.add_argument(
        "--slo-config",
        default=None,
        metavar="FILE",
        help=(
            "JSON SLO config ({'default': {availability, latency_ms, "
            "latency_percentile}, 'tenants': {name: overrides}}); tenants "
            "not listed use the fleet default — the engine always runs, so "
            "omitting the flag applies the default objective to every tenant"
        ),
    )

    loadgen = subparsers.add_parser(
        "loadgen", help="soak-test a serving target with reproducible traffic"
    )
    loadgen.add_argument("--dataset", default="ucihar", help="registry dataset name")
    loadgen.add_argument("--profile", default="tiny", choices=["tiny", "small", "full"])
    loadgen.add_argument("--seed", type=int, default=0)
    target_group = loadgen.add_mutually_exclusive_group()
    target_group.add_argument(
        "--url", default=None, help="live endpoint, e.g. http://127.0.0.1:8080"
    )
    target_group.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="saved .npz model served in-process (default: train a quick baseline)",
    )
    loadgen.add_argument("--mode", default="closed", choices=["closed", "open"])
    loadgen.add_argument(
        "--rate", type=float, default=200.0, help="open-loop arrival rate (req/s)"
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop client count"
    )
    loadgen.add_argument(
        "--requests", type=int, default=None, help="measured requests (default 400)"
    )
    loadgen.add_argument(
        "--warmup", type=int, default=None, help="warm-up requests (default 40)"
    )
    loadgen.add_argument("--top-k", type=int, default=1)
    loadgen.add_argument(
        "--dimension", type=int, default=2000, help="D for the trained default model"
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the in-process target (1 = single process)",
    )
    loadgen.add_argument(
        "--transport",
        default="pipe",
        choices=["pipe", "shm", "tcp"],
        help="cluster data plane for the in-process target when --workers > 1",
    )
    loadgen.add_argument("--max-batch-size", type=int, default=64)
    loadgen.add_argument("--max-wait-ms", type=float, default=2.0)
    loadgen.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help=(
            "prediction-cache entries for the in-process target (default 0: "
            "disabled, so small datasets with repeated rows measure real "
            "inference rather than cache hits)"
        ),
    )
    loadgen.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bound the in-process target's micro-batch queues (sheds as 429)",
    )
    loadgen.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="per-model concurrency cap for the in-process target (sheds as 429)",
    )
    loadgen.add_argument(
        "--models",
        type=int,
        default=1,
        help=(
            "multi-tenant fleet soak: register the trained model under this "
            "many tenant names and spread requests over them with a Zipf "
            "distribution (default 1: single tenant)"
        ),
    )
    loadgen.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf exponent for the tenant distribution (default 1.1)",
    )
    loadgen.add_argument(
        "--max-resident-banks",
        type=int,
        default=None,
        help=(
            "fleet-wide cap on resident shared-memory banks for the "
            "in-process target (LRU paging; requires --workers >= 2)"
        ),
    )
    loadgen.add_argument(
        "--tenant-rps",
        type=float,
        default=None,
        help="per-tenant token-bucket rate limit for the in-process target",
    )
    loadgen.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="token-bucket burst size (default: max(1, 2x --tenant-rps))",
    )
    loadgen.add_argument(
        "--tenant-max-concurrent",
        type=int,
        default=None,
        help="per-tenant in-flight request cap for the in-process target",
    )
    loadgen.add_argument(
        "--tenant-quotas",
        default=None,
        metavar="FILE",
        help="JSON quota config for the in-process target (see repro serve)",
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "client-side retries of typed 429/503 answers, honouring "
            "Retry-After with capped deterministic backoff (default: 3 when "
            "the soak is multi-tenant or fault-injected, else 0)"
        ),
    )
    loadgen.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "attach this deadline (milliseconds) to every request; late "
            "answers must be 504, and the report counts any successful "
            "response that outlived it as a deadline violation"
        ),
    )
    loadgen.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        help="hung-worker watchdog timeout for the in-process target (seconds)",
    )
    loadgen.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help=(
            "chaos soak: inject deterministic worker faults into the "
            "in-process target from PLAN (preset name, 'kind:key=value;...' "
            "spec, or JSON) and assert graceful degradation — requires "
            "--workers >= 2"
        ),
    )
    loadgen.add_argument(
        "--min-availability",
        type=float,
        default=0.95,
        help="availability floor the chaos report must clear (default 0.95)",
    )
    loadgen.add_argument(
        "--json", default=None, metavar="PATH", help="also write the report as JSON"
    )
    loadgen.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "JSONL request-trace file for the in-process target (with --quick "
            "the file is also parsed and checked after the run); for --url "
            "targets pass --trace to the server side instead"
        ),
    )
    loadgen.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="P",
        help="probability a request is traced (default 1.0)",
    )
    loadgen.add_argument(
        "--slo-config",
        default=None,
        metavar="FILE",
        help=(
            "JSON SLO config for the in-process target (see repro serve); "
            "after the soak the per-tenant verdict block is validated and "
            "printed"
        ),
    )
    loadgen.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small sizes, then assert a well-formed non-degenerate report",
    )

    trace_summary = subparsers.add_parser(
        "trace-summary",
        help="per-stage latency breakdown of a JSONL trace file",
    )
    trace_summary.add_argument("trace_file", metavar="FILE", help="JSONL trace file")
    trace_summary.add_argument(
        "--json", default=None, metavar="PATH", help="also write the summary as JSON"
    )
    trace_summary.add_argument(
        "--exemplars",
        type=int,
        nargs="?",
        const=5,
        default=None,
        metavar="K",
        help=(
            "also list the K slowest request spans with their trace IDs "
            "(default K=5) — the file-side view of the metrics exemplars"
        ),
    )

    top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a serving endpoint's /v1/metrics",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="serving endpoint to poll (default http://127.0.0.1:8080)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll interval (default 2.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single poll and exit (no QPS column — rates need two)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit the view as JSON instead of the ANSI screen (CI smoke mode)",
    )

    bench_serve = subparsers.add_parser(
        "bench-serve", help="serving throughput: single vs batched, dense vs packed"
    )
    bench_serve.add_argument("--dimension", type=int, default=4000)
    bench_serve.add_argument("--features", type=int, default=64)
    bench_serve.add_argument("--classes", type=int, default=10)
    bench_serve.add_argument("--samples", type=int, default=256)
    bench_serve.add_argument("--batch-size", type=int, default=64)
    bench_serve.add_argument("--concurrency", type=int, default=8)
    bench_serve.add_argument("--seed", type=int, default=0)

    bench_dispatch = subparsers.add_parser(
        "bench-dispatch",
        help=(
            "per-dispatch transport micro-benchmark: bytes by carriage "
            "(pipe/shm/socket), frames, wall time; parity asserted first"
        ),
    )
    bench_dispatch.add_argument("--dimension", type=int, default=4000)
    bench_dispatch.add_argument("--features", type=int, default=64)
    bench_dispatch.add_argument("--classes", type=int, default=10)
    bench_dispatch.add_argument("--batch-size", type=int, default=64)
    bench_dispatch.add_argument("--top-k", type=int, default=10)
    bench_dispatch.add_argument("--repeats", type=int, default=30)
    bench_dispatch.add_argument(
        "--transports",
        nargs="+",
        default=["pipe", "shm", "tcp"],
        choices=["pipe", "shm", "tcp"],
        help="transports to measure (default: all three)",
    )
    bench_dispatch.add_argument("--seed", type=int, default=0)
    bench_dispatch.add_argument(
        "--quick", action="store_true", help="shrink sizes for a CI smoke run"
    )
    bench_dispatch.add_argument(
        "--json", default=None, metavar="PATH", help="also write the results as JSON"
    )

    bench_kernels = subparsers.add_parser(
        "bench-kernels",
        help="kernel-layer benchmark: fused encode, packed predict, dtype policy",
    )
    bench_kernels.add_argument("--dimension", type=int, default=4000)
    bench_kernels.add_argument("--features", type=int, default=64)
    bench_kernels.add_argument("--num-levels", type=int, default=32)
    bench_kernels.add_argument("--classes", type=int, default=10)
    bench_kernels.add_argument("--samples", type=int, default=512)
    bench_kernels.add_argument("--seed", type=int, default=0)
    bench_kernels.add_argument(
        "--quick", action="store_true", help="shrink sizes for a CI smoke run"
    )
    bench_kernels.add_argument(
        "--json", default=None, metavar="PATH", help="also write the results as JSON"
    )

    bench_train = subparsers.add_parser(
        "bench-train",
        help="packed-training benchmark: retraining fit() vs the seed sequential loop",
    )
    bench_train.add_argument("--dimension", type=int, default=4000)
    bench_train.add_argument("--features", type=int, default=64)
    bench_train.add_argument("--num-levels", type=int, default=32)
    bench_train.add_argument("--classes", type=int, default=10)
    bench_train.add_argument("--samples", type=int, default=2000)
    bench_train.add_argument("--iterations", type=int, default=20)
    bench_train.add_argument(
        "--multimodel-models-per-class",
        type=int,
        default=64,
        help="ensemble sub-models per class for the multimodel case (paper: 64)",
    )
    bench_train.add_argument(
        "--multimodel-samples",
        type=int,
        default=400,
        help="training samples for the multimodel case (sliced from --samples)",
    )
    bench_train.add_argument(
        "--multimodel-iterations",
        type=int,
        default=3,
        help="stochastic training passes for the multimodel case",
    )
    bench_train.add_argument("--seed", type=int, default=0)
    bench_train.add_argument(
        "--quick", action="store_true", help="shrink sizes for a CI smoke run"
    )
    bench_train.add_argument(
        "--json", default=None, metavar="PATH", help="also write the results as JSON"
    )

    return parser


def _build_encoder(args) -> RecordEncoder:
    encoder_cls = RecordEncoder if args.encoder == "record" else NGramEncoder
    return encoder_cls(
        dimension=args.dimension, num_levels=args.num_levels, seed=args.seed
    )


def _build_classifier(name: str, dataset: str, args):
    lehdc_config = get_paper_config(dataset).with_overrides(
        epochs=args.epochs, batch_size=64, learning_rate=0.01
    )
    factories = {
        "baseline": lambda: BaselineHDC(seed=args.seed),
        "multimodel": lambda: MultiModelHDC(models_per_class=8, iterations=2, seed=args.seed),
        "retraining": lambda: RetrainingHDC(iterations=args.iterations, seed=args.seed),
        "adapthd": lambda: AdaptHDC(iterations=args.iterations, seed=args.seed),
        "enhanced": lambda: EnhancedRetrainingHDC(iterations=args.iterations, seed=args.seed),
        "lehdc": lambda: LeHDCClassifier(config=lehdc_config, seed=args.seed),
        "lehdc-nonbinary": lambda: NonBinaryLeHDCClassifier(config=lehdc_config, seed=args.seed),
    }
    return factories[name]()


def command_list_datasets() -> int:
    rows = []
    for name in list_datasets():
        real = try_load_real_dataset(name)
        source = "real files found" if real is not None else "synthetic substitute"
        rows.append([name, source])
    print(format_table(["dataset", "data source"], rows, title="Registered benchmarks"))
    return 0


def command_train(args) -> int:
    data = get_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(f"Dataset: {data.describe()}")
    pipeline = HDCPipeline(_build_encoder(args), _build_classifier(args.strategy, args.dataset, args))
    pipeline.fit(data.train_features, data.train_labels)
    train_accuracy = pipeline.score(data.train_features, data.train_labels)
    test_accuracy = pipeline.score(data.test_features, data.test_labels)
    print(f"{args.strategy}: train accuracy {train_accuracy:.4f}, test accuracy {test_accuracy:.4f}")
    if args.save:
        destination = save_model(args.save, pipeline, strategy_name=args.strategy)
        print(f"Model saved to {destination}")
    return 0


def command_compare(args) -> int:
    data = get_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(f"Dataset: {data.describe()}")
    encoder = _build_encoder(args)
    encoder.fit(data.train_features)
    train_encoded = encoder.encode(data.train_features)
    test_encoded = encoder.encode(data.test_features)

    rows = []
    for strategy in ("baseline", "multimodel", "retraining", "lehdc"):
        classifier = _build_classifier(strategy, args.dataset, args)
        classifier.fit(train_encoded, data.train_labels)
        rows.append(
            [
                strategy,
                f"{classifier.score(train_encoded, data.train_labels):.4f}",
                f"{classifier.score(test_encoded, data.test_labels):.4f}",
            ]
        )
        print(f"  trained {strategy}")
    print(
        format_table(
            ["strategy", "train acc", "test acc"],
            rows,
            title=f"Strategy comparison on {args.dataset} (D={args.dimension})",
        )
    )
    return 0


def command_sweep(args) -> int:
    lehdc_config = get_paper_config(args.dataset).with_overrides(
        epochs=args.epochs, batch_size=64, learning_rate=0.01
    )
    strategies = {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "retraining": lambda rng: RetrainingHDC(iterations=args.iterations, seed=rng),
        "lehdc": lambda rng: LeHDCClassifier(config=lehdc_config, seed=rng),
    }
    result = run_dimension_sweep(
        dataset_name=args.dataset,
        dimensions=args.dimensions,
        strategies=strategies,
        num_levels=args.num_levels,
        repetitions=1,
        profile=args.profile,
        seed=args.seed,
    )
    rows = [
        [dimension]
        + [f"{result.summary(name)[dimension].mean:.4f}" for name in strategies]
        for dimension in result.dimensions
    ]
    print(
        format_table(
            ["D"] + list(strategies),
            rows,
            title=f"Accuracy vs dimension on {args.dataset}",
        )
    )
    return 0


def command_predict(args) -> int:
    pipeline = load_model(args.model)
    data = get_dataset(args.dataset, profile=args.profile, seed=args.seed)
    accuracy = pipeline.score(data.test_features, data.test_labels)
    print(f"Loaded model from {args.model}")
    print(f"Test accuracy on {args.dataset} ({args.profile} profile): {accuracy:.4f}")
    return 0


def command_serve(args) -> int:  # pragma: no cover - blocking server loop
    from repro.kernels.dispatch import set_backend
    from repro.serve import ModelRegistry, ServeApp
    from repro.serve.server import run_server

    from pathlib import Path

    if args.kernel_backend is not None:
        # Process-wide: the scheduler's inference worker threads all resolve
        # kernels through the dispatch registry, so one call covers them.
        set_backend(args.kernel_backend)
    registry = ModelRegistry(max_resident=args.max_resident)
    for spec in args.model:
        # NAME=PATH syntax; a bare PATH takes the file stem as its name.
        name, _, path = spec.rpartition("=")
        path = path or spec
        try:
            registry.register(name or Path(path).stem, path)
        except (OSError, ValueError) as error:
            print(f"error: cannot load model {path!r}: {error}", file=sys.stderr)
            return 1
    tracer = None
    if args.trace:
        from repro.obs import configure_tracing

        tracer = configure_tracing(args.trace, sample_rate=args.trace_sample)
        print(f"tracing to {args.trace} (sample rate {args.trace_sample:g})")
    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan

        if args.workers < 2:
            print("error: --faults requires --workers >= 2", file=sys.stderr)
            return 1
        try:
            fault_plan = FaultPlan.resolve(args.faults)
        except ValueError as error:
            print(f"error: bad --faults plan: {error}", file=sys.stderr)
            return 1
        print(f"chaos mode: injecting faults ({fault_plan.describe_short()})")
    try:
        tenant_quotas = _build_tenant_quotas(args)
    except (OSError, ValueError) as error:
        print(f"error: bad tenant quotas: {error}", file=sys.stderr)
        return 1
    try:
        slo_config = _build_slo_config(args)
    except (OSError, ValueError) as error:
        print(f"error: bad SLO config: {error}", file=sys.stderr)
        return 1
    app = ServeApp(
        registry,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        num_workers=args.scheduler_threads,
        num_processes=args.workers if args.workers > 1 else 0,
        transport=args.transport,
        cache_size=args.cache_size,
        max_queue_depth=args.max_queue_depth,
        max_concurrent=args.max_concurrent,
        default_deadline_ms=args.deadline_ms,
        request_timeout=args.request_timeout,
        fault_plan=fault_plan,
        tenant_quotas=tenant_quotas,
        max_resident_banks=args.max_resident_banks,
        slo_config=slo_config,
    )
    try:
        run_server(
            app,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            log_level=args.log_level,
        )
    finally:
        if tracer is not None:
            tracer.close()
    return 0


def _build_slo_config(args):
    """``SLOConfig`` from ``--slo-config``, or ``None`` (the engine then
    applies the fleet-default objective to every tenant)."""
    if not getattr(args, "slo_config", None):
        return None
    from repro.obs.slo import SLOConfig

    return SLOConfig.from_file(args.slo_config)


def _build_tenant_quotas(args):
    """``TenantQuotas`` from the CLI flags / config file, or ``None``.

    Explicit flags win over the config file's ``defaults``; ``None`` flags
    are simply not forwarded so the file's values survive.
    """
    from repro.serve.tenancy import TenantQuotas

    overrides = {}
    if args.tenant_rps is not None:
        overrides["rps"] = args.tenant_rps
    if args.tenant_burst is not None:
        overrides["burst"] = args.tenant_burst
    if args.tenant_max_concurrent is not None:
        overrides["max_concurrent"] = args.tenant_max_concurrent
    if args.tenant_quotas:
        return TenantQuotas.from_file(args.tenant_quotas, **overrides)
    if not overrides:
        return None
    return TenantQuotas(**overrides)


def _list_shm_segments() -> set:
    """Names of the POSIX shared-memory segments currently alive.

    Linux exposes them as files under ``/dev/shm``; elsewhere the check
    degrades to an empty set (the leak audit then passes vacuously).
    """
    from pathlib import Path

    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():
        return set()
    return {entry.name for entry in shm_root.iterdir()}


def command_loadgen(args) -> int:
    from pathlib import Path

    from repro.loadgen import (
        ClosedLoop,
        HTTPTarget,
        InProcessTarget,
        OpenLoop,
        RequestSampler,
        format_report,
        run_load_test,
        validate_fleet_report,
        validate_report,
        validate_resilience_report,
        validate_slo_report,
        write_report,
    )

    num_requests = args.requests if args.requests is not None else (120 if args.quick else 400)
    warmup = args.warmup if args.warmup is not None else (16 if args.quick else 40)
    dimension = min(args.dimension, 1000) if args.quick else args.dimension

    if args.models < 1:
        print("error: --models must be >= 1", file=sys.stderr)
        return 1
    if args.models > 1 and args.url:
        print(
            "error: --models drives the in-process target (it registers the "
            "tenant fleet); register the models on the server for --url soaks",
            file=sys.stderr,
        )
        return 1
    if args.max_resident_banks is not None and args.workers < 2:
        print(
            "error: --max-resident-banks requires --workers >= 2 "
            "(bank paging is a fleet feature)",
            file=sys.stderr,
        )
        return 1

    if args.slo_config and args.url:
        print(
            "error: --slo-config drives the in-process target; start the "
            "server with --slo-config instead for --url soaks",
            file=sys.stderr,
        )
        return 1

    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan

        if args.url:
            print(
                "error: --faults drives the in-process target; start the "
                "server with --faults instead for --url soaks",
                file=sys.stderr,
            )
            return 1
        if args.workers < 2:
            print("error: --faults requires --workers >= 2", file=sys.stderr)
            return 1
        try:
            fault_plan = FaultPlan.resolve(args.faults)
        except ValueError as error:
            print(f"error: bad --faults plan: {error}", file=sys.stderr)
            return 1
        if fault_plan is not None:
            print(f"chaos soak: {fault_plan.describe_short()}")

    tracer = None
    if args.trace:
        from repro.obs import configure_tracing

        tracer = configure_tracing(args.trace, sample_rate=args.trace_sample)

    tenant_names = None
    if args.models > 1:
        tenant_names = [f"{args.dataset}-t{i:02d}" for i in range(args.models)]
    sampler = RequestSampler(
        dataset=args.dataset,
        profile=args.profile,
        seed=args.seed,
        models=tenant_names,
        zipf_s=args.zipf_s,
    )
    if args.mode == "open":
        traffic = OpenLoop(rate_rps=args.rate, seed=args.seed)
    else:
        traffic = ClosedLoop(concurrency=args.concurrency)

    app = None
    if args.url:
        target = HTTPTarget(args.url, top_k=args.top_k, deadline_ms=args.deadline_ms)
    else:
        from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp

        registry = ModelRegistry(max_resident=max(4, args.models))
        if args.model:
            try:
                for name in tenant_names or [Path(args.model).stem]:
                    registry.register(name, args.model)
            except (OSError, ValueError) as error:
                print(f"error: cannot load model {args.model!r}: {error}", file=sys.stderr)
                return 1
        else:
            # No model given: train a quick deterministic baseline on the
            # sampler's own dataset so the soak exercises a real pipeline.
            encoder = RecordEncoder(
                dimension=dimension,
                num_levels=16,
                tie_break="positive",
                seed=args.seed,
            )
            pipeline = HDCPipeline(encoder, BaselineHDC(seed=args.seed))
            pipeline.fit(sampler.train_features, sampler.train_labels)
            engine = PackedInferenceEngine(pipeline, name=args.dataset)
            if tenant_names is None:
                registry.register(args.dataset, engine)
            else:
                # Fleet soak: every tenant serves the same trained model
                # (pinned, so registering N names costs one training run);
                # banks and worker pools are still per-tenant, which is what
                # the Zipf traffic pages in and out.
                for tenant in tenant_names:
                    registry.register(tenant, engine)
        try:
            tenant_quotas = _build_tenant_quotas(args)
        except (OSError, ValueError) as error:
            print(f"error: bad tenant quotas: {error}", file=sys.stderr)
            return 1
        try:
            slo_config = _build_slo_config(args)
        except (OSError, ValueError) as error:
            print(f"error: bad SLO config: {error}", file=sys.stderr)
            return 1
        app = ServeApp(
            registry,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            num_processes=args.workers if args.workers > 1 else 0,
            transport=args.transport,
            cache_size=args.cache_size,
            max_queue_depth=args.max_queue_depth,
            max_concurrent=args.max_concurrent,
            request_timeout=args.request_timeout,
            fault_plan=fault_plan,
            tenant_quotas=tenant_quotas,
            max_resident_banks=args.max_resident_banks,
            slo_config=slo_config,
        )
        target = InProcessTarget(
            app, top_k=args.top_k, deadline_ms=args.deadline_ms
        )

    # Chaos and fleet runs also audit shm hygiene: every segment the soak
    # creates must be gone once the app closes (a leak means a crashed
    # worker, a missed unlink, or an eviction that never reached close()).
    audit_shm = fault_plan is not None or (args.models > 1 and args.workers > 1)
    shm_before = _list_shm_segments() if audit_shm else None

    retries = args.retries
    if retries is None:
        # Multi-tenant and chaos soaks shed/fail requests by design; the
        # client's job is to retry the typed answers, so default those on.
        retries = 3 if (args.models > 1 or fault_plan is not None) else 0

    try:
        report = run_load_test(
            target,
            sampler,
            traffic,
            num_requests=num_requests,
            warmup_requests=warmup,
            fault_plan=fault_plan,
            max_retries=retries,
        )
    finally:
        if app is not None:
            app.close()
        if tracer is not None:
            tracer.close()

    leaked = []
    if shm_before is not None:
        leaked = sorted(_list_shm_segments() - shm_before)

    print(format_report(report))
    if args.json:
        destination = write_report(args.json, report)
        print(f"report written to {destination}")
    if leaked:
        print(f"error: leaked shm segments after soak: {leaked}", file=sys.stderr)
        return 1
    if args.models > 1 and args.workers > 1:
        try:
            validate_resilience_report(report, min_availability=args.min_availability)
            validate_fleet_report(
                report, max_resident_banks=args.max_resident_banks
            )
        except ValueError as error:
            print(f"error: fleet soak failed: {error}", file=sys.stderr)
            return 1
        delta = report.get("server_metrics_delta") or {}
        fleet_after = delta.get("fleet_after") or {}
        print(
            "fleet soak validated: availability "
            f"{report['resilience']['availability']:.2%}, "
            f"{delta.get('cold_loads', 0)} cold loads, "
            f"{delta.get('bank_evictions', 0)} evictions, "
            f"{fleet_after.get('resident_banks', 0)} resident banks "
            f"(cap {args.max_resident_banks or 'none'}), "
            "zero leaked shm segments"
        )
    if fault_plan is not None:
        try:
            validate_resilience_report(report, min_availability=args.min_availability)
        except ValueError as error:
            print(f"error: chaos soak failed: {error}", file=sys.stderr)
            return 1
        delta = report.get("server_metrics_delta") or {}
        injected = sum(
            delta.get(name, 0)
            for name in (
                "respawns",
                "hangs",
                "shard_retries",
                "transport_errors",
                "worker_faults",
                "bank_faults",
                "bank_evictions",
                "bank_restores",
            )
        )
        if not injected:
            print(
                "error: chaos soak injected no faults (vacuous pass) — "
                "raise --requests or use more workers",
                file=sys.stderr,
            )
            return 1
        resilience = report["resilience"]
        print(
            "chaos soak validated: availability "
            f"{resilience['availability']:.2%} (floor {args.min_availability:.0%}), "
            f"errors by status {resilience['errors_by_status'] or '{}'}, "
            "zero untyped errors, zero deadline violations, zero leaked "
            "shm segments"
        )
    if not args.url and (args.slo_config or args.quick):
        # The soak's SLO verdict block is part of the CI contract: every
        # tenant evaluated, verdicts well-formed, and — when tracing — at
        # least one latency exemplar linking a bucket to a trace_id.
        try:
            validate_slo_report(report, require_exemplar=bool(args.trace))
        except ValueError as error:
            print(f"error: SLO verdict block invalid: {error}", file=sys.stderr)
            return 1
        tenants = report["slo"]["tenants"]
        verdicts = ", ".join(
            f"{name}={tenant['verdict']}" for name, tenant in sorted(tenants.items())
        )
        exemplar_count = len(report.get("exemplars") or [])
        print(
            f"slo verdicts validated: {verdicts} "
            f"({exemplar_count} trace exemplars)"
        )
    if args.quick and fault_plan is None and args.models == 1:
        validate_report(report)
        print(
            "quick-mode report validated: non-zero throughput, "
            "monotone percentiles, zero errors"
        )
        if args.trace and not args.url:
            # The CI tracing smoke: the file must parse strictly, cover the
            # run, and — with a worker pool — contain worker-side spans that
            # stitched across the process boundary.
            from repro.obs import parse_trace_file

            spans = parse_trace_file(args.trace)
            if not spans:
                print("error: trace file is empty", file=sys.stderr)
                return 1
            names = {span["name"] for span in spans}
            if "request" not in names:
                print(f"error: no request spans in trace ({sorted(names)})", file=sys.stderr)
                return 1
            if args.workers > 1 and "worker:score" not in names:
                print(
                    f"error: no worker-side spans in trace ({sorted(names)})",
                    file=sys.stderr,
                )
                return 1
            print(
                f"trace validated: {len(spans)} spans, "
                f"stages {', '.join(sorted(names))}"
            )
    return 0


def command_trace_summary(args) -> int:
    from repro.obs import format_trace_summary, parse_trace_file, summarize_spans
    from repro.obs.summary import format_exemplars, slowest_exemplars

    try:
        spans = parse_trace_file(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    summary = summarize_spans(spans)
    print(format_trace_summary(summary))
    exemplars = None
    if args.exemplars is not None:
        try:
            exemplars = slowest_exemplars(spans, k=args.exemplars)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(format_exemplars(exemplars))
    if args.json:
        import json

        if exemplars is not None:
            summary = dict(summary, exemplars=exemplars)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"summary written to {args.json}")
    return 0


def command_top(args) -> int:
    from repro.obs.console import DEFAULT_INTERVAL, run_console

    interval = args.interval if args.interval is not None else DEFAULT_INTERVAL
    if interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 1
    return run_console(
        args.url, interval=interval, once=args.once, as_json=args.json
    )


def command_bench_serve(args) -> int:
    from repro.serve.bench import format_benchmark_rows, run_serving_benchmark

    result = run_serving_benchmark(
        dimension=args.dimension,
        num_features=args.features,
        num_classes=args.classes,
        num_samples=args.samples,
        batch_size=args.batch_size,
        concurrency=args.concurrency,
        seed=args.seed,
    )
    config = result["config"]
    print(
        format_table(
            ["mode", "samples/s", "vs single-dense"],
            format_benchmark_rows(result),
            title=(
                f"Serving throughput (D={config['dimension']}, "
                f"batch={config['batch_size']}, K={config['num_classes']})"
            ),
        )
    )
    if result["batch_size_distribution"]:
        print(f"scheduler batch sizes: {result['batch_size_distribution']}")
    return 0


def command_bench_dispatch(args) -> int:
    import json

    from repro.cluster.bench import format_microbench_rows, run_dispatch_microbench

    result = run_dispatch_microbench(
        dimension=500 if args.quick else args.dimension,
        num_features=args.features,
        num_classes=args.classes,
        batch_size=min(args.batch_size, 32) if args.quick else args.batch_size,
        k=args.top_k,
        repeats=5 if args.quick else args.repeats,
        transports=args.transports,
        seed=args.seed,
    )
    config = result["config"]
    print(
        format_table(
            [
                "transport",
                "us/dispatch",
                "pipe B/disp",
                "shm B/disp",
                "socket B/disp",
                "frames/disp",
                "pipe-byte cut",
            ],
            format_microbench_rows(result),
            title=(
                f"Dispatch micro-benchmark (D={config['dimension']}, "
                f"batch={config['batch_size']}, k={config['k']})"
            ),
        )
    )
    print(f"host cpu count: {result['cpu_count']}")
    if args.quick:
        # Parity is asserted inside the harness before timing; the smoke
        # additionally pins the headline byte claim when shm was measured.
        reduction = result["pipe_byte_reduction"].get("shm")
        if reduction is not None and reduction < 10.0:
            print(
                f"error: shm pipe-byte reduction {reduction:.1f}x < 10x",
                file=sys.stderr,
            )
            return 1
        print("quick-mode checks passed: parity exact on every transport")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"results written to {args.json}")
    return 0


def command_bench_kernels(args) -> int:
    import json

    from repro.kernels.bench import format_report, run_kernel_benchmark

    results = run_kernel_benchmark(
        dimension=args.dimension,
        num_features=args.features,
        num_levels=args.num_levels,
        num_classes=args.classes,
        num_samples=args.samples,
        seed=args.seed,
        quick=args.quick,
    )
    print(format_report(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")
    return 0


def command_bench_train(args) -> int:
    import json

    from repro.kernels.bench_train import format_training_report, run_training_benchmark

    results = run_training_benchmark(
        dimension=args.dimension,
        num_features=args.features,
        num_levels=args.num_levels,
        num_classes=args.classes,
        num_samples=args.samples,
        iterations=args.iterations,
        seed=args.seed,
        quick=args.quick,
        multimodel_models_per_class=args.multimodel_models_per_class,
        multimodel_samples=args.multimodel_samples,
        multimodel_iterations=args.multimodel_iterations,
    )
    print(format_training_report(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return command_list_datasets()
    if args.command == "train":
        return command_train(args)
    if args.command == "compare":
        return command_compare(args)
    if args.command == "sweep":
        return command_sweep(args)
    if args.command == "predict":
        return command_predict(args)
    if args.command == "serve":
        return command_serve(args)
    if args.command == "loadgen":
        return command_loadgen(args)
    if args.command == "trace-summary":
        return command_trace_summary(args)
    if args.command == "top":
        return command_top(args)
    if args.command == "bench-serve":
        return command_bench_serve(args)
    if args.command == "bench-dispatch":
        return command_bench_dispatch(args)
    if args.command == "bench-kernels":
        return command_bench_kernels(args)
    if args.command == "bench-train":
        return command_bench_train(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
