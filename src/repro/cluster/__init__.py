"""repro.cluster — multiprocess serving with shared-memory model residency.

The GIL caps the single-process serving stack at roughly one core of encode
throughput no matter how many scheduler threads run.  This subpackage is the
scale-out tier that breaks that cap without duplicating the model:

* :mod:`repro.cluster.shared` — :class:`SharedModelStore` publishes packed
  inference banks into ``multiprocessing.shared_memory`` segments
  (refcounted; one physical copy serves every worker), plus the picklable
  :class:`SharedBankHandle` / :class:`WorkerModelSpec` and the worker-side
  :func:`build_worker_engine` that reconstructs a
  :class:`~repro.serve.engine.PackedInferenceEngine` over the mapped words;
* :mod:`repro.cluster.worker` — the worker process loop (tiny
  request/reply protocol over a duplex pipe);
* :mod:`repro.cluster.dispatcher` — :class:`ClusterDispatcher` shards
  micro-batches across the pool, merges scores bit-identically (including
  the ensemble max-over-bank reduction), and respawns crashed workers;
* :mod:`repro.cluster.errors` — the exception taxonomy the HTTP layer maps
  to status codes.

Wired into serving as ``ServeApp(..., num_processes=N)`` /
``repro serve --workers N``, and complemented on the kernel side by the
``multiprocess`` dispatch backend (``REPRO_KERNEL_BACKEND=multiprocess``)
which shards ``packed.bit_differences`` across a process pool.
"""

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.errors import ClusterError, WorkerCrashedError, WorkerStartupError
from repro.cluster.shared import (
    AttachedBank,
    SharedBankHandle,
    SharedModelStore,
    WorkerModelSpec,
    attach_bank,
    build_worker_engine,
    make_worker_spec,
)

__all__ = [
    "AttachedBank",
    "ClusterDispatcher",
    "ClusterError",
    "SharedBankHandle",
    "SharedModelStore",
    "WorkerCrashedError",
    "WorkerModelSpec",
    "WorkerStartupError",
    "attach_bank",
    "build_worker_engine",
    "make_worker_spec",
]
