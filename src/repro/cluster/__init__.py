"""repro.cluster — multiprocess serving with shared-memory model residency.

The GIL caps the single-process serving stack at roughly one core of encode
throughput no matter how many scheduler threads run.  This subpackage is the
scale-out tier that breaks that cap without duplicating the model:

* :mod:`repro.cluster.shared` — :class:`SharedModelStore` publishes packed
  inference banks into ``multiprocessing.shared_memory`` segments
  (refcounted; one physical copy serves every worker), plus the picklable
  :class:`SharedBankHandle` / :class:`WorkerModelSpec` and the worker-side
  :func:`build_worker_engine` that reconstructs a
  :class:`~repro.serve.engine.PackedInferenceEngine` over the mapped words;
* :mod:`repro.cluster.transport` — the pluggable data plane: one
  request/reply protocol behind three carriages (``pipe`` pickling, ``shm``
  shared-memory rings with control frames on the pipe, ``tcp`` framed
  localhost sockets), each with exact byte accounting;
* :mod:`repro.cluster.worker` — the worker process loop (the tiny
  request/reply protocol over its transport endpoint);
* :mod:`repro.cluster.dispatcher` — :class:`ClusterDispatcher` validates +
  packs each batch once, shards the packed words across the pool, merges
  scores bit-identically (including the ensemble max-over-bank reduction),
  and respawns crashed workers;
* :mod:`repro.cluster.affinity` — best-effort ``sched_setaffinity`` worker
  pinning so scaling benchmarks record where work actually ran;
* :mod:`repro.cluster.errors` — the exception taxonomy the HTTP layer maps
  to status codes.

Wired into serving as ``ServeApp(..., num_processes=N)`` /
``repro serve --workers N``, and complemented on the kernel side by the
``multiprocess`` dispatch backend (``REPRO_KERNEL_BACKEND=multiprocess``)
which shards ``packed.bit_differences`` across a process pool.
"""

from repro.cluster.affinity import available_cpus, build_pin_map, pin_process
from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.errors import (
    BankEvictedError,
    BankUnavailableError,
    ClusterError,
    DeadlineExceededError,
    DispatcherClosedError,
    WorkerCrashedError,
    WorkerFaultError,
    WorkerStartupError,
)
from repro.cluster.transport import TRANSPORT_NAMES, Transport, TransportError
from repro.cluster.shared import (
    AttachedBank,
    BankLease,
    SharedBankHandle,
    SharedModelStore,
    WorkerModelSpec,
    attach_bank,
    build_worker_engine,
    make_worker_spec,
)

__all__ = [
    "AttachedBank",
    "BankEvictedError",
    "BankLease",
    "BankUnavailableError",
    "ClusterDispatcher",
    "ClusterError",
    "DeadlineExceededError",
    "DispatcherClosedError",
    "SharedBankHandle",
    "SharedModelStore",
    "TRANSPORT_NAMES",
    "Transport",
    "TransportError",
    "WorkerCrashedError",
    "WorkerFaultError",
    "WorkerModelSpec",
    "WorkerStartupError",
    "attach_bank",
    "available_cpus",
    "build_pin_map",
    "build_worker_engine",
    "make_worker_spec",
    "pin_process",
]
