"""CPU-affinity pinning for cluster workers (best-effort, Linux-first).

Scaling measurements are meaningless without knowing where the workers
actually ran: on a 1-CPU host every "2-worker speedup" is scheduler noise,
and on a many-core host an unpinned worker pool can migrate mid-benchmark.
This module gives the dispatcher and the scaling harness the two primitives
they need to be honest about it:

* :func:`available_cpus` — the CPUs this process may schedule on (the
  cgroup/affinity mask when the platform exposes it, ``cpu_count`` range
  otherwise), which is what every benchmark result records;
* :func:`build_pin_map` / :func:`pin_process` — a round-robin
  worker→CPU assignment applied with ``sched_setaffinity`` where it exists,
  silently skipped where it does not (macOS, Windows) so pinning is a
  measurement aid, never a portability hazard.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence


def available_cpus() -> List[int]:
    """CPUs this process may run on (affinity mask if the OS exposes one)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return sorted(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic container runtimes
            pass
    return list(range(os.cpu_count() or 1))


def build_pin_map(
    num_workers: int, cpus: Optional[Sequence[int]] = None
) -> Dict[int, int]:
    """Round-robin worker-index → CPU assignment over *cpus* (or all CPUs)."""
    pool = list(cpus) if cpus is not None else available_cpus()
    if not pool:
        return {}
    return {index: int(pool[index % len(pool)]) for index in range(num_workers)}


def pin_process(pid: int, cpu: int) -> bool:
    """Pin process *pid* to a single CPU; returns whether the pin stuck.

    ``False`` means the platform has no ``sched_setaffinity`` or the call
    was refused (dead process, masked CPU) — callers record the outcome
    rather than fail, so results stay honest on every platform.
    """
    if not hasattr(os, "sched_setaffinity"):
        return False
    try:
        os.sched_setaffinity(pid, {int(cpu)})
    except (OSError, ValueError):
        return False
    return True


__all__ = ["available_cpus", "build_pin_map", "pin_process"]
