"""Cluster scaling benchmark: throughput vs worker count, parity always.

Shared by ``benchmarks/bench_cluster_scaling.py``.  Two claims are measured
on one trained model at serving scale (D=4000 by default):

* **parity** — for every worker count, the merged cluster scores equal the
  single-process engine's bit for bit (this holds on any machine and is the
  part CI asserts unconditionally);
* **scaling** — samples/second of the sharded cluster vs the single-process
  engine.  Only meaningful on multi-core hosts: on a single core the cluster
  pays fork + pipe overhead for no parallelism, and the harness records
  ``cpu_count`` so the results file says which regime produced it.

An ensemble (``MultiModelHDC``) parity check rides along so the
max-over-bank merge path is exercised at benchmark scale, not just in the
unit tests.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Sequence

import numpy as np

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster.dispatcher import ClusterDispatcher
from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import RecordEncoder
from repro.serve.engine import PackedInferenceEngine


def _throughput(run, num_samples: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return num_samples / best if best > 0 else float("inf")


def run_cluster_scaling_benchmark(
    dimension: int = 4000,
    num_features: int = 64,
    num_classes: int = 10,
    num_samples: int = 256,
    batch_size: int = 64,
    worker_counts: Sequence[int] = (1, 2, 4),
    ensemble_models_per_class: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure cluster throughput at each worker count; verify score parity.

    Returns ``{config, rates, speedups, parity, cpu_count}`` where ``rates``
    maps ``"single-process"`` and ``"workers-N"`` to samples/second,
    ``speedups`` normalises by the single-process rate, and ``parity`` maps
    the same keys (plus ``"ensemble-workers-2"``) to booleans.
    """
    train_features, train_labels, test_features, _ = make_gaussian_classes(
        num_classes=num_classes,
        num_features=num_features,
        train_size=max(40 * num_classes, 200),
        test_size=num_samples,
        class_sep=2.5,
        seed=seed,
    )
    encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed
    )
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=seed))
    pipeline.fit(train_features, train_labels)
    engine = PackedInferenceEngine(pipeline, name="scaling")
    engine.warmup()
    queries = test_features[:num_samples]
    reference_scores = engine.decision_scores(queries)

    def run_batches(top_k):
        for start in range(0, num_samples, batch_size):
            top_k(queries[start : start + batch_size], k=1)

    rates: Dict[str, float] = {
        "single-process": _throughput(lambda: run_batches(engine.top_k), num_samples)
    }
    parity: Dict[str, bool] = {"single-process": True}

    for count in worker_counts:
        key = f"workers-{count}"
        with ClusterDispatcher(engine, num_workers=count, name=key) as dispatcher:
            parity[key] = bool(
                np.array_equal(dispatcher.decision_scores(queries), reference_scores)
            )
            rates[key] = _throughput(
                lambda: run_batches(dispatcher.top_k), num_samples
            )

    # Ensemble max-over-bank merge parity at benchmark dimension.
    ensemble_encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed + 1
    )
    ensemble_pipeline = HDCPipeline(
        ensemble_encoder,
        MultiModelHDC(
            models_per_class=ensemble_models_per_class, iterations=1, seed=seed
        ),
    )
    ensemble_pipeline.fit(train_features, train_labels)
    ensemble_engine = PackedInferenceEngine(ensemble_pipeline, name="scaling-ens")
    ensemble_queries = queries[: min(64, num_samples)]
    with ClusterDispatcher(ensemble_engine, num_workers=2) as dispatcher:
        parity["ensemble-workers-2"] = bool(
            np.array_equal(
                dispatcher.decision_scores(ensemble_queries),
                ensemble_engine.decision_scores(ensemble_queries),
            )
        )

    baseline_rate = rates["single-process"]
    return {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_classes": num_classes,
            "num_samples": num_samples,
            "batch_size": batch_size,
            "worker_counts": list(worker_counts),
            "ensemble_models_per_class": ensemble_models_per_class,
        },
        "cpu_count": os.cpu_count() or 1,
        "rates": rates,
        "speedups": {mode: rate / baseline_rate for mode, rate in rates.items()},
        "parity": parity,
    }


def format_scaling_rows(result: Dict[str, object]):
    """Rows ``[mode, samples/s, vs single-process, parity]`` for ``format_table``."""
    rates: Dict[str, float] = result["rates"]  # type: ignore[assignment]
    speedups: Dict[str, float] = result["speedups"]  # type: ignore[assignment]
    parity: Dict[str, bool] = result["parity"]  # type: ignore[assignment]
    return [
        [
            mode,
            f"{rates[mode]:.0f}",
            f"{speedups[mode]:.2f}x",
            "exact" if parity.get(mode) else "MISMATCH",
        ]
        for mode in rates
    ]


__all__ = ["format_scaling_rows", "run_cluster_scaling_benchmark"]
