"""Cluster benchmarks: dispatch micro-costs and scaling, parity always.

Shared by ``benchmarks/bench_cluster_scaling.py`` and ``repro
bench-dispatch``.  Two harnesses over one trained model at serving scale
(D=4000 by default):

* :func:`run_dispatch_microbench` — the per-dispatch cost of each transport
  (pipe / shm / tcp) with one worker, so the number isolates carriage
  overhead rather than parallelism: wall time per dispatch, exact bytes by
  carriage (pipe vs shared-memory slab vs socket) from the endpoints' own
  counters, and an estimated syscall count (two per frame: one write, one
  read).  The headline claim — the shm ring moves an order of magnitude
  fewer bytes through pipes than the pipe baseline — is read straight off
  ``pipe_bytes_per_dispatch``.
* :func:`run_cluster_scaling_benchmark` — samples/second of the sharded
  cluster vs the single-process engine, swept over transport × worker count
  (and optionally batch size), with workers pinned round-robin via
  ``sched_setaffinity`` where the platform allows it.

Both harnesses assert bit-identical parity against the single-process
engine *before* any timing is reported, and both record ``cpu_count``, the
available-CPU mask, and the per-worker pin map — on a single-CPU host the
scaling result carries an explicit note that speedup is not claimed there
(the cluster pays fork + carriage overhead for no parallelism), instead of
silently benchmarking workers below single-process as the pre-transport
harness did.

An ensemble (``MultiModelHDC``) parity check rides along on every transport
so the max-over-bank merge path is exercised at benchmark scale, not just
in the unit tests.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster.affinity import available_cpus
from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.transport import TRANSPORT_NAMES
from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import RecordEncoder
from repro.serve.engine import PackedInferenceEngine


def _throughput(run, num_samples: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return num_samples / best if best > 0 else float("inf")


def _build_engine(
    dimension: int,
    num_features: int,
    num_classes: int,
    num_samples: int,
    seed: int,
):
    train_features, train_labels, test_features, _ = make_gaussian_classes(
        num_classes=num_classes,
        num_features=num_features,
        train_size=max(40 * num_classes, 200),
        test_size=num_samples,
        class_sep=2.5,
        seed=seed,
    )
    encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed
    )
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=seed))
    pipeline.fit(train_features, train_labels)
    engine = PackedInferenceEngine(pipeline, name="scaling")
    engine.warmup()
    return engine, train_features, train_labels, test_features[:num_samples]


# ------------------------------------------------------------- micro-bench
def run_dispatch_microbench(
    dimension: int = 4000,
    num_features: int = 64,
    num_classes: int = 10,
    batch_size: int = 64,
    k: int = 10,
    repeats: int = 30,
    transports: Sequence[str] = TRANSPORT_NAMES,
    seed: int = 0,
) -> Dict[str, object]:
    """Per-dispatch transport cost with one worker: bytes, frames, wall time.

    Parity against the single-process engine is asserted (bit-identical
    labels *and* scores) before a single timed dispatch; the byte counters
    come from the parent endpoints themselves, so ``pipe_bytes_per_dispatch``
    is exact, not estimated.  Returns per-transport cost dictionaries plus
    ``pipe_byte_reduction`` (pipe-transport pipe bytes ÷ each transport's
    pipe bytes — the committed ≥10x claim for ``shm``).
    """
    engine, _, _, queries = _build_engine(
        dimension, num_features, num_classes, max(batch_size, 64), seed
    )
    batch = queries[:batch_size]
    expected_labels, expected_scores = engine.top_k(batch, k=k)

    costs: Dict[str, Dict[str, float]] = {}
    for transport in transports:
        with ClusterDispatcher(
            engine, num_workers=1, transport=transport, name=f"micro-{transport}"
        ) as dispatcher:
            labels, scores = dispatcher.top_k(batch, k=k)
            if not (
                np.array_equal(labels, expected_labels)
                and np.array_equal(scores, expected_scores)
            ):
                raise AssertionError(
                    f"{transport} transport broke top-k parity; refusing to time it"
                )
            dispatcher.top_k(batch, k=k)  # warm the slabs / socket buffers
            before = dispatcher.transport_stats()["totals"]
            started = time.perf_counter()
            for _ in range(repeats):
                dispatcher.top_k(batch, k=k)
            elapsed = time.perf_counter() - started
            after = dispatcher.transport_stats()["totals"]
        delta = {key: after[key] - before[key] for key in after}
        frames = delta["frames_sent"] + delta["frames_received"]
        costs[transport] = {
            "wall_seconds_per_dispatch": elapsed / repeats,
            "samples_per_second": batch_size * repeats / elapsed,
            "pipe_bytes_per_dispatch": delta["pipe_bytes"] / repeats,
            "shm_bytes_per_dispatch": delta["shm_bytes"] / repeats,
            "socket_bytes_per_dispatch": delta["socket_bytes"] / repeats,
            "payload_bytes_per_dispatch": delta["payload_bytes"] / repeats,
            "bytes_avoided_per_dispatch": delta["bytes_avoided"] / repeats,
            "frames_per_dispatch": frames / repeats,
            # One write + one read per frame; raw-byte carriages add their
            # own send/recv pairs but never scale with payload size the way
            # pickled pipe traffic does.
            "estimated_syscalls_per_dispatch": 2 * frames / repeats,
            "inline_fallbacks": float(delta["inline_fallbacks"]),
            "slab_grows": float(delta["slab_grows"]),
        }

    pipe_bytes = costs.get("pipe", {}).get("pipe_bytes_per_dispatch", 0.0)
    # ``None`` (not inf) when a transport uses no pipe at all — the committed
    # JSON stays strictly parseable.
    reduction = {
        transport: (
            pipe_bytes / cost["pipe_bytes_per_dispatch"]
            if cost["pipe_bytes_per_dispatch"] > 0
            else None
        )
        for transport, cost in costs.items()
    }
    return {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_classes": num_classes,
            "batch_size": batch_size,
            "k": k,
            "repeats": repeats,
            "transports": list(transports),
        },
        "cpu_count": os.cpu_count() or 1,
        "available_cpus": available_cpus(),
        "parity": {transport: True for transport in transports},
        "transports": costs,
        "pipe_byte_reduction": reduction,
    }


# ----------------------------------------------------------- scaling bench
def run_cluster_scaling_benchmark(
    dimension: int = 4000,
    num_features: int = 64,
    num_classes: int = 10,
    num_samples: int = 256,
    batch_size: int = 64,
    worker_counts: Sequence[int] = (1, 2, 4),
    ensemble_models_per_class: int = 8,
    transports: Sequence[str] = TRANSPORT_NAMES,
    cpu_affinity: Optional[str] = "auto",
    seed: int = 0,
) -> Dict[str, object]:
    """Measure cluster throughput per transport × worker count; verify parity.

    Returns ``{config, cpu_count, available_cpus, pin_maps, rates, speedups,
    parity, transport_totals, scaling_note}`` where ``rates`` maps
    ``"single-process"`` and ``"<transport>:workers-N"`` to samples/second,
    ``speedups`` normalises by the single-process rate, ``pin_maps`` records
    the per-worker CPU assignment actually applied (``None`` entries mean
    the pin was skipped or refused), and ``scaling_note`` is a non-empty
    honesty annotation whenever the host cannot support a speedup claim
    (``cpu_count == 1``).
    """
    engine, train_features, train_labels, queries = _build_engine(
        dimension, num_features, num_classes, num_samples, seed
    )
    reference_scores = engine.decision_scores(queries)

    def run_batches(top_k):
        for start in range(0, num_samples, batch_size):
            top_k(queries[start : start + batch_size], k=1)

    rates: Dict[str, float] = {
        "single-process": _throughput(lambda: run_batches(engine.top_k), num_samples)
    }
    parity: Dict[str, bool] = {"single-process": True}
    pin_maps: Dict[str, object] = {}
    transport_totals: Dict[str, Dict[str, int]] = {}

    for transport in transports:
        for count in worker_counts:
            key = f"{transport}:workers-{count}"
            with ClusterDispatcher(
                engine,
                num_workers=count,
                transport=transport,
                cpu_affinity=cpu_affinity,
                name=key,
            ) as dispatcher:
                parity[key] = bool(
                    np.array_equal(
                        dispatcher.decision_scores(queries), reference_scores
                    )
                )
                rates[key] = _throughput(
                    lambda: run_batches(dispatcher.top_k), num_samples
                )
                pin_maps[key] = dispatcher.info()["pin_map"]
                transport_totals[key] = dispatcher.transport_stats()["totals"]

    # Ensemble max-over-bank merge parity at benchmark dimension, on every
    # transport (the merge happens worker-side; each carriage must preserve
    # it bit for bit).
    ensemble_encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed + 1
    )
    ensemble_pipeline = HDCPipeline(
        ensemble_encoder,
        MultiModelHDC(
            models_per_class=ensemble_models_per_class, iterations=1, seed=seed
        ),
    )
    ensemble_pipeline.fit(train_features, train_labels)
    ensemble_engine = PackedInferenceEngine(ensemble_pipeline, name="scaling-ens")
    ensemble_queries = queries[: min(64, num_samples)]
    ensemble_expected = ensemble_engine.decision_scores(ensemble_queries)
    for transport in transports:
        with ClusterDispatcher(
            ensemble_engine, num_workers=2, transport=transport
        ) as dispatcher:
            parity[f"ensemble:{transport}-workers-2"] = bool(
                np.array_equal(
                    dispatcher.decision_scores(ensemble_queries), ensemble_expected
                )
            )

    cpu_count = os.cpu_count() or 1
    baseline_rate = rates["single-process"]
    return {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_classes": num_classes,
            "num_samples": num_samples,
            "batch_size": batch_size,
            "worker_counts": list(worker_counts),
            "transports": list(transports),
            "cpu_affinity": cpu_affinity,
            "ensemble_models_per_class": ensemble_models_per_class,
        },
        "cpu_count": cpu_count,
        "available_cpus": available_cpus(),
        "pin_maps": pin_maps,
        "rates": rates,
        "speedups": {mode: rate / baseline_rate for mode, rate in rates.items()},
        "parity": parity,
        "transport_totals": transport_totals,
        "scaling_note": (
            "cpu_count == 1: no parallelism is available, so worker rates "
            "measure dispatch overhead only and no speedup is claimed"
            if cpu_count < 2
            else ""
        ),
    }


def format_scaling_rows(result: Dict[str, object]):
    """Rows ``[mode, samples/s, vs single-process, parity]`` for ``format_table``."""
    rates: Dict[str, float] = result["rates"]  # type: ignore[assignment]
    speedups: Dict[str, float] = result["speedups"]  # type: ignore[assignment]
    parity: Dict[str, bool] = result["parity"]  # type: ignore[assignment]
    single_cpu = int(result.get("cpu_count", 1)) < 2
    rows = []
    for mode in rates:
        if mode == "single-process" or not single_cpu:
            speedup = f"{speedups[mode]:.2f}x"
        else:
            # A "speedup" measured on one CPU is dispatch overhead, not
            # scaling — annotate instead of printing a misleading ratio.
            speedup = f"({speedups[mode]:.2f}x, 1 cpu: overhead only)"
        rows.append(
            [
                mode,
                f"{rates[mode]:.0f}",
                speedup,
                "exact" if parity.get(mode) else "MISMATCH",
            ]
        )
    return rows


def format_microbench_rows(result: Dict[str, object]):
    """Rows for the per-dispatch transport cost table."""
    costs: Dict[str, Dict[str, float]] = result["transports"]  # type: ignore
    reduction: Dict[str, float] = result["pipe_byte_reduction"]  # type: ignore
    rows = []
    for transport, cost in costs.items():
        rows.append(
            [
                transport,
                f"{cost['wall_seconds_per_dispatch'] * 1e6:.0f}",
                f"{cost['pipe_bytes_per_dispatch']:.0f}",
                f"{cost['shm_bytes_per_dispatch']:.0f}",
                f"{cost['socket_bytes_per_dispatch']:.0f}",
                f"{cost['frames_per_dispatch']:.1f}",
                f"{reduction[transport]:.1f}x"
                if reduction[transport] is not None
                else "no pipe bytes",
            ]
        )
    return rows


__all__ = [
    "format_microbench_rows",
    "format_scaling_rows",
    "run_cluster_scaling_benchmark",
    "run_dispatch_microbench",
]
