"""``ClusterDispatcher``: shard micro-batches across worker processes.

The dispatcher is the parent-side half of the multiprocess serving tier.  It
presents the same inference surface as a
:class:`~repro.serve.engine.PackedInferenceEngine` (``top_k`` /
``decision_scores`` / ``predict``), which is exactly what the
:class:`~repro.serve.batching.BatchScheduler` calls — so the existing
micro-batcher feeds coalesced batches straight into the cluster with no
changes of its own.  Per batch it:

1. validates and — when the engine has a fused accumulator — encodes + packs
   the query rows *once*, so what crosses the process boundary is the packed
   ``uint64`` words (one ``ceil(D/64)``-word row per sample), not float
   features re-encoded per worker;
2. splits the rows into contiguous shards, one per worker (a batch smaller
   than the pool goes to the next worker round-robin), and scatters them
   over per-worker transport endpoints — pipe, shared-memory ring, or TCP
   socket, chosen at construction (see :mod:`repro.cluster.transport`);
3. concatenates the per-shard results in shard order — row sharding keeps
   the merged output *bit-identical* to a single-process engine call,
   including the ensemble's max-over-bank reduction, which each worker
   applies to its own rows before replying.

Failure semantics are transport-independent: a request-level exception
inside a worker is re-raised in the caller with its original type preserved
for ``ValueError`` so the HTTP layer still answers 400 (feature-width errors
on the packed path raise parent-side, before any dispatch).  A worker
*crash* is detected as a broken transport or silent process death; a *hang*
(alive but unresponsive past ``request_timeout``) is detected by the
receive watchdog and the wedged process is forcibly retired (SIGTERM, then
SIGKILL).  Either way the dispatcher retires the slot (infallible, so every
other worker's pending reply is still drained and no channel ever
desynchronises) and **retries the failed shards exactly once** on the lazily
respawned pool — only a second consecutive failure surfaces
:class:`~repro.cluster.errors.WorkerCrashedError` (HTTP 503).  Torn reply
frames (``TransportError``) and transient worker faults
(:class:`~repro.cluster.errors.WorkerFaultError`) are retried the same way
without retiring the worker, since the channel realigns on the next
request.

Requests may carry an absolute monotonic *deadline*: it rides the op
control frame so workers refuse to score expired shards, the receive
watchdog abandons (and retires) a worker still holding a shard when the
deadline passes, and the whole batch raises
:class:`~repro.cluster.errors.DeadlineExceededError` (HTTP 504) instead of
scoring dead work.  Deterministic chaos testing of all of these paths is
provided by :mod:`repro.faults` — pass ``fault_plan=`` (or export
``REPRO_FAULTS``) and the plan rides the spawn arguments into every worker.

Workers default to the ``fork`` start method when the platform offers it
(instant startup, no spec pickling); set ``REPRO_CLUSTER_START_METHOD`` to
``spawn`` or ``forkserver`` to override.  With parent-side packing the
``sgn(0)`` tie-break RNG is consumed exactly once in the parent, so even
``tie_break="random"`` encoders shard deterministically; engines without a
fused accumulator fall back to shipping float rows, where per-worker RNG
copies may resolve ties differently than a single process.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.affinity import build_pin_map, pin_process
from repro.cluster.errors import (
    BankEvictedError,
    BankUnavailableError,
    DeadlineExceededError,
    DispatcherClosedError,
    WorkerCrashedError,
    WorkerFaultError,
    WorkerStartupError,
)
from repro.cluster.shared import SharedModelStore, make_worker_spec
from repro.cluster.transport import (
    ParentEndpoint,
    Transport,
    TransportCounters,
    TransportError,
    make_transport,
)
from repro.cluster.worker import worker_main
from repro.faults import PARENT_INDEX, PARENT_KINDS, FaultPlan
from repro.obs.shm_metrics import (
    WorkerStatsSlab,
    merge_worker_stats,
    stats_summary,
    worker_summary,
)
from repro.obs.trace import NULL_SPAN, Tracer, get_tracer

_ROW_BYTES = 8  # labels/scores elements and packed words are 8-byte lanes

#: Process-wide guard around the fork-critical window of a worker spawn.
#: With the ``fork`` start method, two dispatchers spawning concurrently
#: from different threads can fork a child while the *other* spawn holds a
#: multiprocessing-internal lock; the child inherits the held lock and
#: deadlocks in its bootstrap, silently eating the whole startup timeout.
#: Serialising pipe creation + ``Process.start()`` (not the ready-wait,
#: which may legitimately take a while) keeps the fork moment clean.
_SPAWN_LOCK = threading.Lock()

try:  # posix-only module; the ``fork`` start method implies it exists
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover - non-posix platforms
    _resource_tracker = None  # type: ignore[assignment]


def _reset_tracker_lock_after_fork() -> None:
    """Give the fork-inherited resource tracker a fresh, unheld lock.

    ``multiprocessing.resource_tracker`` guards its pipe with an ordinary
    ``threading`` lock and never re-initialises it after a fork.  In a busy
    multi-tenant parent *any* thread — a shm publish, an eviction unlink —
    may hold that lock at the fork moment; the child then deadlocks on its
    very first shared-memory attach (``register`` → ``ensure_running``),
    never reaches the ready handshake, and silently eats the whole startup
    timeout while ``is_alive()`` stays true.  ``_SPAWN_LOCK`` cannot help:
    the offending threads are not spawning workers.  A fresh lock in the
    child is safe because the child only ever *sends* on the inherited
    tracker pipe.
    """
    tracker = getattr(_resource_tracker, "_resource_tracker", None)
    lock = getattr(tracker, "_lock", None)
    if lock is not None:
        tracker._lock = type(lock)()


if _resource_tracker is not None and hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_tracker_lock_after_fork)


def _default_start_method() -> str:
    method = os.environ.get("REPRO_CLUSTER_START_METHOD")
    if method:
        return method
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class _Worker:
    __slots__ = ("process", "connection", "endpoint", "generation")

    def __init__(
        self, process, connection, endpoint: ParentEndpoint, generation: int
    ):
        self.process = process
        self.connection = connection
        self.endpoint = endpoint
        # Generation of the bank segment this worker has attached.  Request
        # headers only carry a (re-)attach handle when the leased bank has
        # moved past this, so steady-state traffic pays zero header bytes
        # for the fleet-paging protocol.
        self.generation = generation


class _WorkerCrash(Exception):
    """Internal marker: the transport broke or the process died mid-request."""


class _WorkerHang(_WorkerCrash):
    """Internal marker: the process is *alive* but unresponsive.

    Raised by the receive watchdog when ``request_timeout`` elapses — or,
    with ``deadline_hit=True``, when the request's own deadline expires
    while the worker still holds the shard.  Distinct from a plain crash so
    the dispatcher can count hangs separately and map the deadline case to
    504 instead of 503; either way the wedged process must be forcibly
    retired, because ``is_alive()`` would otherwise hand the same stuck
    worker to every future request.
    """

    def __init__(self, deadline_hit: bool = False):
        super().__init__()
        self.deadline_hit = deadline_hit


class ClusterDispatcher:
    """Shard inference batches from one packed engine across processes.

    Parameters
    ----------
    engine:
        A packed-mode :class:`~repro.serve.engine.PackedInferenceEngine`;
        its resident bank is published to shared memory and the engine
        itself remains untouched (the parent can keep serving on it — the
        dispatcher borrows only its validator and fused encoder for the
        one-time parent-side pack).
    num_workers:
        Worker process count (>= 1).
    store:
        Optional shared :class:`SharedModelStore`.  When omitted the
        dispatcher owns a private store and closes it on :meth:`close`.
    name:
        Bank key in the store; defaults to the engine name.  Give versioned
        keys (``"model@v3"``) when hot-swapping so old and new banks coexist.
    transport:
        ``"pipe"`` (default), ``"shm"``, ``"tcp"``, or a pre-configured
        :class:`~repro.cluster.transport.Transport` (tests use the latter to
        shrink initial slab sizes and force growth).  See
        :mod:`repro.cluster.transport` for the three data planes.
    cpu_affinity:
        ``None`` (no pinning, the default), ``"auto"`` (round-robin workers
        over the available CPUs via ``sched_setaffinity``), or an explicit
        CPU-id sequence to round-robin over.  Pinning is best-effort and
        recorded per worker in :meth:`info` so benchmark results stay honest.
    start_method / startup_timeout / request_timeout:
        Process start method override and the two failure deadlines
        (seconds) for worker startup and a single sharded request; on
        ``request_timeout`` the hung-but-alive worker is terminated and its
        shard retried once on the respawned pool.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` shipped into every worker
        for deterministic chaos testing; defaults to
        :meth:`FaultPlan.from_env` (the ``REPRO_FAULTS`` variable), i.e.
        no faults unless explicitly requested.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When the calling thread
        has a sampled span open, each batch gets a ``dispatch`` span whose
        context rides the worker transports; workers reply with finished
        ``worker:score`` span records that are stitched into the parent
        trace here.  Defaults to the process-wide tracer.
    metrics:
        Optional :class:`~repro.serve.metrics.ModelMetrics` receiving
        ``dispatch`` / ``merge`` stage timings.
    """

    def __init__(
        self,
        engine,
        num_workers: int = 2,
        store: Optional[SharedModelStore] = None,
        name: Optional[str] = None,
        transport: Union[str, Transport] = "pipe",
        cpu_affinity: Union[None, str, Sequence[int]] = None,
        start_method: Optional[str] = None,
        startup_timeout: float = 60.0,
        request_timeout: float = 60.0,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if engine.packed_bank is None:
            raise ValueError(
                "cluster serving requires the packed scoring path; "
                f"engine {engine.name!r} compiled in {engine.mode!r} mode"
            )
        self.num_workers = int(num_workers)
        self.name = str(name or engine.name)
        self.num_classes = int(engine.num_classes)
        self.dimension = int(engine.dimension)
        self.startup_timeout = float(startup_timeout)
        self.request_timeout = float(request_timeout)
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        # Parent-side chaos cursor: the eviction-targeted kinds fire here,
        # once per dispatch, under a pseudo worker index so their schedule is
        # seed-stable and disjoint from every real worker's.
        self._parent_injector = (
            None
            if self._fault_plan is None
            else self._fault_plan.injector(PARENT_INDEX, kinds=PARENT_KINDS)
        )
        self._transport = make_transport(transport)
        self.transport = self._transport.name
        self.cpu_count = os.cpu_count() or 1
        if cpu_affinity is None:
            self._pin_map: Dict[int, int] = {}
        elif cpu_affinity == "auto":
            self._pin_map = build_pin_map(self.num_workers)
        else:
            self._pin_map = build_pin_map(self.num_workers, cpus=cpu_affinity)
        self._pinned: Dict[int, Optional[int]] = {}
        self._context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        # The engine stays resident parent-side: its validator and fused
        # encoder turn each batch into packed words exactly once before the
        # scatter, so workers receive 1-bit-per-dimension words instead of
        # 64-bit float rows and skip re-encoding entirely.
        self._engine = engine
        self._ship_packed = (
            engine.mode == "packed" and getattr(engine, "_accumulator", None) is not None
        )
        self._owns_store = store is None
        self._store = store if store is not None else SharedModelStore()
        self._bank_key = self.name
        handle = self._store.publish(self._bank_key, engine.packed_bank)
        try:
            self._spec = make_worker_spec(engine, handle)
        except BaseException:
            self._store.release(self._bank_key)
            if self._owns_store:
                self._store.close()
            raise
        self._tracer = tracer if tracer is not None else get_tracer()
        self._metrics = metrics
        self._lock = threading.Lock()
        self._closed = False
        self._round_robin = 0
        self.respawns = 0
        self.hangs = 0
        self.shard_retries = 0
        self.transport_errors = 0
        self.worker_faults = 0
        self.deadline_skips = 0
        self.bank_restores = 0
        self.bank_faults = 0
        self._started_monotonic = time.monotonic()
        # One stats slab per worker *slot*, owned by the dispatcher for its
        # whole lifetime: respawned workers inherit their slot's slab, so the
        # fleet counters survive crashes instead of resetting mid-soak.
        self._slabs: List[WorkerStatsSlab] = []
        self._workers: List[Optional[_Worker]] = [None] * self.num_workers
        try:
            for _ in range(self.num_workers):
                self._slabs.append(WorkerStatsSlab.create())
            # Pin the bank while the initial pool attaches.  Without a lease,
            # a concurrent publish under the fleet residency cap can pick the
            # brand-new segment as its LRU victim between our publish above
            # and the workers' attach, and every worker then fails startup
            # with FileNotFoundError.  The lease also restores the bank (and
            # re-specs the handle) if that race already happened.
            startup_lease = self._acquire_bank_lease()
            try:
                for index in range(self.num_workers):
                    self._workers[index] = self._spawn(index)
            finally:
                startup_lease.release()
        except BaseException:
            self.close()
            raise

    # -------------------------------------------------------------- inference
    #: Callers (the batch scheduler, the HTTP layer) check this attribute to
    #: know they may pass ``deadline=`` — plain engines don't accept it.
    accepts_deadline = True

    def top_k(
        self, features: np.ndarray, k: int = 5, deadline: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` best classes per sample, merged across worker shards."""
        results = self._scatter_gather(("top_k", int(k)), features, deadline=deadline)
        merge_started = time.perf_counter()
        with self._child_span("merge", attrs={"shards": len(results)}):
            labels = np.concatenate([labels for labels, _ in results], axis=0)
            scores = np.concatenate([scores for _, scores in results], axis=0)
        if self._metrics is not None:
            self._metrics.record_stage("merge", time.perf_counter() - merge_started)
        return labels, scores

    def decision_scores(
        self, features: np.ndarray, deadline: Optional[float] = None
    ) -> np.ndarray:
        """``(n, K)`` class scores, merged across worker shards."""
        results = self._scatter_gather(("scores",), features, deadline=deadline)
        merge_started = time.perf_counter()
        with self._child_span("merge", attrs={"shards": len(results)}):
            merged = np.concatenate(results, axis=0)
        if self._metrics is not None:
            self._metrics.record_stage("merge", time.perf_counter() - merge_started)
        return merged

    def predict(
        self, features: np.ndarray, deadline: Optional[float] = None
    ) -> np.ndarray:
        """Predict integer class labels for a batch of raw feature rows."""
        return np.argmax(self.decision_scores(features, deadline=deadline), axis=1)

    def ping(self) -> List[int]:
        """Round-trip every worker; returns their PIDs (health check)."""
        with self._lock:
            self._check_open()
            pids = []
            for index in range(self.num_workers):
                try:
                    worker = self._ensure_worker(index)
                    worker.endpoint.send_request({"op": "ping"}, [])
                    pids.append(self._receive(worker)[0])
                except (_WorkerCrash, BrokenPipeError, EOFError, OSError):
                    self._retire_worker(index)
                    raise WorkerCrashedError(
                        f"worker {index} of {self.name!r} died during ping "
                        "(respawning on next use)"
                    )
            return pids

    def poison_worker(self, index: int = 0) -> None:
        """Arm worker *index* to die on its next request (chaos-testing hook).

        The armed worker acknowledges, then hard-exits when the next batch
        shard reaches it — deterministically exercising the mid-batch crash
        path (:class:`WorkerCrashedError` + respawn) that a random ``kill``
        can only hit by lucky timing.  The arming frame rides the active
        transport, so the drill covers the shm/tcp crash paths too.
        """
        with self._lock:
            self._check_open()
            worker = self._ensure_worker(index)
            try:
                worker.endpoint.send_request({"op": "poison"}, [])
                self._receive(worker)
            except (_WorkerCrash, BrokenPipeError, EOFError, OSError):
                self._retire_worker(index)
                raise WorkerCrashedError(
                    f"worker {index} of {self.name!r} died while being poisoned"
                )

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the workers and release the shared bank (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            if worker is None:
                continue
            try:
                worker.endpoint.send_request({"op": "stop"}, [])
            except (BrokenPipeError, EOFError, OSError):
                pass
            worker.endpoint.close()
            worker.connection.close()
        for worker in workers:
            if worker is None:
                continue
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        # Slabs go away only after every worker has exited (workers hold
        # attachments; the owner's close also unlinks the segment).
        slabs, self._slabs = self._slabs, []
        for slab in slabs:
            try:
                slab.close()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        try:
            self._store.release(self._bank_key)
        except KeyError:  # pragma: no cover - store closed externally
            pass
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "ClusterDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def info(self) -> dict:
        """JSON-ready health/layout description of the worker pool."""
        with self._lock:
            return {
                "name": self.name,
                "num_workers": self.num_workers,
                "respawns": self.respawns,
                "request_timeout": self.request_timeout,
                "failures": {
                    "hangs": self.hangs,
                    "shard_retries": self.shard_retries,
                    "transport_errors": self.transport_errors,
                    "worker_faults": self.worker_faults,
                    "deadline_skips": self.deadline_skips,
                    "bank_faults": self.bank_faults,
                },
                "bank_restores": self.bank_restores,
                "fault_plan": (
                    self._fault_plan.describe() if self._fault_plan else None
                ),
                "start_method": self._context.get_start_method(),
                "transport": self.transport,
                "ships_packed_queries": self._ship_packed,
                "cpu_count": self.cpu_count,
                "pin_map": [
                    self._pinned.get(index, self._pin_map.get(index))
                    for index in range(self.num_workers)
                ]
                if self._pin_map
                else None,
                "shared_bank_bytes": self._spec.bank_handle.nbytes,
                "worker_pids": [
                    worker.process.pid
                    for worker in self._workers
                    if worker is not None and worker.process.is_alive()
                ],
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "workers": self.fleet_stats(),
                "transport_stats": self.transport_stats(),
            }

    def fleet_stats(self) -> dict:
        """Per-worker counters from the shared-memory slabs, plus the merged
        fleet view (utilisation, scoring-latency percentiles).

        Reads are lock-free — each slab has a single writer (its worker) and
        this is the single reader — so polling ``/v1/metrics`` never touches
        the request path.
        """
        snapshots = [slab.read() for slab in self._slabs]
        merged = merge_worker_stats(snapshots)
        uptime = time.monotonic() - self._started_monotonic
        return {
            # Per-worker rows are the breakdown; the merged-sketch fleet
            # summary is the headline (true pooled percentiles).
            "per_worker": [worker_summary(entry) for entry in snapshots],
            "fleet": stats_summary(merged, uptime_seconds=uptime),
        }

    def transport_stats(self) -> dict:
        """Per-worker transport accounting (bytes by carriage, frame counts,
        slab occupancy) plus fleet totals — the raw numbers behind the
        ``bytes_avoided`` / ring-occupancy series in ``/v1/metrics``."""
        per_worker: List[Optional[dict]] = []
        totals = TransportCounters().snapshot()
        for worker in self._workers:
            if worker is None:
                per_worker.append(None)
                continue
            stats = worker.endpoint.stats()
            per_worker.append(stats)
            for key in totals:
                value = stats.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
        return {
            "transport": self.transport,
            "per_worker": per_worker,
            "totals": totals,
        }

    # -------------------------------------------------------------- internals
    def _check_open(self) -> None:
        if self._closed:
            raise DispatcherClosedError("ClusterDispatcher is closed")

    def _restore_bank(self, slow: bool = False):
        """Bring an evicted bank back from the parent engine (cold restore).

        The parent engine keeps the packed words resident, so a restore is a
        copy into a fresh segment — no disk load.  The worker spec is updated
        in place so respawned workers attach the current generation.
        """
        if slow and self._fault_plan is not None:
            time.sleep(self._fault_plan.slow_seconds)
        handle = self._store.restore(self._bank_key, self._engine.packed_bank)
        if handle.generation != self._spec.bank_handle.generation:
            self.bank_restores += 1
            self._spec.bank_handle = handle
        return handle

    def _acquire_bank_lease(self, slow: bool = False):
        """Pin the bank for one dispatch, cold-restoring it if paged out."""
        for _ in range(3):
            try:
                return self._store.lease(self._bank_key)
            except BankEvictedError:
                self._restore_bank(slow=slow)
                slow = False  # the injected slow cold-load sleeps once
        return self._store.lease(self._bank_key)

    def _refresh_bank_lease(self, lease):
        """Re-pin after a bank-stale retry signal (segment may be gone)."""
        lease.release()
        return self._acquire_bank_lease()

    def _child_span(self, name: str, attrs=None):
        """A recording span only when the calling thread is already inside a
        sampled trace; the shared null span otherwise.

        Dispatcher stages are never trace *roots* — gating on the ambient
        context keeps unsampled requests (and direct engine-style use) from
        minting orphan single-span traces.
        """
        if self._tracer.current_context() is None:
            return NULL_SPAN
        return self._tracer.start_span(name, attrs=attrs)

    def _spawn(self, index: int) -> _Worker:
        with _SPAWN_LOCK:
            if _resource_tracker is not None:
                # Start the resource tracker (if needed) from the parent so
                # a forked child only ever writes to the inherited pipe and
                # never has to launch a tracker of its own mid-bootstrap.
                _resource_tracker.ensure_running()
            parent_connection, child_connection = self._context.Pipe(duplex=True)
            endpoint = self._transport.create_endpoint(parent_connection)
            # The child attaches whatever handle the spec carries at fork
            # time; remember its generation so request headers can skip the
            # re-attach handle while the worker is already current.
            spawn_generation = self._spec.bank_handle.generation
            process = None
            try:
                process = self._context.Process(
                    target=worker_main,
                    args=(
                        self._spec,
                        child_connection,
                        self._slabs[index].name,
                        index,
                        endpoint.worker_spec(),
                        self._fault_plan,
                    ),
                    name=f"repro-cluster-{self.name}-{index}",
                    daemon=True,
                )
                process.start()
            except BaseException:
                endpoint.close()
                parent_connection.close()
                child_connection.close()
                raise
        try:
            child_connection.close()
            deadline = time.monotonic() + self.startup_timeout
            # TCP endpoints accept the worker's connection here; pipe/shm
            # endpoints have nothing to do.  Either way the ready handshake
            # below stays a plain-pipe exchange that strictly precedes any
            # transport frame.
            endpoint.bind(process, deadline)
            while not parent_connection.poll(0.05):
                if not process.is_alive() or time.monotonic() > deadline:
                    raise WorkerStartupError(
                        f"worker for {self.name!r} failed to start "
                        f"(alive={process.is_alive()})"
                    )
            try:
                reply = parent_connection.recv()
            except EOFError:
                raise WorkerStartupError(
                    f"worker for {self.name!r} died during startup"
                )
            if reply[0] != "ready":
                process.join(timeout=1.0)
                raise WorkerStartupError(
                    f"worker for {self.name!r} failed to build its engine: "
                    f"{reply[1]}"
                )
        except BaseException:
            endpoint.close()
            parent_connection.close()
            if process is not None and process.is_alive():
                process.terminate()
            raise
        cpu = self._pin_map.get(index)
        if cpu is not None:
            self._pinned[index] = cpu if pin_process(process.pid, cpu) else None
        return _Worker(process, parent_connection, endpoint, spawn_generation)

    def _ensure_worker(self, index: int) -> _Worker:
        """The live worker at *index*, respawning a retired/dead one.

        May raise :class:`WorkerStartupError`; callers that are mid-batch
        catch it and keep draining the other channels (retiring is
        infallible, spawning is not — so death is recorded eagerly via
        :meth:`_retire_worker` and the replacement is spawned lazily here).
        """
        worker = self._workers[index]
        if worker is not None and worker.process.is_alive():
            return worker
        if worker is not None:
            self._retire_worker(index)
        self._workers[index] = self._spawn(index)
        self.respawns += 1
        return self._workers[index]

    def _retire_worker(self, index: int) -> None:
        """Tear down a dead/hung/poisoned worker slot; never raises.

        Escalates SIGTERM → SIGKILL: a hung worker may be wedged somewhere
        it cannot run signal handlers, and leaving it alive would leak the
        process *and* let ``is_alive()`` hand the same stuck worker to every
        future request (the hung-worker leak this watchdog exists to fix).
        """
        worker = self._workers[index]
        if worker is None:
            return
        self._workers[index] = None
        worker.endpoint.close()
        worker.connection.close()
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - SIGTERM ignored
                worker.process.kill()
        worker.process.join(timeout=5.0)

    def _receive(self, worker: _Worker, deadline: Optional[float] = None):
        timeout_at = time.monotonic() + self.request_timeout
        while not worker.endpoint.poll(0.05):
            now = time.monotonic()
            if not worker.process.is_alive():
                raise _WorkerCrash()
            if deadline is not None and now >= deadline:
                raise _WorkerHang(deadline_hit=True)
            if now >= timeout_at:
                raise _WorkerHang(deadline_hit=False)
        try:
            reply = worker.endpoint.recv_reply()
        except (EOFError, OSError):
            raise _WorkerCrash()
        if reply[0] == "error":
            _, kind, message = reply
            # Re-raise with the worker's original type where the serving
            # layer maps it to a distinct status / retry decision.
            if kind == "ValueError":
                raise ValueError(message)
            if kind == "DeadlineExceededError":
                raise DeadlineExceededError(message)
            if kind == "TransportError":
                raise TransportError(message)
            if kind == "InjectedFaultError":
                raise WorkerFaultError(message)
            if kind == "BankUnavailableError":
                raise BankUnavailableError(message)
            raise RuntimeError(f"worker error ({kind}): {message}")
        # ``("ok", scalar, arrays, spans)`` — scalar carries ping/poison
        # results, arrays carry scoring results (1 array = scores, 2 = the
        # ``(labels, scores)`` top-k pair), spans is the worker's list of
        # finished span records (empty unless the request carried a trace
        # context).
        _, scalar, arrays, spans = reply
        if not arrays:
            return scalar, spans
        if len(arrays) == 1:
            return arrays[0], spans
        return tuple(arrays), spans

    def _reply_nbytes_hint(self, op: tuple, rows: int) -> int:
        """Upper-bound reply payload size, so the shm transport pre-grows
        each worker's response slab instead of round-tripping a growth."""
        if op[0] == "top_k":
            k = min(int(op[1]), self.num_classes)
            return rows * k * 2 * _ROW_BYTES  # labels + scores
        return rows * self.num_classes * _ROW_BYTES

    def _run_shards(
        self,
        op: tuple,
        kind: str,
        ctx,
        shards: Sequence[np.ndarray],
        indices: Sequence[int],
        offset: int,
        deadline: Optional[float],
        results: list,
        state: dict,
    ) -> List[int]:
        """One scatter/drain round over the given shard indices.

        Fills ``results[shard_index]`` for every shard that scores and
        returns the indices that failed *retryably* — crash, hang, torn or
        dropped frame, transient worker fault.  Non-retryable failures land
        in *state* (``request_error`` / ``deadline_error`` / ``spawn_error``;
        ``retry_error`` remembers the last retryable exception so a
        double-failure re-raises something meaningful).

        Every successfully sent shard is awaited even after a failure — an
        unconsumed reply would desynchronise its channel and hand the NEXT
        batch this batch's results.  Nothing in the drain loop raises:
        crashes and hangs retire the slot (infallible; the replacement is
        spawned lazily), request-level errors consume their reply.
        """
        assignments = []
        retry: List[int] = []
        for shard_index in indices:
            index = (offset + shard_index) % self.num_workers
            shard = shards[shard_index]
            if deadline is not None and time.monotonic() >= deadline:
                state["deadline_error"] = state["deadline_error"] or (
                    DeadlineExceededError(
                        f"deadline expired before dispatch to worker {index} "
                        f"of {self.name!r}"
                    )
                )
                continue
            try:
                worker = self._ensure_worker(index)
            except WorkerStartupError as error:
                # A respawn may have failed because its bank segment was
                # yanked mid-churn; flag the bank stale so the retry round
                # re-pins (and if needed restores) it before respawning.
                state["spawn_error"] = state["spawn_error"] or error
                state["retry_error"] = None
                state["bank_stale"] = True
                retry.append(shard_index)
                continue
            bank = state.get("bank")
            if bank is not None and bank.generation == worker.generation:
                # The worker already holds this materialisation: omit the
                # handle so steady-state headers stay handle-free (the shm
                # control channel is byte-budgeted).
                bank = None
            header = {
                "op": op[0],
                "kind": kind,
                "ctx": ctx,
                "deadline": deadline,
                "bank": bank,
                "reply_nbytes_hint": self._reply_nbytes_hint(
                    op, int(shard.shape[0])
                ),
            }
            if op[0] == "top_k":
                header["k"] = int(op[1])
            try:
                worker.endpoint.send_request(header, [shard])
            except (BrokenPipeError, EOFError, OSError):
                self._retire_worker(index)
                state["retry_error"] = None
                retry.append(shard_index)
                continue
            assignments.append((shard_index, index, worker, bank))
        for shard_index, index, worker, sent_bank in assignments:
            try:
                payload, worker_spans = self._receive(worker, deadline)
            except _WorkerHang as hang:
                # Alive but unresponsive: forcibly retire so ``is_alive()``
                # can never hand this wedged process to a future request.
                self._retire_worker(index)
                if hang.deadline_hit:
                    state["deadline_error"] = state["deadline_error"] or (
                        DeadlineExceededError(
                            f"deadline expired while worker {index} of "
                            f"{self.name!r} held the shard"
                        )
                    )
                else:
                    self.hangs += 1
                    state["retry_error"] = None
                    retry.append(shard_index)
                continue
            except _WorkerCrash:
                self._retire_worker(index)
                state["retry_error"] = None
                retry.append(shard_index)
                continue
            except DeadlineExceededError as error:
                # The worker refused an already-expired shard; the reply was
                # consumed, the channel is aligned, the request is dead.
                self.deadline_skips += 1
                state["deadline_error"] = state["deadline_error"] or error
                continue
            except TransportError as error:
                # Torn/stale reply frame: the payload is untrusted but the
                # frame was consumed and the worker is alive — retry the
                # shard without retiring anything.
                self.transport_errors += 1
                state["retry_error"] = error
                retry.append(shard_index)
                continue
            except WorkerFaultError as error:
                self.worker_faults += 1
                state["retry_error"] = error
                retry.append(shard_index)
                continue
            except BankUnavailableError as error:
                # The worker lost the unlink-vs-attach race: the segment we
                # addressed vanished before it could map it.  The reply was
                # consumed and the worker is alive; retry after restoring
                # the bank to a fresh segment.
                self.bank_faults += 1
                state["retry_error"] = error
                state["bank_stale"] = True
                retry.append(shard_index)
                continue
            except (ValueError, RuntimeError) as error:
                state["request_error"] = state["request_error"] or error
                continue
            if sent_bank is not None:
                # A successful reply proves the worker followed the handle
                # and re-attached; later headers can drop it again.
                worker.generation = sent_bank.generation
            results[shard_index] = payload
            for record in worker_spans:
                self._tracer.emit_record(record)
        return retry

    def _scatter_gather(
        self, op: tuple, features: np.ndarray, deadline: Optional[float] = None
    ) -> list:
        """Send row shards of the batch to the pool; return per-shard results.

        Serialised under the dispatcher lock: concurrent callers (scheduler
        pool threads, direct 2-D requests) take turns, which keeps each
        transport channel a strict request/reply channel.  Shards that fail
        retryably are re-dispatched exactly once (to the respawned pool when
        the failure retired a worker) before any error surfaces.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        started = time.perf_counter()
        with self._lock, self._child_span(
            "dispatch", attrs={"op": op[0], "rows": int(features.shape[0])}
        ) as span:
            self._check_open()
            # Parent-side chaos: the eviction-targeted kinds page our own
            # bank out right here, so the lease acquisition below exercises
            # the cold-restore path mid-stream.  "unlink" force-unlinks even
            # under other dispatchers' leases; after the restore it yanks
            # the fresh segment too, racing the workers' attach.
            fault = (
                self._parent_injector.draw()
                if self._parent_injector is not None
                else None
            )
            if fault is not None:
                self._store.evict(self._bank_key, force=(fault == "unlink"))
            lease = self._acquire_bank_lease(slow=(fault == "slow_load"))
            try:
                if fault == "unlink":
                    self._store.evict(self._bank_key, force=True)
                if self._ship_packed:
                    # Validate + encode + pack exactly once, parent-side: a
                    # bad feature width raises here (same ValueError/400 as
                    # the engine), and every transport then carries 1-bit-
                    # per-dimension words instead of float rows.
                    validated = self._engine._validate(features)
                    rows = self._engine._encode_packed(validated).words
                    kind = "packed"
                else:
                    rows = features
                    kind = "dense"
                # The span context (None when unsampled) rides each request
                # header; workers reply with finished ``worker:score``
                # records that we stitch into the parent trace below — the
                # worker never touches the trace file, so there is exactly
                # one writer.
                ctx = span.context
                num_shards = max(1, min(self.num_workers, rows.shape[0]))
                offset = self._round_robin
                self._round_robin = (offset + num_shards) % self.num_workers
                shards = np.array_split(rows, num_shards, axis=0)
                span.set("shards", num_shards)
                span.set("kind", kind)
                results: list = [None] * num_shards
                state: dict = {
                    "spawn_error": None,
                    "request_error": None,
                    "deadline_error": None,
                    "retry_error": None,
                    "bank": lease.handle,
                    "bank_stale": False,
                }
                retry = self._run_shards(
                    op, kind, ctx, shards, range(num_shards), offset,
                    deadline, results, state,
                )
                if retry and state["deadline_error"] is None:
                    if deadline is not None and time.monotonic() >= deadline:
                        state["deadline_error"] = DeadlineExceededError(
                            f"deadline expired before shard retry on "
                            f"{self.name!r}"
                        )
                    else:
                        self.shard_retries += len(retry)
                        span.set("retried_shards", len(retry))
                        if state["bank_stale"]:
                            # The segment the first round addressed is gone
                            # (eviction churn won an unlink race); restore
                            # before the retry so the respawned/re-attaching
                            # workers find live words.
                            lease = self._refresh_bank_lease(lease)
                            state["bank"] = lease.handle
                            state["bank_stale"] = False
                        retry = self._run_shards(
                            op, kind, ctx, shards, retry, offset, deadline,
                            results, state,
                        )
                if state["deadline_error"] is not None:
                    raise state["deadline_error"]
                if retry:
                    error = state["retry_error"]
                    if error is not None:
                        raise error
                    raise WorkerCrashedError(
                        f"shard(s) {sorted(retry)} of {self.name!r} failed "
                        "twice (workers respawning on next use)"
                    ) from state["spawn_error"]
                if state["request_error"] is not None:
                    raise state["request_error"]
            finally:
                lease.release()
        if self._metrics is not None:
            self._metrics.record_stage("dispatch", time.perf_counter() - started)
        return results


__all__ = ["ClusterDispatcher"]
