"""Exception types for the multiprocess serving tier.

These live in their own dependency-free module so the HTTP front-end can map
them to status codes (``WorkerCrashedError`` → 503) without importing the
multiprocessing machinery — and without creating an import cycle between
``repro.serve`` and ``repro.cluster``.
"""

from __future__ import annotations


class ClusterError(RuntimeError):
    """Base class for multiprocess serving-tier failures."""


class WorkerCrashedError(ClusterError):
    """An inference worker process died while handling a request.

    The dispatcher respawns the worker before raising this, so the *next*
    request succeeds; the in-flight one is reported as a retryable failure
    (the HTTP layer answers 503).
    """


class WorkerStartupError(ClusterError):
    """A worker process failed to come up within the startup timeout."""


class DispatcherClosedError(ClusterError):
    """The dispatcher was closed while this request held a reference to it.

    Raised (instead of a bare ``RuntimeError``) so the serving layer can map
    a hot-swap race — the promoted version's dispatcher replaced this one
    mid-request — to a retryable 503 rather than an opaque 500.
    """


__all__ = [
    "ClusterError",
    "DispatcherClosedError",
    "WorkerCrashedError",
    "WorkerStartupError",
]
