"""Exception types for the multiprocess serving tier.

These live in their own dependency-free module so the HTTP front-end can map
them to status codes (``WorkerCrashedError`` → 503) without importing the
multiprocessing machinery — and without creating an import cycle between
``repro.serve`` and ``repro.cluster``.
"""

from __future__ import annotations


class ClusterError(RuntimeError):
    """Base class for multiprocess serving-tier failures."""


class WorkerCrashedError(ClusterError):
    """An inference worker process died while handling a request.

    The dispatcher respawns the worker before raising this, so the *next*
    request succeeds; the in-flight one is reported as a retryable failure
    (the HTTP layer answers 503).
    """


class WorkerStartupError(ClusterError):
    """A worker process failed to come up within the startup timeout."""


class DispatcherClosedError(ClusterError):
    """The dispatcher was closed while this request held a reference to it.

    Raised (instead of a bare ``RuntimeError``) so the serving layer can map
    a hot-swap race — the promoted version's dispatcher replaced this one
    mid-request — to a retryable 503 rather than an opaque 500.
    """


class WorkerFaultError(ClusterError):
    """A worker reported a transient request-level fault (retryable).

    Covers injected ``error``-reply faults from :mod:`repro.faults` and any
    future transient worker-side condition that should be retried on the
    pool before surfacing 503 — distinct from ``ValueError`` (the caller's
    fault, 400) and from a crash (the process is gone).
    """


class BankEvictedError(ClusterError):
    """The shared bank for this key was paged out under the residency cap.

    Raised by :meth:`SharedModelStore.lease` when the key is still published
    (a dispatcher holds a refcount) but its segment was evicted.  The caller
    recovers by calling :meth:`SharedModelStore.restore` with the packed
    words — a bank-level cold load — and leasing again.
    """


class BankUnavailableError(ClusterError):
    """A worker could not attach the shared bank a dispatch addressed.

    The unlink-vs-attach race: the segment named in the op header was
    unlinked between the parent's send and the worker's attach (eviction
    churn, or injected chaos).  Retryable — the dispatcher restores the bank
    to a fresh segment and re-runs the shard.
    """


class DeadlineExceededError(ClusterError):
    """The request's deadline expired before scoring completed.

    Deadlines are absolute ``time.monotonic()`` instants that ride the HTTP
    request into the op control frame; workers refuse to score expired
    shards and the dispatcher abandons shards whose deadline passes while a
    worker holds them.  The HTTP layer answers 504 — the work is dead, not
    retryable.
    """


__all__ = [
    "BankEvictedError",
    "BankUnavailableError",
    "ClusterError",
    "DeadlineExceededError",
    "DispatcherClosedError",
    "WorkerCrashedError",
    "WorkerFaultError",
    "WorkerStartupError",
]
