"""Shared-memory model residency for the multiprocess serving tier.

The packed inference bank — ``(K, ceil(D/64))`` words for shared-rule
classifiers, the flat ``(K * N, ceil(D/64))`` bank for the SearcHD-style
ensemble — is the only large artefact a serving worker needs, and it is
read-only after training.  :class:`SharedModelStore` therefore publishes it
once into a ``multiprocessing.shared_memory`` segment; every worker process
maps the *same physical pages* and wraps them in a zero-copy
:class:`~repro.kernels.packed.PackedHypervectors` view, so per-worker memory
grows by the encoder tables only, never by the model bank.

Four pieces compose the residency story:

* :class:`SharedModelStore` — parent-side publisher.  ``publish`` is
  refcounted per key (two dispatchers serving the same model version share
  one segment); ``release`` unlinks the segment when the last reference
  drops, and ``close`` unlinks everything that is not actively leased
  (``force=True`` overrides, for test teardown).  A ``max_resident`` cap
  turns the store into a fleet pager: publishing past the cap evicts the
  least-recently-used *unleased* segment, paging the bank out while its
  publisher's refcount survives — the publisher cold-restores it on the
  next dispatch via :meth:`SharedModelStore.restore`.
* :class:`BankLease` — a dispatch-scoped pin.  While a lease is held the
  segment is never unlinked: eviction and release defer until the last
  lease drops, so a scatter/gather round can never lose its words mid-air.
* :class:`SharedBankHandle` — the picklable address of a published bank
  (segment name + layout + generation), small enough to ride a pipe to a
  worker.  The generation is bumped on every (re-)materialisation, so a
  worker can detect that the segment it attached was superseded and
  re-attach instead of crashing.
* :func:`attach_bank` / :class:`AttachedBank` — worker-side mapping of a
  handle back into a read-only packed view.

:func:`make_worker_spec` bundles a handle with the *small* remaining engine
state (encoder tables, per-class hypervectors, ensemble shape) into a
:class:`WorkerModelSpec` from which :func:`build_worker_engine` reconstructs
a full :class:`~repro.serve.engine.PackedInferenceEngine` inside the worker —
scoring against the shared words via
:meth:`~repro.classifiers.base.HDCClassifierBase.adopt_packed_bank`.
"""

from __future__ import annotations

import copy
import logging
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.errors import BankEvictedError
from repro.io import FrozenClassifier, FrozenEnsembleClassifier
from repro.kernels.packed import PackedHypervectors

_WORD_BYTES = 8

_LOG = logging.getLogger("repro.cluster.shared")


@dataclass(frozen=True)
class SharedBankHandle:
    """Picklable address of a published packed bank: segment name + layout.

    ``generation`` identifies the materialisation: every time a key's words
    are (re-)published into a fresh segment the store bumps it, so a worker
    holding an older attachment can tell its mapping was superseded.
    """

    segment: str
    rows: int
    num_words: int
    dimension: int
    generation: int = 0

    @property
    def nbytes(self) -> int:
        return self.rows * self.num_words * _WORD_BYTES


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming cleanup ownership.

    Only the publishing :class:`SharedModelStore` may unlink a segment.  On
    Python 3.13+ ``track=False`` keeps the attaching process's resource
    tracker out of the picture; earlier versions (3.10–3.12) never register
    attachments in the first place, so the plain constructor is already
    ownership-free there.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg, and no attach tracking
        return shared_memory.SharedMemory(name=name)


class AttachedBank:
    """A worker-side, read-only, zero-copy view over a published bank."""

    def __init__(self, handle: SharedBankHandle):
        self.handle = handle
        self._segment = _attach_segment(handle.segment)
        words = np.ndarray(
            (handle.rows, handle.num_words),
            dtype=np.uint64,
            buffer=self._segment.buf,
        )
        words.flags.writeable = False
        self.packed = PackedHypervectors(words=words, dimension=handle.dimension)

    def close(self) -> None:
        """Unmap the segment (best effort: live NumPy views pin the buffer)."""
        self.packed = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the bank
            pass

    def __enter__(self) -> "AttachedBank":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_bank(handle: SharedBankHandle) -> AttachedBank:
    """Map a published bank into this process as a read-only packed view."""
    return AttachedBank(handle)


class _Published:
    """Store-internal state for one key.

    A key can outlive its segment: eviction under the residency cap unlinks
    the segment (``segment = handle = None``) while the publisher's refcount
    keeps the entry alive, so the publisher can :meth:`~SharedModelStore
    .restore` the words later.  ``pending_evict`` / ``pending_release``
    record deferred teardown that must wait for the last lease to drop.
    """

    __slots__ = (
        "segment",
        "handle",
        "refcount",
        "leases",
        "last_used",
        "pending_evict",
        "pending_release",
    )

    def __init__(self):
        self.segment: Optional[shared_memory.SharedMemory] = None
        self.handle: Optional[SharedBankHandle] = None
        self.refcount = 0
        self.leases = 0
        self.last_used = 0
        self.pending_evict = False
        self.pending_release = False

    @property
    def resident(self) -> bool:
        return self.segment is not None


class BankLease:
    """A dispatch-scoped pin on a resident segment.

    While a lease is held the segment is never unlinked: eviction and
    release targeting the key defer until the last lease drops.  Leases are
    parent-side bookkeeping only — they carry no buffer views, so dropping
    one never touches the mapping itself.
    """

    __slots__ = ("_store", "key", "handle", "_released")

    def __init__(self, store: "SharedModelStore", key: str, handle: SharedBankHandle):
        self._store = store
        self.key = key
        self.handle = handle
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._store._drop_lease(self.key)

    def __enter__(self) -> "BankLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SharedModelStore:
    """Refcounted registry of packed model banks published into shared memory.

    Thread-safe.  Keys are caller-chosen strings — the serving layer uses
    ``"<model>@v<version>"`` so hot-swapping a model version naturally
    publishes a fresh segment while the old one lives exactly as long as the
    dispatchers still sharding onto it.

    With ``max_resident`` set the store doubles as the fleet pager: at most
    that many segments are materialised at once, and publishing or restoring
    past the cap evicts the least-recently-used unleased segment.  An evicted
    key stays *published* (the refcount survives) but loses its segment;
    :meth:`lease` then raises :class:`BankEvictedError` and the publisher
    brings the words back with :meth:`restore`.
    """

    def __init__(
        self,
        max_resident: Optional[int] = None,
        evict_wait_seconds: float = 30.0,
    ):
        if max_resident is not None and max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._published: Dict[str, _Published] = {}
        self._closed = False
        self.max_resident = max_resident
        self.evict_wait_seconds = float(evict_wait_seconds)
        self._generation = 0
        self._clock = 0
        self._evictions = 0
        self._restores = 0
        self._peak_resident = 0

    # ------------------------------------------------------ locked internals
    def _touch_locked(self, entry: _Published) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def _resident_count_locked(self) -> int:
        return sum(1 for p in self._published.values() if p.resident)

    def _unlink_locked(self, entry: _Published) -> None:
        segment, entry.segment, entry.handle = entry.segment, None, None
        entry.pending_evict = False
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _evict_locked(self, key: str, entry: _Published) -> None:
        self._unlink_locked(entry)
        self._evictions += 1
        if entry.refcount <= 0:
            self._published.pop(key, None)
        self._space.notify_all()

    def _make_room_locked(self) -> None:
        """Evict LRU unleased segments until one more fits under the cap."""
        if self.max_resident is None:
            return
        deadline = time.monotonic() + self.evict_wait_seconds
        while self._resident_count_locked() >= self.max_resident:
            victims = [
                (entry.last_used, key)
                for key, entry in self._published.items()
                if entry.resident and entry.leases == 0
            ]
            if victims:
                _, victim_key = min(victims)
                self._evict_locked(victim_key, self._published[victim_key])
                continue
            # Every resident segment is pinned by an in-flight dispatch;
            # wait for a lease to drop rather than exceed the cap.
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"fleet residency cap {self.max_resident} reached and "
                    "every resident bank is leased"
                )
            self._space.wait(remaining)

    def _materialise_locked(
        self, key: str, entry: _Published, packed: PackedHypervectors
    ) -> SharedBankHandle:
        self._make_room_locked()
        words = np.ascontiguousarray(packed.words, dtype=np.uint64)
        segment = shared_memory.SharedMemory(create=True, size=max(1, words.nbytes))
        try:
            view = np.ndarray(words.shape, dtype=np.uint64, buffer=segment.buf)
            view[:] = words
            del view
            self._generation += 1
            handle = SharedBankHandle(
                segment=segment.name,
                rows=words.shape[0],
                num_words=words.shape[1],
                dimension=packed.dimension,
                generation=self._generation,
            )
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        entry.segment = segment
        entry.handle = handle
        entry.pending_evict = False
        self._touch_locked(entry)
        self._peak_resident = max(self._peak_resident, self._resident_count_locked())
        return handle

    def _restore_locked(
        self, key: str, entry: _Published, packed: PackedHypervectors
    ) -> SharedBankHandle:
        deadline = time.monotonic() + self.evict_wait_seconds
        while True:
            if entry.resident and not entry.pending_evict:
                return entry.handle  # raced: someone else restored it first
            if not entry.resident:
                handle = self._materialise_locked(key, entry, packed)
                self._restores += 1
                return handle
            # Draining: an eviction is deferred on outstanding leases.  Wait
            # for it to complete rather than materialise a second segment.
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"shared bank {key!r} is stuck draining")
            self._space.wait(remaining)

    def _drop_lease(self, key: str) -> None:
        with self._lock:
            entry = self._published.get(key)
            if entry is None:
                return
            entry.leases = max(0, entry.leases - 1)
            if entry.leases == 0:
                if entry.pending_evict and entry.resident:
                    self._evict_locked(key, entry)
                if entry.pending_release:
                    if entry.resident:
                        self._unlink_locked(entry)
                    self._published.pop(key, None)
            self._space.notify_all()

    # ------------------------------------------------------------- lifecycle
    def publish(self, key: str, packed: PackedHypervectors) -> SharedBankHandle:
        """Copy *packed* into a shared segment (or ref the existing one).

        Publishing an already-published key increments its refcount and
        returns the existing handle — the words are assumed immutable for a
        given key, which the versioned key discipline guarantees.  If the
        key was paged out, publishing re-materialises the segment (counted
        as a restore).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedModelStore is closed")
            entry = self._published.get(key)
            if entry is not None:
                entry.refcount += 1
                if entry.resident and not entry.pending_evict:
                    self._touch_locked(entry)
                    return entry.handle
                return self._restore_locked(key, entry, packed)
            entry = _Published()
            entry.refcount = 1
            self._published[key] = entry
            try:
                return self._materialise_locked(key, entry, packed)
            except BaseException:
                if not entry.resident and entry.refcount <= 1:
                    self._published.pop(key, None)
                raise

    def restore(self, key: str, packed: PackedHypervectors) -> SharedBankHandle:
        """Re-materialise an evicted key's words (a bank-level cold load).

        Only valid for a key that is still published — restore does not add
        a reference, it brings an existing publisher's words back after the
        pager unlinked them.  Returns the fresh handle (new generation).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedModelStore is closed")
            entry = self._published.get(key)
            if entry is None or entry.refcount <= 0:
                raise KeyError(f"unknown shared bank {key!r}")
            return self._restore_locked(key, entry, packed)

    def lease(self, key: str) -> BankLease:
        """Pin *key*'s segment for the duration of one dispatch.

        Raises :class:`KeyError` for a key that was never published and
        :class:`BankEvictedError` for one whose segment was paged out (or is
        draining towards eviction) — the caller should :meth:`restore` and
        lease again.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedModelStore is closed")
            entry = self._published.get(key)
            if entry is None:
                raise KeyError(f"unknown shared bank {key!r}")
            if not entry.resident or entry.pending_evict:
                raise BankEvictedError(f"shared bank {key!r} was paged out")
            entry.leases += 1
            self._touch_locked(entry)
            return BankLease(self, key, entry.handle)

    def evict(self, key: str, force: bool = False) -> bool:
        """Page out *key*'s segment, keeping the key published.

        Returns ``True`` if the segment was unlinked now.  With outstanding
        leases the eviction is deferred (``False``) until the last lease
        drops — unless ``force=True``, which unlinks immediately (chaos
        injection and test teardown only; attached mappings stay valid, but
        new attaches will fail).
        """
        with self._lock:
            entry = self._published.get(key)
            if entry is None or not entry.resident:
                return False
            if entry.leases > 0 and not force:
                entry.pending_evict = True
                return False
            self._evict_locked(key, entry)
            return True

    def release(self, key: str) -> bool:
        """Drop one reference; unlink the segment when the last one goes.

        Idempotent: releasing an unknown (or already fully released) key is
        a logged no-op, so teardown paths that race each other never raise.
        If the final release lands while a dispatch still holds a lease, the
        unlink is deferred until the lease drops.  Returns ``True`` when the
        key was fully torn down now.
        """
        with self._lock:
            entry = self._published.get(key)
            if entry is None:
                _LOG.warning("release of unknown shared bank %r ignored", key)
                return False
            entry.refcount -= 1
            if entry.refcount > 0:
                return False
            if entry.leases > 0:
                entry.pending_release = True
                _LOG.warning(
                    "deferring unlink of shared bank %r (%d leases outstanding)",
                    key,
                    entry.leases,
                )
                return False
            if entry.resident:
                self._unlink_locked(entry)
            self._published.pop(key, None)
            self._space.notify_all()
            return True

    def close(self, force: bool = False) -> None:
        """Unlink remaining segments and refuse further publishes.

        Segments pinned by outstanding leases are *deferred*, not yanked:
        they unlink when the last lease drops (the warning names them).
        ``force=True`` restores the old scorched-earth behaviour for test
        teardown — everything is unlinked immediately regardless of leases.
        """
        with self._lock:
            self._closed = True
            for key, entry in list(self._published.items()):
                if entry.leases > 0 and not force:
                    entry.pending_release = True
                    _LOG.warning(
                        "close(): deferring unlink of leased bank %r (%d leases)",
                        key,
                        entry.leases,
                    )
                    continue
                self._unlink_locked(entry)
                self._published.pop(key, None)
            self._space.notify_all()

    # --------------------------------------------------------------- queries
    def handle(self, key: str) -> SharedBankHandle:
        with self._lock:
            entry = self._published.get(key)
            if entry is None:
                raise KeyError(f"unknown shared bank {key!r}")
            if not entry.resident:
                raise BankEvictedError(f"shared bank {key!r} was paged out")
            return entry.handle

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._published)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._published

    def __len__(self) -> int:
        with self._lock:
            return len(self._published)

    @property
    def resident_bytes(self) -> int:
        """Total bytes of packed model storage currently materialised."""
        with self._lock:
            return sum(
                p.handle.nbytes for p in self._published.values() if p.resident
            )

    def stats(self) -> dict:
        """Fleet-pager counters for ``/v1/metrics`` and the loadgen report."""
        with self._lock:
            return {
                "resident_banks": self._resident_count_locked(),
                "published_keys": len(self._published),
                "leases": sum(p.leases for p in self._published.values()),
                "evictions": self._evictions,
                "restores": self._restores,
                "peak_resident_banks": self._peak_resident,
                "max_resident": self.max_resident,
                "resident_bytes": sum(
                    p.handle.nbytes for p in self._published.values() if p.resident
                ),
            }

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(force=True)


# ----------------------------------------------------------- worker rebuild
@dataclass
class WorkerModelSpec:
    """Everything a worker needs to rebuild a serving engine.

    Deliberately *excludes* the heavy packed bank — that is addressed by
    ``bank_handle`` and mapped zero-copy — so the spec stays cheap to ship
    even under the ``spawn`` start method.  ``ensemble_shape`` is the
    ``(K, N, D)`` of a SearcHD model bank, or ``None`` for shared-rule
    classifiers.
    """

    name: str
    encoder: object
    class_hypervectors: np.ndarray
    ensemble_shape: Optional[Tuple[int, int, int]]
    bank_handle: SharedBankHandle
    metadata: dict


def make_worker_spec(engine, bank_handle: SharedBankHandle) -> WorkerModelSpec:
    """Extract the small worker-side state from a parent-process engine.

    The encoder is shallow-copied with its compiled accumulator dropped (the
    fused LUT can run to megabytes and is rebuilt once per worker), so the
    parent's encoder keeps its compiled tables untouched.
    """
    if engine.mode != "packed":
        raise ValueError(
            "cluster serving requires the packed scoring path; "
            f"engine {engine.name!r} compiled in {engine.mode!r} mode"
        )
    encoder = copy.copy(engine.encoder)
    encoder._accumulator = None
    encoder._accumulator_budget = None
    bank = getattr(engine.classifier, "model_hypervectors_", None)
    return WorkerModelSpec(
        name=engine.name,
        encoder=encoder,
        class_hypervectors=engine.classifier.class_hypervectors_,
        ensemble_shape=tuple(bank.shape) if bank is not None else None,
        bank_handle=bank_handle,
        metadata=dict(engine.metadata),
    )


class _SharedBankEnsemble(FrozenEnsembleClassifier):
    """Worker-side ensemble carrier whose dense bank never left the parent.

    Its ``model_hypervectors_`` is a shape-only broadcast stub (the real
    words live in the shared segment), so the dense scoring path must be
    loudly unavailable rather than silently wrong.
    """

    def decision_scores(self, hypervectors):  # pragma: no cover - guard path
        raise RuntimeError(
            "the dense model bank is not resident in this worker; "
            "only packed scoring is available"
        )

    def _score_bank(self):  # pragma: no cover - guard path
        raise RuntimeError("the dense model bank is not resident in this worker")


def build_worker_engine(spec: WorkerModelSpec):
    """Reconstruct a ``PackedInferenceEngine`` over the shared bank.

    Returns ``(attached_bank, engine)``; the caller owns the attachment and
    must keep it alive for the engine's lifetime (the engine's resident
    words *are* the mapped segment).
    """
    from repro.classifiers.pipeline import HDCPipeline
    from repro.serve.engine import PackedInferenceEngine

    attached = attach_bank(spec.bank_handle)
    if spec.ensemble_shape is not None:
        num_classes, models_per_class, dimension = spec.ensemble_shape
        classifier = _SharedBankEnsemble(models_per_class=models_per_class)
        # Shape-only stand-in: packed scoring reads the bank's *shape* from
        # this attribute and its *words* from the shared segment, so the
        # dense (K, N, D) array never crosses the process boundary.
        classifier.model_hypervectors_ = np.broadcast_to(
            np.zeros(1, dtype=np.int8), (num_classes, models_per_class, dimension)
        )
    else:
        classifier = FrozenClassifier(tie_break=spec.encoder.tie_break)
    classifier.class_hypervectors_ = spec.class_hypervectors
    classifier.num_classes_ = int(spec.class_hypervectors.shape[0])

    pipeline = HDCPipeline(spec.encoder, classifier)
    pipeline._fitted = True
    engine = PackedInferenceEngine(
        pipeline,
        name=spec.name,
        mode="packed",
        metadata=spec.metadata,
        packed_bank=attached.packed,
    )
    return attached, engine


__all__ = [
    "AttachedBank",
    "BankLease",
    "SharedBankHandle",
    "SharedModelStore",
    "WorkerModelSpec",
    "attach_bank",
    "build_worker_engine",
    "make_worker_spec",
]
