"""Shared-memory model residency for the multiprocess serving tier.

The packed inference bank — ``(K, ceil(D/64))`` words for shared-rule
classifiers, the flat ``(K * N, ceil(D/64))`` bank for the SearcHD-style
ensemble — is the only large artefact a serving worker needs, and it is
read-only after training.  :class:`SharedModelStore` therefore publishes it
once into a ``multiprocessing.shared_memory`` segment; every worker process
maps the *same physical pages* and wraps them in a zero-copy
:class:`~repro.kernels.packed.PackedHypervectors` view, so per-worker memory
grows by the encoder tables only, never by the model bank.

Three pieces compose the residency story:

* :class:`SharedModelStore` — parent-side publisher.  ``publish`` is
  refcounted per key (two dispatchers serving the same model version share
  one segment); ``release`` unlinks the segment when the last reference
  drops, and ``close`` force-unlinks everything (test teardown, server
  shutdown).
* :class:`SharedBankHandle` — the picklable address of a published bank
  (segment name + layout), small enough to ride a pipe to a worker.
* :func:`attach_bank` / :class:`AttachedBank` — worker-side mapping of a
  handle back into a read-only packed view.

:func:`make_worker_spec` bundles a handle with the *small* remaining engine
state (encoder tables, per-class hypervectors, ensemble shape) into a
:class:`WorkerModelSpec` from which :func:`build_worker_engine` reconstructs
a full :class:`~repro.serve.engine.PackedInferenceEngine` inside the worker —
scoring against the shared words via
:meth:`~repro.classifiers.base.HDCClassifierBase.adopt_packed_bank`.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.io import FrozenClassifier, FrozenEnsembleClassifier
from repro.kernels.packed import PackedHypervectors

_WORD_BYTES = 8


@dataclass(frozen=True)
class SharedBankHandle:
    """Picklable address of a published packed bank: segment name + layout."""

    segment: str
    rows: int
    num_words: int
    dimension: int

    @property
    def nbytes(self) -> int:
        return self.rows * self.num_words * _WORD_BYTES


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming cleanup ownership.

    Only the publishing :class:`SharedModelStore` may unlink a segment.  On
    Python 3.13+ ``track=False`` keeps the attaching process's resource
    tracker out of the picture; earlier versions (3.10–3.12) never register
    attachments in the first place, so the plain constructor is already
    ownership-free there.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg, and no attach tracking
        return shared_memory.SharedMemory(name=name)


class AttachedBank:
    """A worker-side, read-only, zero-copy view over a published bank."""

    def __init__(self, handle: SharedBankHandle):
        self.handle = handle
        self._segment = _attach_segment(handle.segment)
        words = np.ndarray(
            (handle.rows, handle.num_words),
            dtype=np.uint64,
            buffer=self._segment.buf,
        )
        words.flags.writeable = False
        self.packed = PackedHypervectors(words=words, dimension=handle.dimension)

    def close(self) -> None:
        """Unmap the segment (best effort: live NumPy views pin the buffer)."""
        self.packed = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the bank
            pass

    def __enter__(self) -> "AttachedBank":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_bank(handle: SharedBankHandle) -> AttachedBank:
    """Map a published bank into this process as a read-only packed view."""
    return AttachedBank(handle)


class _Published:
    __slots__ = ("segment", "handle", "refcount")

    def __init__(self, segment, handle):
        self.segment = segment
        self.handle = handle
        self.refcount = 1


class SharedModelStore:
    """Refcounted registry of packed model banks published into shared memory.

    Thread-safe.  Keys are caller-chosen strings — the serving layer uses
    ``"<model>@v<version>"`` so hot-swapping a model version naturally
    publishes a fresh segment while the old one lives exactly as long as the
    dispatchers still sharding onto it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._published: Dict[str, _Published] = {}
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def publish(self, key: str, packed: PackedHypervectors) -> SharedBankHandle:
        """Copy *packed* into a shared segment (or ref the existing one).

        Publishing an already-published key increments its refcount and
        returns the existing handle — the words are assumed immutable for a
        given key, which the versioned key discipline guarantees.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedModelStore is closed")
            published = self._published.get(key)
            if published is not None:
                published.refcount += 1
                return published.handle
            words = np.ascontiguousarray(packed.words, dtype=np.uint64)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, words.nbytes)
            )
            try:
                view = np.ndarray(words.shape, dtype=np.uint64, buffer=segment.buf)
                view[:] = words
                del view
                handle = SharedBankHandle(
                    segment=segment.name,
                    rows=words.shape[0],
                    num_words=words.shape[1],
                    dimension=packed.dimension,
                )
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            self._published[key] = _Published(segment, handle)
            return handle

    def release(self, key: str) -> None:
        """Drop one reference; unlink the segment when the last one goes."""
        with self._lock:
            published = self._published.get(key)
            if published is None:
                raise KeyError(f"unknown shared bank {key!r}")
            published.refcount -= 1
            if published.refcount > 0:
                return
            del self._published[key]
        self._destroy(published)

    def close(self) -> None:
        """Unlink every remaining segment regardless of refcounts."""
        with self._lock:
            published, self._published = list(self._published.values()), {}
            self._closed = True
        for entry in published:
            self._destroy(entry)

    @staticmethod
    def _destroy(published: _Published) -> None:
        published.segment.close()
        try:
            published.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # --------------------------------------------------------------- queries
    def handle(self, key: str) -> SharedBankHandle:
        with self._lock:
            published = self._published.get(key)
            if published is None:
                raise KeyError(f"unknown shared bank {key!r}")
            return published.handle

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._published)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._published

    def __len__(self) -> int:
        with self._lock:
            return len(self._published)

    @property
    def resident_bytes(self) -> int:
        """Total bytes of packed model storage currently published."""
        with self._lock:
            return sum(p.handle.nbytes for p in self._published.values())

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------- worker rebuild
@dataclass
class WorkerModelSpec:
    """Everything a worker needs to rebuild a serving engine.

    Deliberately *excludes* the heavy packed bank — that is addressed by
    ``bank_handle`` and mapped zero-copy — so the spec stays cheap to ship
    even under the ``spawn`` start method.  ``ensemble_shape`` is the
    ``(K, N, D)`` of a SearcHD model bank, or ``None`` for shared-rule
    classifiers.
    """

    name: str
    encoder: object
    class_hypervectors: np.ndarray
    ensemble_shape: Optional[Tuple[int, int, int]]
    bank_handle: SharedBankHandle
    metadata: dict


def make_worker_spec(engine, bank_handle: SharedBankHandle) -> WorkerModelSpec:
    """Extract the small worker-side state from a parent-process engine.

    The encoder is shallow-copied with its compiled accumulator dropped (the
    fused LUT can run to megabytes and is rebuilt once per worker), so the
    parent's encoder keeps its compiled tables untouched.
    """
    if engine.mode != "packed":
        raise ValueError(
            "cluster serving requires the packed scoring path; "
            f"engine {engine.name!r} compiled in {engine.mode!r} mode"
        )
    encoder = copy.copy(engine.encoder)
    encoder._accumulator = None
    encoder._accumulator_budget = None
    bank = getattr(engine.classifier, "model_hypervectors_", None)
    return WorkerModelSpec(
        name=engine.name,
        encoder=encoder,
        class_hypervectors=engine.classifier.class_hypervectors_,
        ensemble_shape=tuple(bank.shape) if bank is not None else None,
        bank_handle=bank_handle,
        metadata=dict(engine.metadata),
    )


class _SharedBankEnsemble(FrozenEnsembleClassifier):
    """Worker-side ensemble carrier whose dense bank never left the parent.

    Its ``model_hypervectors_`` is a shape-only broadcast stub (the real
    words live in the shared segment), so the dense scoring path must be
    loudly unavailable rather than silently wrong.
    """

    def decision_scores(self, hypervectors):  # pragma: no cover - guard path
        raise RuntimeError(
            "the dense model bank is not resident in this worker; "
            "only packed scoring is available"
        )

    def _score_bank(self):  # pragma: no cover - guard path
        raise RuntimeError("the dense model bank is not resident in this worker")


def build_worker_engine(spec: WorkerModelSpec):
    """Reconstruct a ``PackedInferenceEngine`` over the shared bank.

    Returns ``(attached_bank, engine)``; the caller owns the attachment and
    must keep it alive for the engine's lifetime (the engine's resident
    words *are* the mapped segment).
    """
    from repro.classifiers.pipeline import HDCPipeline
    from repro.serve.engine import PackedInferenceEngine

    attached = attach_bank(spec.bank_handle)
    if spec.ensemble_shape is not None:
        num_classes, models_per_class, dimension = spec.ensemble_shape
        classifier = _SharedBankEnsemble(models_per_class=models_per_class)
        # Shape-only stand-in: packed scoring reads the bank's *shape* from
        # this attribute and its *words* from the shared segment, so the
        # dense (K, N, D) array never crosses the process boundary.
        classifier.model_hypervectors_ = np.broadcast_to(
            np.zeros(1, dtype=np.int8), (num_classes, models_per_class, dimension)
        )
    else:
        classifier = FrozenClassifier(tie_break=spec.encoder.tie_break)
    classifier.class_hypervectors_ = spec.class_hypervectors
    classifier.num_classes_ = int(spec.class_hypervectors.shape[0])

    pipeline = HDCPipeline(spec.encoder, classifier)
    pipeline._fitted = True
    engine = PackedInferenceEngine(
        pipeline,
        name=spec.name,
        mode="packed",
        metadata=spec.metadata,
        packed_bank=attached.packed,
    )
    return attached, engine


__all__ = [
    "AttachedBank",
    "SharedBankHandle",
    "SharedModelStore",
    "WorkerModelSpec",
    "attach_bank",
    "build_worker_engine",
    "make_worker_spec",
]
