"""Pluggable dispatch transports: how shards and scores cross the process gap.

The dispatcher/worker *protocol* is fixed — a request frame ``(header,
arrays)`` down, a reply ``("ok", scalar, arrays, spans)`` or ``("error",
kind, message)`` back — but the *carriage* of the bulk arrays is what this
module makes pluggable.  Three transports implement one interface:

``pipe``
    The compatibility baseline: the whole frame (header and arrays) is
    pickled through the worker's duplex pipe.  Every dispatch therefore
    copies the query rows and the score matrices through a kernel pipe
    buffer twice (pickle + write, read + unpickle) — the per-dispatch
    overhead the shm transport exists to remove.

``shm``
    Shared-memory rings: the parent owns two refcount-free slabs per worker
    (a request slab it writes, a response slab the worker writes), built on
    the same ``multiprocessing.shared_memory`` segment machinery as
    :class:`~repro.cluster.shared.SharedModelStore`.  Arrays are staged in
    the slabs; the pipe carries only a fixed-shape control frame (op, array
    layout, slab addresses, generation counter, span context).  Slabs grow
    geometrically when a batch outgrows them (the frame announces the new
    segment name, the worker re-attaches); generation counters written
    after the payload — and checked against the frame on both sides —
    detect torn or stale reads; a reply that cannot fit its slab falls back
    to inline pickling so misprediction degrades to the pipe baseline
    instead of failing.

``tcp``
    The same framed protocol over a localhost socket: a length-prefixed
    pickled header followed by the raw array bytes (no array pickling).
    Functionally the stepping stone to multi-node serving — the frame
    format has no shared-memory dependency — while keeping crash semantics
    (dead peer ⇒ broken socket) identical to the pipe.

Crash semantics are transport-independent by construction: every transport
raises ``BrokenPipeError``/``OSError``/``EOFError`` exactly where the pipe
transport would, and the dispatcher's poll loops also watch process
liveness, so mid-batch worker death always surfaces as
:class:`~repro.cluster.errors.WorkerCrashedError` + lazy respawn no matter
how the bytes travel.

Every parent endpoint keeps exact byte accounting (``pipe_bytes``,
``shm_bytes``, ``socket_bytes``, ``bytes_avoided``, frame counts, slab
occupancy) — the observability layer exposes these and the dispatch
micro-benchmark asserts the shm transport's ≥10x pipe-byte reduction from
them.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.errors import ClusterError, WorkerStartupError

TRANSPORT_NAMES = ("pipe", "shm", "tcp")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Shared-memory slab header: ``(generation, payload_nbytes)`` as uint64s.
_SLAB_HEADER = struct.Struct("<QQ")

#: TCP frame prefix: ``(header_nbytes, payload_nbytes)``.
_TCP_PREFIX = struct.Struct("<II")

_DEFAULT_SLAB_BYTES = 1 << 16  # 64 KiB per ring, grown geometrically


class TransportError(ClusterError):
    """A transport-integrity failure (torn slab read, bad frame, bad token)."""


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


# --------------------------------------------------------------- array codec
def _array_metas(arrays: Sequence[np.ndarray]) -> List[Tuple[str, Tuple[int, ...]]]:
    return [(array.dtype.str, tuple(array.shape)) for array in arrays]


def _payload_nbytes(arrays: Sequence[np.ndarray]) -> int:
    return sum(int(array.nbytes) for array in arrays)


def _flatten(array: np.ndarray) -> np.ndarray:
    """A contiguous uint8 view of *array* (copying only if non-contiguous)."""
    return np.ascontiguousarray(array).view(np.uint8).reshape(-1)


def _unpack_arrays(
    metas: Sequence[Tuple[str, Tuple[int, ...]]], payload: bytes
) -> List[np.ndarray]:
    """Rebuild arrays from concatenated raw bytes (read-only views)."""
    arrays = []
    offset = 0
    for dtype_str, shape in metas:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        arrays.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset).reshape(
                shape
            )
        )
        offset += nbytes
    if offset != len(payload):
        raise TransportError(
            f"payload size mismatch: metas describe {offset} bytes, got {len(payload)}"
        )
    return arrays


# ----------------------------------------------------------------- counters
class TransportCounters:
    """Parent-side per-endpoint byte/frame accounting (single-threaded use:
    the dispatcher serialises dispatches under its own lock)."""

    __slots__ = (
        "frames_sent",
        "frames_received",
        "pipe_bytes",
        "shm_bytes",
        "socket_bytes",
        "payload_bytes",
        "bytes_avoided",
        "inline_fallbacks",
        "slab_grows",
    )

    def __init__(self):
        self.frames_sent = 0
        self.frames_received = 0
        self.pipe_bytes = 0  # bytes that crossed a pipe (frames incl. pickles)
        self.shm_bytes = 0  # array bytes staged in shared-memory rings
        self.socket_bytes = 0  # bytes that crossed a TCP socket
        self.payload_bytes = 0  # total array bytes moved, any carriage
        self.bytes_avoided = 0  # array bytes kept out of the pipes vs baseline
        self.inline_fallbacks = 0
        self.slab_grows = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: int(getattr(self, name)) for name in self.__slots__}


# ------------------------------------------------------------------- slabs
class _Slab:
    """One shared-memory ring: a 16-byte ``(generation, nbytes)`` header
    followed by the payload bytes.  The parent owns (creates/unlinks) both
    rings of a worker; the worker only ever attaches."""

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment = segment
        self._owner = owner

    @classmethod
    def create(cls, capacity: int) -> "_Slab":
        segment = shared_memory.SharedMemory(
            create=True, size=_SLAB_HEADER.size + max(1, int(capacity))
        )
        _SLAB_HEADER.pack_into(segment.buf, 0, 0, 0)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "_Slab":
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: attachments are never tracked
            segment = shared_memory.SharedMemory(name=name)
        return cls(segment, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity(self) -> int:
        return self._segment.size - _SLAB_HEADER.size

    def write(self, generation: int, arrays: Sequence[np.ndarray]) -> int:
        """Stage *arrays* then publish the header; returns payload bytes.

        The header is written *after* the payload, so a reader that observes
        the expected generation is guaranteed to see the matching bytes
        (the pipe/socket frame carrying that generation is sent later still,
        giving a second happens-before edge).
        """
        buf = self._segment.buf
        offset = _SLAB_HEADER.size
        for array in arrays:
            flat = _flatten(array)
            buf[offset : offset + flat.nbytes] = flat.data
            offset += flat.nbytes
        nbytes = offset - _SLAB_HEADER.size
        _SLAB_HEADER.pack_into(buf, 0, generation, nbytes)
        return nbytes

    def read(self, generation: int, expected_nbytes: int) -> bytes:
        """Copy the payload out, verifying the generation counter.

        A mismatch means a torn or stale read — the frame and the slab
        disagree about which dispatch the bytes belong to — and is raised
        as :class:`TransportError` rather than silently scoring garbage.
        """
        slab_generation, nbytes = _SLAB_HEADER.unpack_from(self._segment.buf, 0)
        if slab_generation != generation or nbytes != expected_nbytes:
            raise TransportError(
                f"slab {self.name} generation/size mismatch: frame says "
                f"({generation}, {expected_nbytes}), slab says "
                f"({slab_generation}, {nbytes})"
            )
        start = _SLAB_HEADER.size
        return bytes(self._segment.buf[start : start + nbytes])

    def close(self) -> None:
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the slab
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _grown_capacity(current: int, needed: int) -> int:
    capacity = max(current, _DEFAULT_SLAB_BYTES)
    while capacity < needed:
        capacity *= 2
    return capacity


# ------------------------------------------------------------ parent side
class ParentEndpoint:
    """The dispatcher-side half of one worker's transport channel."""

    name = "base"

    def __init__(self, connection):
        self.connection = connection
        self.counters = TransportCounters()

    # -- lifecycle -------------------------------------------------------
    def worker_spec(self):
        """Picklable description from which the worker builds its endpoint."""
        raise NotImplementedError

    def bind(self, process, deadline: float) -> None:
        """Complete any connection setup after the worker process starts."""

    def close(self) -> None:
        pass

    # -- request/reply ---------------------------------------------------
    def send_request(self, header: dict, arrays: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    def poll(self, timeout: float) -> bool:
        return self.connection.poll(timeout)

    def recv_reply(self) -> tuple:
        raise NotImplementedError

    # -- accounting ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {"transport": self.name, **self.counters.snapshot()}


class PipeParentEndpoint(ParentEndpoint):
    """Baseline: frames (header and arrays) pickled through the pipe."""

    name = "pipe"

    def worker_spec(self):
        return ("pipe",)

    def send_request(self, header: dict, arrays: Sequence[np.ndarray]) -> None:
        blob = _dumps((header, list(arrays)))
        self.connection.send_bytes(blob)
        counters = self.counters
        counters.frames_sent += 1
        counters.pipe_bytes += len(blob)
        counters.payload_bytes += _payload_nbytes(arrays)

    def recv_reply(self) -> tuple:
        blob = self.connection.recv_bytes()
        counters = self.counters
        counters.frames_received += 1
        counters.pipe_bytes += len(blob)
        reply = pickle.loads(blob)
        if reply[0] == "ok":
            counters.payload_bytes += _payload_nbytes(reply[2])
        return reply


class ShmParentEndpoint(ParentEndpoint):
    """Shared-memory rings: slabs carry arrays, the pipe carries frames."""

    name = "shm"

    def __init__(self, connection, initial_slab_bytes: int = _DEFAULT_SLAB_BYTES):
        super().__init__(connection)
        self._generation = 0
        self._request_slab = _Slab.create(initial_slab_bytes)
        self._response_slab = _Slab.create(initial_slab_bytes)
        self._last_request_nbytes = 0
        self._last_response_nbytes = 0

    def worker_spec(self):
        # Slab names ride every frame (they change on growth), so the spec
        # only needs to say which endpoint class to build.
        return ("shm",)

    def _ensure_capacity(self, slab_attr: str, needed: int) -> "_Slab":
        slab: _Slab = getattr(self, slab_attr)
        if needed > slab.capacity:
            grown = _Slab.create(_grown_capacity(slab.capacity, needed))
            slab.close()
            setattr(self, slab_attr, grown)
            self.counters.slab_grows += 1
            slab = grown
        return slab

    def send_request(self, header: dict, arrays: Sequence[np.ndarray]) -> None:
        self._generation += 1
        payload_nbytes = _payload_nbytes(arrays)
        request_slab = self._ensure_capacity("_request_slab", payload_nbytes)
        response_slab = self._ensure_capacity(
            "_response_slab", int(header.get("reply_nbytes_hint", 0))
        )
        self._last_request_nbytes = request_slab.write(self._generation, arrays)
        frame = _dumps(
            (
                header,
                _array_metas(arrays),
                payload_nbytes,
                self._generation,
                (request_slab.name, request_slab.capacity),
                (response_slab.name, response_slab.capacity),
            )
        )
        self.connection.send_bytes(frame)
        counters = self.counters
        counters.frames_sent += 1
        counters.pipe_bytes += len(frame)
        counters.shm_bytes += payload_nbytes
        counters.payload_bytes += payload_nbytes
        counters.bytes_avoided += payload_nbytes

    def recv_reply(self) -> tuple:
        blob = self.connection.recv_bytes()
        counters = self.counters
        counters.frames_received += 1
        counters.pipe_bytes += len(blob)
        reply = pickle.loads(blob)
        if reply[0] == "ok-shm":
            _, scalar, metas, payload_nbytes, generation, spans = reply
            if generation != self._generation:
                raise TransportError(
                    f"response generation mismatch: sent {self._generation}, "
                    f"worker answered {generation}"
                )
            payload = self._response_slab.read(generation, payload_nbytes)
            self._last_response_nbytes = payload_nbytes
            counters.shm_bytes += payload_nbytes
            counters.payload_bytes += payload_nbytes
            counters.bytes_avoided += payload_nbytes
            return ("ok", scalar, _unpack_arrays(metas, payload), spans)
        if reply[0] == "ok":  # inline fallback (reply outgrew its slab)
            counters.inline_fallbacks += 1
            counters.payload_bytes += _payload_nbytes(reply[2])
        return reply

    def close(self) -> None:
        self._request_slab.close()
        self._response_slab.close()

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["request_slab"] = {
            "capacity_bytes": self._request_slab.capacity,
            "last_payload_bytes": self._last_request_nbytes,
            "occupancy": (
                self._last_request_nbytes / self._request_slab.capacity
                if self._request_slab.capacity
                else 0.0
            ),
        }
        stats["response_slab"] = {
            "capacity_bytes": self._response_slab.capacity,
            "last_payload_bytes": self._last_response_nbytes,
            "occupancy": (
                self._last_response_nbytes / self._response_slab.capacity
                if self._response_slab.capacity
                else 0.0
            ),
        }
        return stats


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < nbytes:
        chunk = sock.recv(nbytes - len(chunks))
        if not chunk:
            raise EOFError("socket closed by peer")
        chunks.extend(chunk)
    return bytes(chunks)


def _send_frame(sock: socket.socket, header_blob: bytes, arrays) -> int:
    payload_nbytes = _payload_nbytes(arrays)
    sock.sendall(_TCP_PREFIX.pack(len(header_blob), payload_nbytes))
    sock.sendall(header_blob)
    for array in arrays:
        sock.sendall(_flatten(array).data)
    return _TCP_PREFIX.size + len(header_blob) + payload_nbytes


def _recv_frame(sock: socket.socket):
    header_nbytes, payload_nbytes = _TCP_PREFIX.unpack(
        _recv_exact(sock, _TCP_PREFIX.size)
    )
    header = pickle.loads(_recv_exact(sock, header_nbytes))
    payload = _recv_exact(sock, payload_nbytes) if payload_nbytes else b""
    return header, payload, _TCP_PREFIX.size + header_nbytes + payload_nbytes


class TcpParentEndpoint(ParentEndpoint):
    """Framed protocol over a localhost socket: length-prefixed pickled
    header + raw array bytes.  The pipe is used only for the startup
    handshake; every request/reply travels the socket."""

    name = "tcp"

    def __init__(self, connection, host: str = "127.0.0.1"):
        super().__init__(connection)
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.1)
        self._address = self._listener.getsockname()
        self._socket: Optional[socket.socket] = None

    def worker_spec(self):
        return ("tcp", self._address[0], self._address[1])

    def bind(self, process, deadline: float) -> None:
        while True:
            try:
                connected, _ = self._listener.accept()
                break
            except socket.timeout:
                if not process.is_alive() or time.monotonic() > deadline:
                    raise WorkerStartupError(
                        "worker never connected its transport socket "
                        f"(alive={process.is_alive()})"
                    )
        connected.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._socket = connected
        self._listener.close()

    def send_request(self, header: dict, arrays: Sequence[np.ndarray]) -> None:
        if self._socket is None:  # pragma: no cover - bind() precedes use
            raise BrokenPipeError("transport socket is not connected")
        frame_header = _dumps((header, _array_metas(arrays)))
        sent = _send_frame(self._socket, frame_header, arrays)
        counters = self.counters
        counters.frames_sent += 1
        counters.socket_bytes += sent
        payload_nbytes = _payload_nbytes(arrays)
        counters.payload_bytes += payload_nbytes
        counters.bytes_avoided += payload_nbytes

    def poll(self, timeout: float) -> bool:
        if self._socket is None:  # pragma: no cover - bind() precedes use
            return False
        ready, _, _ = select.select([self._socket], [], [], timeout)
        return bool(ready)

    def recv_reply(self) -> tuple:
        header, payload, received = _recv_frame(self._socket)
        counters = self.counters
        counters.frames_received += 1
        counters.socket_bytes += received
        if header[0] == "error":
            return tuple(header)  # ("error", kind, message)
        tag, scalar, metas, spans = header
        if tag == "ok":
            arrays = _unpack_arrays(metas, payload)
            counters.payload_bytes += len(payload)
            counters.bytes_avoided += len(payload)
            return ("ok", scalar, arrays, spans)
        return (tag, scalar, metas)  # ("error", kind, message)

    def close(self) -> None:
        for sock in (self._socket, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass


# ------------------------------------------------------------ worker side
class WorkerEndpoint:
    """The worker-side half: blocking ``recv`` + ``send_ok``/``send_error``."""

    def __init__(self, connection):
        self.connection = connection

    def recv(self):
        """Next ``(header, arrays)`` request; raises ``EOFError`` on close."""
        raise NotImplementedError

    def send_ok(self, scalar, arrays: Sequence[np.ndarray], spans: list) -> None:
        raise NotImplementedError

    def send_error(self, kind: str, message: str) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class PipeWorkerEndpoint(WorkerEndpoint):
    def recv(self):
        header, arrays = pickle.loads(self.connection.recv_bytes())
        return header, arrays

    def send_ok(self, scalar, arrays, spans) -> None:
        self.connection.send_bytes(_dumps(("ok", scalar, list(arrays), spans)))

    def send_error(self, kind: str, message: str) -> None:
        self.connection.send_bytes(_dumps(("error", kind, message)))


class ShmWorkerEndpoint(WorkerEndpoint):
    def __init__(self, connection):
        super().__init__(connection)
        self._attached: Dict[str, _Slab] = {}
        self._response_slab: Optional[Tuple[str, int]] = None
        self._generation = 0

    def _slab(self, name: str) -> _Slab:
        slab = self._attached.get(name)
        if slab is None:
            # Growth replaced the segment: drop stale attachments (their
            # parent-side segments are already unlinked) and map the new one.
            for stale in self._attached.values():
                stale.close()
            self._attached = {}
            slab = _Slab.attach(name)
            self._attached[name] = slab
        return slab

    def recv(self):
        frame = pickle.loads(self.connection.recv_bytes())
        header, metas, payload_nbytes, generation, request_ref, response_ref = frame
        self._generation = generation
        self._response_slab = response_ref
        if payload_nbytes:
            payload = self._slab(request_ref[0]).read(generation, payload_nbytes)
            arrays = _unpack_arrays(metas, payload)
        else:
            arrays = []
        return header, arrays

    def send_ok(self, scalar, arrays, spans) -> None:
        payload_nbytes = _payload_nbytes(arrays)
        name, capacity = self._response_slab
        if payload_nbytes <= capacity:
            slab = self._slab(name)
            slab.write(self._generation, arrays)
            self.connection.send_bytes(
                _dumps(
                    (
                        "ok-shm",
                        scalar,
                        _array_metas(arrays),
                        payload_nbytes,
                        self._generation,
                        spans,
                    )
                )
            )
        else:
            # The parent's size hint was short (or absent): degrade this one
            # reply to inline pickling rather than fail the request.
            self.connection.send_bytes(_dumps(("ok", scalar, list(arrays), spans)))

    def send_error(self, kind: str, message: str) -> None:
        self.connection.send_bytes(_dumps(("error", kind, message)))

    def skew_generation(self) -> None:
        """Chaos hook: desynchronise the reply generation counter.

        The next ``send_ok`` stamps slab + frame with a generation the parent
        is not expecting, so its torn-write detector raises
        ``TransportError`` instead of reading the payload — exactly what a
        write torn by a mid-``memcpy`` crash looks like.  Self-healing: the
        parent's next request re-announces its own generation and ``recv``
        adopts it, so only one reply is poisoned.
        """
        self._generation += 1

    def close(self) -> None:
        for slab in self._attached.values():
            slab.close()
        self._attached = {}


class TcpWorkerEndpoint(WorkerEndpoint):
    def __init__(self, connection, host: str, port: int):
        super().__init__(connection)
        self._socket = socket.create_connection((host, port), timeout=30.0)
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._socket.settimeout(None)

    def recv(self):
        header, payload, _ = _recv_frame(self._socket)
        request, metas = header
        return request, _unpack_arrays(metas, payload)

    def send_ok(self, scalar, arrays, spans) -> None:
        header = _dumps(("ok", scalar, _array_metas(arrays), spans))
        _send_frame(self._socket, header, arrays)

    def send_error(self, kind: str, message: str) -> None:
        header = _dumps(("error", kind, message))
        _send_frame(self._socket, header, [])

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed
            pass


def build_worker_endpoint(spec, connection) -> WorkerEndpoint:
    """Construct the worker-side endpoint from its picklable spec."""
    if spec is None or spec[0] == "pipe":
        return PipeWorkerEndpoint(connection)
    if spec[0] == "shm":
        return ShmWorkerEndpoint(connection)
    if spec[0] == "tcp":
        return TcpWorkerEndpoint(connection, spec[1], spec[2])
    raise ValueError(f"unknown transport spec {spec!r}")


# -------------------------------------------------------------- factories
@dataclass
class Transport:
    """A transport choice plus its tuning knobs; builds parent endpoints."""

    name: str
    initial_slab_bytes: int = _DEFAULT_SLAB_BYTES

    def __post_init__(self):
        if self.name not in TRANSPORT_NAMES:
            raise ValueError(
                f"unknown transport {self.name!r}; choose from {TRANSPORT_NAMES}"
            )

    def create_endpoint(self, connection) -> ParentEndpoint:
        if self.name == "pipe":
            return PipeParentEndpoint(connection)
        if self.name == "shm":
            return ShmParentEndpoint(
                connection, initial_slab_bytes=self.initial_slab_bytes
            )
        return TcpParentEndpoint(connection)


def make_transport(transport) -> Transport:
    """Coerce a transport name (or pass a :class:`Transport` through)."""
    if isinstance(transport, Transport):
        return transport
    return Transport(str(transport))


__all__ = [
    "TRANSPORT_NAMES",
    "ParentEndpoint",
    "Transport",
    "TransportCounters",
    "TransportError",
    "WorkerEndpoint",
    "build_worker_endpoint",
    "make_transport",
]
