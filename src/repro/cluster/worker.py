"""The inference worker process: one engine view, one duplex pipe.

Each worker rebuilds a full :class:`~repro.serve.engine.PackedInferenceEngine`
from a :class:`~repro.cluster.shared.WorkerModelSpec` — encoder tables private,
packed model bank mapped zero-copy from the parent's shared segment — then
answers a tiny request protocol over its pipe:

==================================  ==========================================
request                             reply
==================================  ==========================================
``("top_k", features, k, ctx)``     ``("ok", (labels, scores), spans)``
``("scores", features, ctx)``       ``("ok", scores, spans)``
``("ping",)``                       ``("ok", pid, [])``
``("poison",)``                     ``("ok", None, [])`` *(then die on next
                                    request)*
``("stop",)``                       *(none; the worker exits)*
==================================  ==========================================

``ctx`` is an optional trace span context (a picklable
:class:`~repro.obs.trace.SpanContext` tuple, or ``None``).  When present the
worker times its scoring and ships a finished ``worker:score`` span record
back in the reply's third slot; the dispatcher writes it into the parent's
trace sink, which is how a single request's trace stitches across the
process boundary without the worker ever opening the trace file.

Independent of tracing, every scoring request is recorded into the worker's
shared-memory stats slab (requests, samples, busy seconds, and a scoring
latency histogram) when the dispatcher handed one over — that is the
lock-free channel behind the fleet-wide utilisation view in ``/v1/metrics``.

``poison`` arms a hard ``os._exit`` on the *next* request, which is how the
crash-recovery tests (and chaos drills) provoke a deterministic mid-batch
worker death — the dispatcher's send succeeds, the reply never comes.

Request-level Python exceptions (for example a feature-width mismatch) are
caught and shipped back as ``("error", type_name, message)`` so one bad
request never takes the process down; only a genuine crash (segfault, kill,
OOM) breaks the pipe, which the dispatcher detects and handles by
respawning.  A ``("ready", pid)`` handshake is sent once the engine is
compiled so the dispatcher can distinguish slow startup from startup failure.
"""

from __future__ import annotations

from repro.cluster.shared import WorkerModelSpec, build_worker_engine


def worker_main(
    spec: WorkerModelSpec,
    connection,
    stats_slab_name=None,
    worker_index: int = 0,
) -> None:
    """Process entry point: build the engine, then serve the pipe until EOF."""
    import os
    import time

    from repro.obs.shm_metrics import WorkerStatsSlab
    from repro.obs.trace import span_record

    stats = None
    try:
        attached, engine = build_worker_engine(spec)
        engine.warmup()
        if stats_slab_name is not None:
            stats = WorkerStatsSlab.attach(stats_slab_name)
    except BaseException as error:
        try:
            connection.send(("failed", f"{type(error).__name__}: {error}"))
        finally:
            connection.close()
        return
    connection.send(("ready", os.getpid()))

    def _score(op, features, extra_args, ctx):
        """Run one scoring op; returns ``(payload, spans)`` and records stats."""
        started_wall = time.time()
        started = time.perf_counter()
        if op == "top_k":
            payload = engine.top_k(features, k=extra_args[0])
        else:
            payload = engine.decision_scores(features)
        elapsed = time.perf_counter() - started
        rows = int(features.shape[0]) if features.ndim == 2 else 1
        if stats is not None:
            stats.record(rows, elapsed)
        spans = []
        if ctx is not None:
            spans.append(
                span_record(
                    "worker:score",
                    ctx,
                    started_wall,
                    elapsed,
                    attrs={"op": op, "rows": rows, "worker": worker_index},
                )
            )
        return payload, spans

    poisoned = False
    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:
                break
            op = message[0]
            if op == "stop":
                break
            if poisoned:
                os._exit(1)
            try:
                if op == "poison":
                    poisoned = True
                    connection.send(("ok", None, []))
                elif op == "top_k":
                    _, features, k, ctx = message
                    payload, spans = _score(op, features, (k,), ctx)
                    connection.send(("ok", payload, spans))
                elif op == "scores":
                    _, features, ctx = message
                    payload, spans = _score(op, features, (), ctx)
                    connection.send(("ok", payload, spans))
                elif op == "ping":
                    connection.send(("ok", os.getpid(), []))
                else:
                    connection.send(("error", "ValueError", f"unknown op {op!r}"))
            except Exception as error:
                if stats is not None:
                    stats.record_error()
                connection.send(("error", type(error).__name__, str(error)))
    finally:
        connection.close()
        if stats is not None:
            stats.close()
        attached.close()


__all__ = ["worker_main"]
