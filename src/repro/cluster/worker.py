"""The inference worker process: one engine view, one duplex pipe.

Each worker rebuilds a full :class:`~repro.serve.engine.PackedInferenceEngine`
from a :class:`~repro.cluster.shared.WorkerModelSpec` — encoder tables private,
packed model bank mapped zero-copy from the parent's shared segment — then
answers a tiny request protocol over its pipe:

==============================  ============================================
request                         reply
==============================  ============================================
``("top_k", features, k)``      ``("ok", (labels, scores))``
``("scores", features)``        ``("ok", scores)``
``("ping",)``                   ``("ok", pid)``
``("poison",)``                 ``("ok", None)`` *(then die on next request)*
``("stop",)``                   *(none; the worker exits)*
==============================  ============================================

``poison`` arms a hard ``os._exit`` on the *next* request, which is how the
crash-recovery tests (and chaos drills) provoke a deterministic mid-batch
worker death — the dispatcher's send succeeds, the reply never comes.

Request-level Python exceptions (for example a feature-width mismatch) are
caught and shipped back as ``("error", type_name, message)`` so one bad
request never takes the process down; only a genuine crash (segfault, kill,
OOM) breaks the pipe, which the dispatcher detects and handles by
respawning.  A ``("ready", pid)`` handshake is sent once the engine is
compiled so the dispatcher can distinguish slow startup from startup failure.
"""

from __future__ import annotations

from repro.cluster.shared import WorkerModelSpec, build_worker_engine


def worker_main(spec: WorkerModelSpec, connection) -> None:
    """Process entry point: build the engine, then serve the pipe until EOF."""
    import os

    try:
        attached, engine = build_worker_engine(spec)
        engine.warmup()
    except BaseException as error:
        try:
            connection.send(("failed", f"{type(error).__name__}: {error}"))
        finally:
            connection.close()
        return
    connection.send(("ready", os.getpid()))

    poisoned = False
    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:
                break
            op = message[0]
            if op == "stop":
                break
            if poisoned:
                os._exit(1)
            try:
                if op == "poison":
                    poisoned = True
                    connection.send(("ok", None))
                elif op == "top_k":
                    _, features, k = message
                    labels, scores = engine.top_k(features, k=k)
                    connection.send(("ok", (labels, scores)))
                elif op == "scores":
                    connection.send(("ok", engine.decision_scores(message[1])))
                elif op == "ping":
                    connection.send(("ok", os.getpid()))
                else:
                    connection.send(("error", "ValueError", f"unknown op {op!r}"))
            except Exception as error:
                connection.send(("error", type(error).__name__, str(error)))
    finally:
        connection.close()
        attached.close()


__all__ = ["worker_main"]
