"""The inference worker process: one engine view, one transport endpoint.

Each worker rebuilds a full :class:`~repro.serve.engine.PackedInferenceEngine`
from a :class:`~repro.cluster.shared.WorkerModelSpec` — encoder tables private,
packed model bank mapped zero-copy from the parent's shared segment — then
answers a tiny request protocol over its transport endpoint
(:func:`repro.cluster.transport.build_worker_endpoint` turns the dispatcher's
picklable transport spec into the matching pipe / shared-memory-ring / TCP
implementation; the duplex pipe always remains open for control frames and
the startup handshake).

Requests are ``(header, arrays)`` pairs; replies are ``send_ok(scalar,
arrays, spans)`` or ``send_error(kind, message)``:

=====================================  =======================================
request header (+ arrays)              ok-reply payload
=====================================  =======================================
``{"op": "top_k", "k", ...}``          ``arrays = [labels, scores]``
``+ [features | packed words]``
``{"op": "scores", ...}``              ``arrays = [scores]``
``+ [features | packed words]``
``{"op": "ping"}``                     ``scalar = pid``
``{"op": "poison"}``                   ``scalar = None`` *(then die on next
                                       request)*
``{"op": "stop"}``                     *(none; the worker exits)*
=====================================  =======================================

``header["kind"]`` selects the scoring path.  ``"packed"`` means the
dispatcher already validated and encoded the batch — the array is the shard's
packed ``uint64`` query words — so the worker goes straight to XOR+popcount
(``decision_scores_packed``) plus the same stable ``top_k_from_scores`` the
engine itself uses, which keeps the merged result bit-identical to a
single-process call.  ``"dense"`` ships raw float rows and defers to the
engine's public entry points (validation included), the pre-packing fallback
for engines without a fused accumulator.

``header["ctx"]`` is an optional trace span context.  When present the worker
times its scoring and ships a finished ``worker:score`` span record back in
the reply's span slot; the dispatcher writes it into the parent's trace sink,
which is how a single request's trace stitches across the process boundary
without the worker ever opening the trace file.

Independent of tracing, every scoring request is recorded into the worker's
shared-memory stats slab (requests, samples, busy seconds, and a scoring
latency histogram) when the dispatcher handed one over — that is the
lock-free channel behind the fleet-wide utilisation view in ``/v1/metrics``.

``poison`` arms a hard ``os._exit`` on the *next* request, which is how the
crash-recovery tests (and chaos drills) provoke a deterministic mid-batch
worker death — the dispatcher's send succeeds, the reply never comes.  The
arming frame travels whatever transport is active, so the chaos drill
exercises the shm/tcp crash paths too.

Request-level Python exceptions (for example a feature-width mismatch on the
dense path) are caught and shipped back as ``("error", type_name, message)``
so one bad request never takes the process down; a torn shared-memory read
(generation mismatch) likewise becomes a ``TransportError`` reply rather than
scoring stale bytes.  Only a genuine crash (segfault, kill, OOM) breaks the
transport, which the dispatcher detects and handles by respawning.  A
``("ready", pid)`` handshake is sent on the pipe once the engine is compiled
so the dispatcher can distinguish slow startup from startup failure; the
worker connects its transport *before* the engine build so a TCP dispatcher
never waits out the engine compile in ``accept``.
"""

from __future__ import annotations

from repro.cluster.shared import WorkerModelSpec, build_worker_engine


def worker_main(
    spec: WorkerModelSpec,
    connection,
    stats_slab_name=None,
    worker_index: int = 0,
    transport_spec=None,
    fault_plan=None,
) -> None:
    """Process entry point: build the endpoint + engine, serve until EOF."""
    import os
    import time

    import numpy as np

    from repro.classifiers.base import top_k_from_scores
    from repro.cluster.shared import attach_bank
    from repro.cluster.transport import TransportError, build_worker_endpoint
    from repro.faults import WORKER_KINDS
    from repro.kernels.packed import PackedHypervectors
    from repro.obs.shm_metrics import WorkerStatsSlab
    from repro.obs.trace import span_record

    # Only the worker-side kinds: the eviction-targeted kinds in the same
    # plan fire in the dispatcher, never here.
    injector = (
        None
        if fault_plan is None
        else fault_plan.injector(worker_index, kinds=WORKER_KINDS)
    )
    stats = None
    endpoint = None
    try:
        # Transport first (a TCP connect is instant; the engine build is
        # not), so the dispatcher's accept never waits on compilation.
        endpoint = build_worker_endpoint(transport_spec, connection)
        attached, engine = build_worker_engine(spec)
        engine.warmup()
        if stats_slab_name is not None:
            stats = WorkerStatsSlab.attach(stats_slab_name)
    except BaseException as error:
        try:
            connection.send(("failed", f"{type(error).__name__}: {error}"))
        finally:
            if endpoint is not None:
                endpoint.close()
            connection.close()
        return
    connection.send(("ready", os.getpid()))

    def _maybe_reattach(header):
        """Follow the bank across evictions: when the op header carries a
        newer generation than the mapped segment, re-attach and adopt.

        The old mapping stays valid even after its segment was unlinked
        (POSIX keeps the pages alive until the last map drops), so a worker
        that merely *holds* a superseded generation keeps scoring correctly;
        this hook is what lets it catch up to the restored segment instead
        of crashing.  Raises ``FileNotFoundError`` if the new segment lost
        an unlink race — the caller turns that into a typed, retryable
        ``BankUnavailableError`` reply.
        """
        nonlocal attached
        handle = header.get("bank")
        if handle is None or handle.generation == attached.handle.generation:
            return
        fresh = attach_bank(handle)
        stale, attached = attached, fresh
        engine.classifier.adopt_packed_bank(fresh.packed)
        engine._packed_classes = engine.classifier.packed_inference_bank()
        stale.close()

    def _score(header, arrays):
        """Run one scoring op; returns ``(arrays, spans)`` + records stats."""
        op = header["op"]
        started_wall = time.time()
        started = time.perf_counter()
        if header.get("kind") == "packed":
            # The dispatcher validated + encoded once; the shard is packed
            # uint64 query words, so scoring is pure XOR+popcount here.
            words = np.ascontiguousarray(arrays[0], dtype=np.uint64)
            queries = PackedHypervectors(words=words, dimension=engine.dimension)
            scores = engine.classifier.decision_scores_packed(queries)
            rows = int(words.shape[0])
            if op == "top_k":
                labels, top_scores = top_k_from_scores(scores, header["k"])
                payload = [labels, top_scores]
            else:
                payload = [scores]
        else:
            features = arrays[0]
            rows = int(features.shape[0]) if features.ndim == 2 else 1
            if op == "top_k":
                labels, top_scores = engine.top_k(features, k=header["k"])
                payload = [labels, top_scores]
            else:
                payload = [engine.decision_scores(features)]
        elapsed = time.perf_counter() - started
        if stats is not None:
            stats.record(rows, elapsed)
        spans = []
        ctx = header.get("ctx")
        if ctx is not None:
            spans.append(
                span_record(
                    "worker:score",
                    ctx,
                    started_wall,
                    elapsed,
                    attrs={
                        "op": op,
                        "rows": rows,
                        "worker": worker_index,
                        "kind": header.get("kind", "dense"),
                    },
                )
            )
        return payload, spans

    poisoned = False
    try:
        while True:
            try:
                header, arrays = endpoint.recv()
            except (EOFError, OSError):
                break
            except TransportError as error:
                # A torn/stale slab read: refuse to score the bytes, tell
                # the dispatcher exactly why, and stay alive.
                endpoint.send_error("TransportError", str(error))
                continue
            op = header["op"]
            if op == "stop":
                break
            if poisoned:
                os._exit(1)
            try:
                if op == "poison":
                    poisoned = True
                    endpoint.send_ok(None, [], [])
                elif op in ("top_k", "scores"):
                    # Deterministic chaos: consult the fault plan once per
                    # scoring request.  Crash/drop never reply (the parent
                    # sees process death / a broken transport); hang holds
                    # the shard past the dispatcher's watchdog; the rest
                    # reply — wrongly, slowly, or torn.
                    action = injector.draw() if injector is not None else None
                    if action == "crash":
                        os._exit(17)
                    if action == "drop":
                        # A dropped/reset connection as seen from the parent:
                        # tear the transport down mid-request and vanish.
                        endpoint.close()
                        connection.close()
                        os._exit(18)
                    if action in ("hang", "slow"):
                        time.sleep(
                            fault_plan.hang_seconds
                            if action == "hang"
                            else fault_plan.slow_seconds
                        )
                    deadline = header.get("deadline")
                    if deadline is not None and time.monotonic() >= deadline:
                        # The shard is already dead — refuse to score it so
                        # the dispatcher can answer 504 without waiting.
                        endpoint.send_error(
                            "DeadlineExceededError",
                            "shard deadline expired before scoring",
                        )
                        continue
                    if action == "error":
                        endpoint.send_error(
                            "InjectedFaultError", "injected error-reply fault"
                        )
                        continue
                    try:
                        _maybe_reattach(header)
                    except FileNotFoundError:
                        bank = header.get("bank")
                        endpoint.send_error(
                            "BankUnavailableError",
                            f"bank segment {getattr(bank, 'segment', '?')} "
                            "vanished before attach",
                        )
                        continue
                    payload, spans = _score(header, arrays)
                    if action == "torn":
                        if hasattr(endpoint, "skew_generation"):
                            endpoint.skew_generation()
                        else:
                            # No shared-memory generation to tear on this
                            # transport — degrade to a dropped connection.
                            endpoint.close()
                            connection.close()
                            os._exit(19)
                    endpoint.send_ok(None, payload, spans)
                elif op == "ping":
                    endpoint.send_ok(os.getpid(), [], [])
                else:
                    endpoint.send_error("ValueError", f"unknown op {op!r}")
            except Exception as error:
                if stats is not None:
                    stats.record_error()
                endpoint.send_error(type(error).__name__, str(error))
    finally:
        endpoint.close()
        connection.close()
        if stats is not None:
            stats.close()
        attached.close()


__all__ = ["worker_main"]
