"""LeHDC — the paper's primary contribution.

LeHDC trains the class hypervectors of a binary HDC classifier by viewing the
classifier as a wide single-layer binary neural network (Fig. 4) and
optimising that BNN with softmax cross-entropy, weight decay, dropout, and
Adam (Eq. 8-10).  After training, the binarised weights *are* the class
hypervectors; inference is the standard HDC nearest-Hamming rule with zero
additional cost.

Public entry points:

* :class:`LeHDCClassifier` - drop-in HDC classifier trained the LeHDC way
  (operates on encoded hypervectors, like every classifier in
  :mod:`repro.classifiers`);
* :class:`LeHDCConfig` / :data:`PAPER_CONFIGS` - the Table 2 hyper-parameter
  sets;
* :class:`BNNTrainer` / :class:`TrainingHistory` - the underlying training
  loop, exposed for ablation studies and the trajectory figures.
"""

from repro.core.configs import DEFAULT_CONFIG, PAPER_CONFIGS, LeHDCConfig
from repro.core.bnn_model import BNNTrainer, SingleLayerBNN, TrainingHistory
from repro.core.lehdc import LeHDCClassifier
from repro.core.nonbinary_lehdc import NonBinaryLeHDCClassifier

__all__ = [
    "LeHDCConfig",
    "PAPER_CONFIGS",
    "DEFAULT_CONFIG",
    "SingleLayerBNN",
    "BNNTrainer",
    "TrainingHistory",
    "LeHDCClassifier",
    "NonBinaryLeHDCClassifier",
]
