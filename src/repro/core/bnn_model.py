"""The wide single-layer BNN of Fig. 4 and its training loop.

The model is ``logits = BinaryLinear(Dropout(En(x)))`` with ``D`` inputs and
``K`` outputs and *no* activation at the output (Sec. 4: the non-binary
outputs feed the argmax directly).  The trainer implements the LeHDC recipe:

* softmax cross-entropy loss with one-hot labels (Eq. 9);
* L2 weight decay on the latent (non-binary) weights (Eq. 10);
* dropout on the encoded hypervector;
* Adam on the latent weights, which accumulate small gradients while the
  forward pass always uses their binarisation (Eq. 8);
* learning-rate decay when the training loss increases (Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.configs import LeHDCConfig
from repro.kernels.linear import as_float
from repro.nn.layers import BinaryLinear, Dropout
from repro.nn.losses import cross_entropy_from_logits
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Momentum, clip_gradient_norm
from repro.nn.schedules import ConstantSchedule, ReduceOnLossIncrease
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_labels, check_matrix, check_positive_int


@dataclass
class TrainingHistory:
    """Per-epoch training record (drives the Fig. 5 trajectory benchmark)."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def best_validation_epoch(self) -> Optional[int]:
        """Index of the epoch with the highest validation accuracy, if tracked."""
        if not self.validation_accuracy:
            return None
        return int(np.argmax(self.validation_accuracy))


class SingleLayerBNN(Module):
    """Dropout + binary linear layer: the BNN equivalent of a binary HDC classifier.

    Parameters
    ----------
    dimension:
        Input width ``D`` (the hypervector dimension).
    num_classes:
        Output width ``K``.
    dropout_rate:
        Dropout probability on the input hypervector (0 disables).
    latent_clip, init_scale, seed:
        Forwarded to :class:`~repro.nn.layers.BinaryLinear`.
    """

    def __init__(
        self,
        dimension: int,
        num_classes: int,
        dropout_rate: float = 0.5,
        latent_clip: Optional[float] = 1.0,
        init_scale: float = 0.01,
        seed: SeedLike = None,
    ):
        super().__init__()
        rng = ensure_rng(seed)
        self.dimension = check_positive_int(dimension, "dimension")
        self.num_classes = check_positive_int(num_classes, "num_classes")
        self.dropout = Dropout(dropout_rate, seed=rng)
        self.linear = BinaryLinear(
            self.dimension,
            self.num_classes,
            latent_clip=latent_clip,
            init_scale=init_scale,
            seed=rng,
        )

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.linear.forward(self.dropout.forward(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.dropout.backward(self.linear.backward(grad_output))

    @property
    def class_hypervectors(self) -> np.ndarray:
        """Binary class hypervectors ``sgn(C_nb)`` with shape ``(K, D)`` (int8)."""
        return self.linear.binary_weight.T.astype(np.int8)

    @property
    def latent_class_hypervectors(self) -> np.ndarray:
        """Latent (non-binary) class hypervectors, shape ``(K, D)`` (policy dtype)."""
        return self.linear.weight.value.T.copy()


class BNNTrainer:
    """Mini-batch trainer implementing the LeHDC optimisation recipe.

    Parameters
    ----------
    model:
        The :class:`SingleLayerBNN` to train (modified in place).
    config:
        Hyper-parameters; see :class:`~repro.core.configs.LeHDCConfig`.
    seed:
        Seed or generator for mini-batch shuffling.
    """

    def __init__(
        self, model: SingleLayerBNN, config: LeHDCConfig, seed: SeedLike = None
    ):
        self.model = model
        self.config = config
        self.rng = ensure_rng(seed)
        self.optimizer = self._build_optimizer()
        if config.lr_decay_factor < 1.0:
            self.schedule = ReduceOnLossIncrease(
                self.optimizer,
                factor=config.lr_decay_factor,
                patience=config.lr_decay_patience,
            )
        else:
            self.schedule = ConstantSchedule(self.optimizer)
        self.history = TrainingHistory()

    def _build_optimizer(self):
        config = self.config
        parameters = self.model.parameters()
        if config.optimizer == "adam":
            return Adam(
                parameters,
                learning_rate=config.learning_rate,
                weight_decay=config.weight_decay,
                decoupled_weight_decay=config.decoupled_weight_decay,
            )
        if config.optimizer == "momentum":
            return Momentum(
                parameters,
                learning_rate=config.learning_rate,
                weight_decay=config.weight_decay,
                decoupled_weight_decay=config.decoupled_weight_decay,
            )
        return SGD(
            parameters,
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
            decoupled_weight_decay=config.decoupled_weight_decay,
        )

    # ---------------------------------------------------------------- train
    def train(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        validation_hypervectors: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
    ) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history.

        Parameters
        ----------
        hypervectors, labels:
            Encoded training samples (``(n, D)`` bipolar) and integer labels.
        validation_hypervectors, validation_labels:
            Optional held-out set whose accuracy is recorded each epoch.
        epochs:
            Override ``config.epochs`` (used by the trajectory benchmarks).
        """
        hypervectors = check_matrix(hypervectors, "hypervectors")
        labels = check_labels(labels, hypervectors.shape[0], self.model.num_classes)
        if (validation_hypervectors is None) != (validation_labels is None):
            raise ValueError(
                "validation_hypervectors and validation_labels must be given together"
            )
        if validation_hypervectors is not None:
            validation_hypervectors = check_matrix(
                validation_hypervectors,
                "validation_hypervectors",
                n_columns=hypervectors.shape[1],
            )
            validation_labels = check_labels(
                validation_labels,
                validation_hypervectors.shape[0],
                self.model.num_classes,
            )

        total_epochs = self.config.epochs if epochs is None else int(epochs)
        # Policy-dtype cast (float32 by default): the ±1 hypervectors and the
        # integer dot products they produce are exactly representable, and the
        # latent weights are in the same dtype, so the whole epoch stays in
        # one precision with no per-batch up-casts.
        inputs = as_float(hypervectors)
        num_samples = inputs.shape[0]
        batch_size = min(self.config.batch_size, num_samples)

        for _ in range(total_epochs):
            self.model.train()
            order = self.rng.permutation(num_samples)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, num_samples, batch_size):
                batch_indices = order[start : start + batch_size]
                batch_inputs = inputs[batch_indices]
                batch_labels = labels[batch_indices]

                logits = self.model.forward(batch_inputs)
                loss, grad_logits = cross_entropy_from_logits(logits, batch_labels)
                epoch_loss += loss * batch_indices.shape[0]
                correct += int((np.argmax(logits, axis=1) == batch_labels).sum())

                self.model.zero_grad()
                self.model.backward(grad_logits)
                if self.config.grad_clip_norm is not None:
                    clip_gradient_norm(
                        self.model.parameters(), self.config.grad_clip_norm
                    )
                self.optimizer.step()
                self.model.linear.clip_latent()

            epoch_loss /= num_samples
            self.history.train_loss.append(epoch_loss)
            self.history.train_accuracy.append(correct / num_samples)
            self.history.learning_rate.append(self.optimizer.learning_rate)
            if validation_hypervectors is not None:
                self.history.validation_accuracy.append(
                    self.evaluate(validation_hypervectors, validation_labels)
                )
            self.schedule.step(epoch_loss)

        return self.history

    # ------------------------------------------------------------- evaluate
    def evaluate(self, hypervectors: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the current *binary* weights on a labelled set."""
        self.model.eval()
        logits = self.model.forward(as_float(hypervectors))
        predictions = np.argmax(logits, axis=1)
        accuracy = float(np.mean(predictions == np.asarray(labels)))
        self.model.train()
        return accuracy


__all__ = ["SingleLayerBNN", "BNNTrainer", "TrainingHistory"]
