"""LeHDC training configurations, including the paper's Table 2 settings.

Table 2 of the paper lists, per dataset: weight decay (WD), learning rate
(LR), batch size (B), dropout rate (DR), and number of epochs.  Those values
are reproduced verbatim in :data:`PAPER_CONFIGS`.  :class:`LeHDCConfig` adds
the knobs the paper describes in prose (Adam optimiser, learning-rate decay on
loss increase, latent-weight handling) with defaults matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class LeHDCConfig:
    """Hyper-parameters for one LeHDC training run.

    Attributes
    ----------
    learning_rate:
        Adam learning rate (Table 2 "LR").
    weight_decay:
        L2 penalty coefficient ``lambda`` of Eq. 10 (Table 2 "WD").
    batch_size:
        Mini-batch size (Table 2 "B").
    dropout_rate:
        Dropout probability applied to the encoded hypervector (Table 2 "DR").
    epochs:
        Number of passes over the training set (Table 2 "Epochs").
    optimizer:
        ``"adam"`` (paper's choice), ``"momentum"`` or ``"sgd"`` for ablations.
    decoupled_weight_decay:
        Apply weight decay decoupled from the Adam moments (AdamW style) when
        ``True``; fold it into the gradient (the literal Eq. 10) when ``False``.
    latent_clip:
        Clip range for latent weights (BinaryConnect style); ``None`` disables.
    lr_decay_factor / lr_decay_patience:
        Parameters of the reduce-on-loss-increase schedule the paper mentions;
        a factor of 1.0 disables the schedule.
    init_scale:
        Magnitude of the random latent-weight initialisation.
    warm_start_from_centroids:
        If ``True``, initialise the latent weights from the baseline HDC
        centroids instead of randomly (an extension ablation; the paper
        initialises randomly).
    validation_fraction:
        Fraction of the training set held out to report per-epoch validation
        accuracy in the training history (0 disables the split; the paper
        mentions the validation-set ratio as an implicit hyper-parameter).
    grad_clip_norm:
        Optional global gradient-norm clip; ``None`` disables.
    """

    learning_rate: float = 0.01
    weight_decay: float = 0.05
    batch_size: int = 64
    dropout_rate: float = 0.5
    epochs: int = 100
    optimizer: str = "adam"
    decoupled_weight_decay: bool = True
    latent_clip: Optional[float] = 1.0
    lr_decay_factor: float = 0.5
    lr_decay_patience: int = 1
    init_scale: float = 0.01
    warm_start_from_centroids: bool = False
    validation_fraction: float = 0.0
    grad_clip_norm: Optional[float] = None

    def __post_init__(self):
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")
        check_positive_int(self.batch_size, "batch_size")
        check_probability(self.dropout_rate, "dropout_rate", inclusive_one=False)
        check_positive_int(self.epochs, "epochs")
        if self.optimizer not in ("adam", "momentum", "sgd"):
            raise ValueError(
                f"optimizer must be 'adam', 'momentum' or 'sgd', got {self.optimizer!r}"
            )
        if self.latent_clip is not None and self.latent_clip <= 0:
            raise ValueError(f"latent_clip must be positive or None, got {self.latent_clip}")
        if not (0.0 < self.lr_decay_factor <= 1.0):
            raise ValueError(
                f"lr_decay_factor must be in (0, 1], got {self.lr_decay_factor}"
            )
        check_positive_int(self.lr_decay_patience, "lr_decay_patience")
        if self.init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {self.init_scale}")
        check_probability(self.validation_fraction, "validation_fraction", inclusive_one=False)
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError(
                f"grad_clip_norm must be positive or None, got {self.grad_clip_norm}"
            )

    def with_overrides(self, **overrides) -> "LeHDCConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **overrides)


#: Table 2 of the paper, keyed by the dataset names used in the evaluation.
PAPER_CONFIGS: Dict[str, LeHDCConfig] = {
    "mnist": LeHDCConfig(
        weight_decay=0.05, learning_rate=0.01, batch_size=64, dropout_rate=0.5, epochs=100
    ),
    "fashion_mnist": LeHDCConfig(
        weight_decay=0.03, learning_rate=0.1, batch_size=256, dropout_rate=0.3, epochs=200
    ),
    "cifar10": LeHDCConfig(
        weight_decay=0.03, learning_rate=0.001, batch_size=512, dropout_rate=0.3, epochs=200
    ),
    "ucihar": LeHDCConfig(
        weight_decay=0.05, learning_rate=0.01, batch_size=64, dropout_rate=0.5, epochs=100
    ),
    "isolet": LeHDCConfig(
        weight_decay=0.05, learning_rate=0.01, batch_size=64, dropout_rate=0.5, epochs=100
    ),
    "pamap": LeHDCConfig(
        weight_decay=0.05, learning_rate=0.01, batch_size=64, dropout_rate=0.5, epochs=100
    ),
}

#: Configuration used when no dataset-specific entry applies (MNIST row of Table 2).
DEFAULT_CONFIG: LeHDCConfig = PAPER_CONFIGS["mnist"]


def get_paper_config(dataset_name: str) -> LeHDCConfig:
    """Return the Table 2 configuration for *dataset_name* (case-insensitive).

    Unknown names fall back to :data:`DEFAULT_CONFIG`, mirroring the paper's
    "UCIHAR, ISOLET, PAMAP" shared row.
    """
    return PAPER_CONFIGS.get(dataset_name.lower().replace("-", "_"), DEFAULT_CONFIG)


__all__ = ["LeHDCConfig", "PAPER_CONFIGS", "DEFAULT_CONFIG", "get_paper_config"]
