"""LeHDCClassifier: the learning-based HDC training strategy (Sec. 4).

This classifier is a drop-in replacement for any of the heuristic strategies
in :mod:`repro.classifiers`: it consumes the same encoded sample hypervectors,
produces the same kind of binary class hypervectors, and its inference path is
the inherited nearest-Hamming rule.  The only difference — the paper's entire
contribution — is *how* the class hypervectors are found: by training the
equivalent single-layer BNN with Adam, cross-entropy, weight decay and
dropout, then reading the binarised weights back out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.classifiers.baseline import BaselineHDC
from repro.core.bnn_model import BNNTrainer, SingleLayerBNN, TrainingHistory
from repro.core.configs import DEFAULT_CONFIG, LeHDCConfig
from repro.hdc.hypervector import BIPOLAR_DTYPE
from repro.utils.rng import SeedLike


class LeHDCClassifier(HDCClassifierBase):
    """Binary HDC classifier whose class hypervectors are trained as BNN weights.

    Parameters
    ----------
    config:
        Training hyper-parameters (defaults to the paper's MNIST row of
        Table 2); use :func:`repro.core.configs.get_paper_config` to pick the
        per-dataset paper settings.
    seed:
        Seed or generator controlling weight initialisation, dropout masks and
        mini-batch order.

    Attributes
    ----------
    class_hypervectors_:
        ``(K, D)`` int8 binary class hypervectors after :meth:`fit`.
    latent_class_hypervectors_:
        ``(K, D)`` float latent weights ``C_nb``; kept for inspection and for
        warm-starting further training, never used at inference.
    history_:
        :class:`~repro.core.bnn_model.TrainingHistory` of the fit.
    """

    def __init__(self, config: Optional[LeHDCConfig] = None, seed: SeedLike = None):
        super().__init__(seed=seed)
        self.config = config if config is not None else DEFAULT_CONFIG
        self.history_: Optional[TrainingHistory] = None
        self.latent_class_hypervectors_: Optional[np.ndarray] = None
        self.model_: Optional[SingleLayerBNN] = None

    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        validation_hypervectors: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
    ) -> "LeHDCClassifier":
        """Train class hypervectors by optimising the equivalent BNN.

        Parameters
        ----------
        hypervectors, labels:
            Encoded training samples and integer class labels.
        validation_hypervectors, validation_labels:
            Optional held-out set tracked in ``history_`` (used by the
            ablation and trajectory benchmarks).  If omitted and
            ``config.validation_fraction > 0``, a split of the training set is
            carved out automatically.
        epochs:
            Optional override of ``config.epochs``.
        """
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        dimension = hypervectors.shape[1]

        if (
            validation_hypervectors is None
            and self.config.validation_fraction > 0.0
            and hypervectors.shape[0] >= 10
        ):
            (
                hypervectors,
                labels,
                validation_hypervectors,
                validation_labels,
            ) = self._split_validation(hypervectors, labels)

        model = SingleLayerBNN(
            dimension=dimension,
            num_classes=num_classes,
            dropout_rate=self.config.dropout_rate,
            latent_clip=self.config.latent_clip,
            init_scale=self.config.init_scale,
            seed=self.rng,
        )
        if self.config.warm_start_from_centroids:
            baseline = BaselineHDC(seed=self.rng)
            baseline.fit(hypervectors, labels)
            model.linear.set_latent_from_bipolar(
                baseline.class_hypervectors_.T.astype(np.float64),
                magnitude=self.config.init_scale,
            )

        trainer = BNNTrainer(model, self.config, seed=self.rng)
        self.history_ = trainer.train(
            hypervectors,
            labels,
            validation_hypervectors=validation_hypervectors,
            validation_labels=validation_labels,
            epochs=epochs,
        )

        self.model_ = model
        self.class_hypervectors_ = model.class_hypervectors.astype(BIPOLAR_DTYPE)
        self.latent_class_hypervectors_ = model.latent_class_hypervectors
        self.num_classes_ = num_classes
        return self

    def _split_validation(self, hypervectors: np.ndarray, labels: np.ndarray):
        """Hold out ``config.validation_fraction`` of the data, stratification-free."""
        num_samples = hypervectors.shape[0]
        num_validation = max(1, int(round(num_samples * self.config.validation_fraction)))
        order = self.rng.permutation(num_samples)
        validation_indices = order[:num_validation]
        train_indices = order[num_validation:]
        return (
            hypervectors[train_indices],
            labels[train_indices],
            hypervectors[validation_indices],
            labels[validation_indices],
        )


__all__ = ["LeHDCClassifier"]
