"""Learning-based training for *non-binary* HDC (the paper's footnote 1).

The paper's equivalence argument "also applies to non-binary HDC models by
changing the BNN to a wide single-layer neural network with non-binary
weights" — i.e. a plain perceptron/softmax-regression layer over the encoded
hypervector, whose trained real-valued weight columns become the non-binary
class hypervectors and whose inference measure is cosine similarity.

:class:`NonBinaryLeHDCClassifier` implements that variant with the same
training recipe as binary LeHDC (Adam, cross-entropy, weight decay, dropout)
minus the binarisation.  It serves two purposes in the reproduction:

* it completes the paper's claim space (binary and non-binary HDC both map to
  single-layer networks trainable in a principled way);
* it provides an informative upper reference in experiments: binarising its
  weights (``to_binary()``) shows how much accuracy the binary constraint
  itself costs, separating the effect of the training strategy from the effect
  of quantisation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classifiers.base import HDCClassifierBase
from repro.core.bnn_model import TrainingHistory
from repro.core.configs import DEFAULT_CONFIG, LeHDCConfig
from repro.hdc.hypervector import sign_with_ties
from repro.nn.layers import Dropout, Linear
from repro.nn.losses import cross_entropy_from_logits
from repro.nn.optim import SGD, Adam, Momentum
from repro.nn.schedules import ConstantSchedule, ReduceOnLossIncrease
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fitted, check_matrix


class NonBinaryLeHDCClassifier(HDCClassifierBase):
    """Non-binary HDC classifier trained as a single-layer (real-weight) network.

    Parameters
    ----------
    config:
        The same hyper-parameter bundle as binary LeHDC; ``latent_clip`` is
        ignored (there are no latent weights — the real weights *are* the
        model).
    seed:
        Seed or generator for initialisation, dropout and batching.

    Attributes
    ----------
    nonbinary_class_hypervectors_:
        ``(K, D)`` float64 class hypervectors after :meth:`fit`.
    class_hypervectors_:
        Their binarisation (``sgn``), so the model can also be dropped into a
        binary inference datapath for comparison.
    history_:
        Per-epoch training history.
    """

    def __init__(self, config: Optional[LeHDCConfig] = None, seed: SeedLike = None):
        super().__init__(seed=seed)
        self.config = config if config is not None else DEFAULT_CONFIG
        self.nonbinary_class_hypervectors_: Optional[np.ndarray] = None
        self.history_: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        hypervectors: np.ndarray,
        labels: np.ndarray,
        validation_hypervectors: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
        epochs: Optional[int] = None,
    ) -> "NonBinaryLeHDCClassifier":
        """Train real-valued class hypervectors by softmax-regression on the encoding."""
        hypervectors, labels, num_classes = self._validate_fit_inputs(
            hypervectors, labels
        )
        if (validation_hypervectors is None) != (validation_labels is None):
            raise ValueError(
                "validation_hypervectors and validation_labels must be given together"
            )
        config = self.config
        dimension = hypervectors.shape[1]
        total_epochs = config.epochs if epochs is None else int(epochs)

        dropout = Dropout(config.dropout_rate, seed=self.rng)
        linear = Linear(
            dimension, num_classes, bias=False, init_scale=config.init_scale, seed=self.rng
        )
        optimizer = self._build_optimizer(linear, config)
        schedule = (
            ReduceOnLossIncrease(
                optimizer, factor=config.lr_decay_factor, patience=config.lr_decay_patience
            )
            if config.lr_decay_factor < 1.0
            else ConstantSchedule(optimizer)
        )

        inputs = hypervectors.astype(np.float64)
        num_samples = inputs.shape[0]
        batch_size = min(config.batch_size, num_samples)
        history = TrainingHistory()

        for _ in range(total_epochs):
            dropout.train()
            order = self.rng.permutation(num_samples)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                batch_inputs = dropout.forward(inputs[batch])
                logits = linear.forward(batch_inputs)
                loss, grad_logits = cross_entropy_from_logits(logits, labels[batch])
                epoch_loss += loss * batch.shape[0]
                correct += int((np.argmax(logits, axis=1) == labels[batch]).sum())
                linear.zero_grad()
                dropout.backward(linear.backward(grad_logits))
                optimizer.step()
            history.train_loss.append(epoch_loss / num_samples)
            history.train_accuracy.append(correct / num_samples)
            history.learning_rate.append(optimizer.learning_rate)
            if validation_hypervectors is not None:
                self.nonbinary_class_hypervectors_ = linear.weight.value.T.copy()
                history.validation_accuracy.append(
                    float(
                        np.mean(
                            self._cosine_predict(validation_hypervectors)
                            == validation_labels
                        )
                    )
                )
            schedule.step(history.train_loss[-1])

        self.nonbinary_class_hypervectors_ = linear.weight.value.T.copy()
        self.class_hypervectors_ = sign_with_ties(
            self.nonbinary_class_hypervectors_, rng=self.rng
        )
        self.num_classes_ = num_classes
        self.history_ = history
        return self

    def _build_optimizer(self, linear, config):
        parameters = linear.parameters()
        kwargs = dict(
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
            decoupled_weight_decay=config.decoupled_weight_decay,
        )
        if config.optimizer == "adam":
            return Adam(parameters, **kwargs)
        if config.optimizer == "momentum":
            return Momentum(parameters, **kwargs)
        return SGD(parameters, **kwargs)

    # ------------------------------------------------------------ inference
    def decision_scores(self, hypervectors: np.ndarray) -> np.ndarray:
        """Cosine similarity to the non-binary class hypervectors (Sec. 3.1)."""
        check_fitted(self, "nonbinary_class_hypervectors_")
        hypervectors = check_matrix(
            hypervectors,
            "hypervectors",
            n_columns=self.nonbinary_class_hypervectors_.shape[1],
        )
        return self._cosine_scores(hypervectors.astype(np.float64))

    def _cosine_scores(self, samples: np.ndarray) -> np.ndarray:
        centroids = self.nonbinary_class_hypervectors_
        sample_norms = np.linalg.norm(samples, axis=1, keepdims=True)
        centroid_norms = np.linalg.norm(centroids, axis=1, keepdims=True).T
        sample_norms[sample_norms == 0] = 1.0
        centroid_norms[centroid_norms == 0] = 1.0
        return (samples @ centroids.T) / (sample_norms * centroid_norms)

    def _cosine_predict(self, hypervectors: np.ndarray) -> np.ndarray:
        return np.argmax(self._cosine_scores(np.asarray(hypervectors, dtype=np.float64)), axis=1)

    def to_binary(self) -> np.ndarray:
        """Return the binarised (``sgn``) class hypervectors for a binary datapath."""
        check_fitted(self, "nonbinary_class_hypervectors_")
        return self.class_hypervectors_.copy()


__all__ = ["NonBinaryLeHDCClassifier"]
