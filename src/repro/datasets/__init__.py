"""Benchmark datasets.

The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10, UCIHAR, ISOLET and
PAMAP2.  This environment has no network access, so the registry serves
*synthetic substitutes* that preserve each dataset's shape (feature count,
class count, relative difficulty) and exercise the identical code path
(real-valued feature vectors -> quantisation -> record encoding -> HDC
classification).  When the real files are available on disk (see
:mod:`repro.datasets.loaders`), the registry transparently loads them instead.

Entry points:

* :func:`get_dataset(name, profile=..., seed=...) <repro.datasets.registry.get_dataset>`
* :func:`list_datasets() <repro.datasets.registry.list_datasets>`
* :class:`~repro.datasets.base.Dataset` - the container every loader returns.
"""

from repro.datasets.base import Dataset, train_test_split
from repro.datasets.synthetic import (
    make_gaussian_classes,
    make_image_like_classes,
    SyntheticSpec,
)
from repro.datasets.registry import DATASET_SPECS, get_dataset, list_datasets
from repro.datasets.loaders import load_csv_dataset, load_idx_file

__all__ = [
    "Dataset",
    "train_test_split",
    "make_gaussian_classes",
    "make_image_like_classes",
    "SyntheticSpec",
    "DATASET_SPECS",
    "get_dataset",
    "list_datasets",
    "load_csv_dataset",
    "load_idx_file",
]
