"""Dataset container and split helpers shared by all loaders/generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_labels, check_matrix


@dataclass
class Dataset:
    """A supervised classification dataset with a fixed train/test split.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"fashion_mnist"``).
    train_features, test_features:
        ``(n, num_features)`` float64 matrices.
    train_labels, test_labels:
        ``(n,)`` int64 label vectors in ``[0, num_classes)``.
    metadata:
        Free-form provenance: whether the data is synthetic or loaded from
        disk, the generator parameters, the paper dataset it substitutes for.
    """

    name: str
    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.train_features = check_matrix(
            self.train_features, "train_features", dtype=np.float64
        )
        self.test_features = check_matrix(
            self.test_features,
            "test_features",
            dtype=np.float64,
            n_columns=self.train_features.shape[1],
        )
        self.train_labels = check_labels(self.train_labels, self.train_features.shape[0])
        self.test_labels = check_labels(self.test_labels, self.test_features.shape[0])

    # -------------------------------------------------------------- queries
    @property
    def num_features(self) -> int:
        """Number of raw features per sample."""
        return int(self.train_features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of classes (1 + the largest label across both splits)."""
        return int(max(self.train_labels.max(), self.test_labels.max())) + 1

    @property
    def num_train(self) -> int:
        """Number of training samples."""
        return int(self.train_features.shape[0])

    @property
    def num_test(self) -> int:
        """Number of test samples."""
        return int(self.test_features.shape[0])

    def describe(self) -> str:
        """One-line human-readable summary used by examples and benchmarks."""
        return (
            f"{self.name}: {self.num_train} train / {self.num_test} test, "
            f"{self.num_features} features, {self.num_classes} classes"
        )

    # ------------------------------------------------------------ transforms
    def subsample(
        self,
        max_train: Optional[int] = None,
        max_test: Optional[int] = None,
        seed: SeedLike = None,
    ) -> "Dataset":
        """Return a copy restricted to at most the given number of samples.

        Sampling is without replacement and label-stratified is not enforced;
        with the class-balanced generators used here a uniform subsample stays
        approximately balanced.
        """
        rng = ensure_rng(seed)
        train_idx = _subsample_indices(self.num_train, max_train, rng)
        test_idx = _subsample_indices(self.num_test, max_test, rng)
        return Dataset(
            name=self.name,
            train_features=self.train_features[train_idx],
            train_labels=self.train_labels[train_idx],
            test_features=self.test_features[test_idx],
            test_labels=self.test_labels[test_idx],
            metadata={**self.metadata, "subsampled": True},
        )


def _subsample_indices(
    total: int, maximum: Optional[int], rng: np.random.Generator
) -> np.ndarray:
    if maximum is None or maximum >= total:
        return np.arange(total)
    if maximum < 1:
        raise ValueError(f"subsample size must be >= 1, got {maximum}")
    return rng.choice(total, size=maximum, replace=False)


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split a feature matrix / label vector pair.

    Returns ``(train_features, train_labels, test_features, test_labels)``.
    """
    features = check_matrix(features, "features", dtype=np.float64)
    labels = check_labels(labels, features.shape[0])
    if not (0.0 < test_fraction < 1.0):
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(seed)
    order = rng.permutation(features.shape[0])
    num_test = max(1, int(round(test_fraction * features.shape[0])))
    test_idx = order[:num_test]
    train_idx = order[num_test:]
    if train_idx.size == 0:
        raise ValueError("split left no training samples; lower test_fraction")
    return (
        features[train_idx],
        labels[train_idx],
        features[test_idx],
        labels[test_idx],
    )


__all__ = ["Dataset", "train_test_split"]
