"""Loaders for real benchmark files, used when the data is present on disk.

The reproduction defaults to synthetic substitutes (no network access), but if
the user drops the original files under ``$REPRO_DATA_DIR`` the registry will
pick them up:

* MNIST / Fashion-MNIST in the original IDX format
  (``train-images-idx3-ubyte`` etc.) under ``<data_dir>/<name>/``;
* UCI-style datasets as a pair of CSV files ``train.csv`` / ``test.csv`` whose
  last column is the integer label.

Only stdlib + NumPy parsing is used; nothing here downloads anything.
"""

from __future__ import annotations

import gzip
import os
import struct
from pathlib import Path
from typing import Optional

import numpy as np

from repro.datasets.base import Dataset

#: Environment variable pointing at a directory of real benchmark files.
DATA_DIR_ENV = "REPRO_DATA_DIR"

_IDX_DTYPES = {
    0x08: np.uint8,
    0x09: np.int8,
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}


def data_directory() -> Optional[Path]:
    """The configured real-data directory, or ``None`` if unset/missing."""
    configured = os.environ.get(DATA_DIR_ENV)
    if not configured:
        return None
    path = Path(configured)
    return path if path.is_dir() else None


def load_idx_file(path: Path) -> np.ndarray:
    """Parse a (possibly gzipped) IDX file into a NumPy array.

    The IDX format is the container MNIST and Fashion-MNIST ship in: a magic
    number encoding dtype and rank, followed by big-endian dimension sizes and
    the raw data.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        magic = handle.read(4)
        if len(magic) != 4 or magic[0] != 0 or magic[1] != 0:
            raise ValueError(f"{path} is not an IDX file (bad magic {magic!r})")
        dtype_code, rank = magic[2], magic[3]
        if dtype_code not in _IDX_DTYPES:
            raise ValueError(f"{path}: unsupported IDX dtype code 0x{dtype_code:02x}")
        shape = struct.unpack(f">{rank}I", handle.read(4 * rank))
        data = np.frombuffer(handle.read(), dtype=_IDX_DTYPES[dtype_code])
    expected = int(np.prod(shape))
    if data.size != expected:
        raise ValueError(
            f"{path}: expected {expected} elements for shape {shape}, got {data.size}"
        )
    return data.reshape(shape)


def load_idx_dataset(directory: Path, name: str) -> Dataset:
    """Load an MNIST-layout dataset (four IDX files) from *directory*."""
    directory = Path(directory)
    files = {
        "train_images": "train-images-idx3-ubyte",
        "train_labels": "train-labels-idx1-ubyte",
        "test_images": "t10k-images-idx3-ubyte",
        "test_labels": "t10k-labels-idx1-ubyte",
    }
    arrays = {}
    for key, stem in files.items():
        candidates = [directory / stem, directory / f"{stem}.gz"]
        found = next((c for c in candidates if c.exists()), None)
        if found is None:
            raise FileNotFoundError(f"{directory} is missing {stem}[.gz]")
        arrays[key] = load_idx_file(found)
    train_images = arrays["train_images"].reshape(arrays["train_images"].shape[0], -1)
    test_images = arrays["test_images"].reshape(arrays["test_images"].shape[0], -1)
    return Dataset(
        name=name,
        train_features=train_images.astype(np.float64) / 255.0,
        train_labels=arrays["train_labels"].astype(np.int64),
        test_features=test_images.astype(np.float64) / 255.0,
        test_labels=arrays["test_labels"].astype(np.int64),
        metadata={"source": "idx", "directory": str(directory)},
    )


def load_csv_dataset(directory: Path, name: str) -> Dataset:
    """Load ``train.csv`` / ``test.csv`` (last column = integer label)."""
    directory = Path(directory)
    splits = {}
    for split in ("train", "test"):
        path = directory / f"{split}.csv"
        if not path.exists():
            raise FileNotFoundError(f"{directory} is missing {split}.csv")
        table = np.loadtxt(path, delimiter=",", dtype=np.float64)
        if table.ndim == 1:
            table = table.reshape(1, -1)
        splits[split] = (table[:, :-1], table[:, -1].astype(np.int64))
    return Dataset(
        name=name,
        train_features=splits["train"][0],
        train_labels=splits["train"][1],
        test_features=splits["test"][0],
        test_labels=splits["test"][1],
        metadata={"source": "csv", "directory": str(directory)},
    )


def try_load_real_dataset(name: str) -> Optional[Dataset]:
    """Load the real *name* dataset from ``$REPRO_DATA_DIR`` if available.

    Returns ``None`` (caller falls back to the synthetic substitute) when the
    directory or the expected files are absent.
    """
    base = data_directory()
    if base is None:
        return None
    directory = base / name
    if not directory.is_dir():
        return None
    try:
        if (directory / "train-images-idx3-ubyte").exists() or (
            directory / "train-images-idx3-ubyte.gz"
        ).exists():
            return load_idx_dataset(directory, name)
        if (directory / "train.csv").exists():
            return load_csv_dataset(directory, name)
    except (OSError, ValueError):
        return None
    return None


__all__ = [
    "DATA_DIR_ENV",
    "data_directory",
    "load_idx_file",
    "load_idx_dataset",
    "load_csv_dataset",
    "try_load_real_dataset",
]
