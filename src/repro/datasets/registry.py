"""Dataset registry: the six paper benchmarks and their synthetic substitutes.

Each entry records the generator parameters of the substitute *and* the
accuracies the paper reports for that dataset (Table 1), so the benchmark
harness can print paper-vs-measured side by side.

Profiles scale the sample counts so the same benchmark code can run as a quick
smoke test (``"tiny"``), a laptop-scale benchmark (``"small"``, the default),
or something closer to the paper's setting (``"full"``):

========  ==========================  =================
profile   train/test size multiplier  intended use
========  ==========================  =================
tiny      0.15                        unit/integration tests
small     1.0                         default benchmarks
full      4.0                         longer runs, closer to paper scale
========  ==========================  =================
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.loaders import try_load_real_dataset
from repro.datasets.synthetic import (
    SyntheticSpec,
    make_gaussian_classes,
    make_image_like_classes,
)
from repro.utils.rng import SeedLike

#: Accuracy rows of Table 1 (percent), used for paper-vs-measured reports.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "mnist": {"baseline": 80.36, "multimodel": 84.43, "retraining": 89.28, "lehdc": 94.74},
    "fashion_mnist": {"baseline": 68.04, "multimodel": 74.05, "retraining": 80.26, "lehdc": 87.11},
    "cifar10": {"baseline": 29.55, "multimodel": 22.66, "retraining": 28.42, "lehdc": 46.10},
    "ucihar": {"baseline": 82.46, "multimodel": 82.31, "retraining": 91.25, "lehdc": 95.23},
    "isolet": {"baseline": 87.42, "multimodel": 83.47, "retraining": 92.70, "lehdc": 94.89},
    "pamap": {"baseline": 77.66, "multimodel": 91.87, "retraining": 95.64, "lehdc": 99.55},
}

#: Synthetic substitutes for the paper's benchmarks.  Shapes follow the real
#: datasets (class counts exactly; feature counts reduced to keep the record
#: encoder laptop-fast); difficulty parameters are chosen so the relative
#: ordering of training strategies matches Table 1.
DATASET_SPECS: Dict[str, SyntheticSpec] = {
    "mnist": SyntheticSpec(
        name="mnist",
        kind="image",
        num_classes=10,
        num_features=196,  # 14x14, stands in for 28x28
        train_size=2000,
        test_size=600,
        class_sep=1.4,
        clusters_per_class=3,
        noise_std=1.0,
        substitutes_for="MNIST (LeCun et al.)",
        paper_rows=PAPER_TABLE1["mnist"],
    ),
    "fashion_mnist": SyntheticSpec(
        name="fashion_mnist",
        kind="image",
        num_classes=10,
        num_features=196,
        train_size=2000,
        test_size=600,
        class_sep=1.3,
        clusters_per_class=3,
        noise_std=1.1,
        substitutes_for="Fashion-MNIST (Xiao et al.)",
        paper_rows=PAPER_TABLE1["fashion_mnist"],
    ),
    "cifar10": SyntheticSpec(
        name="cifar10",
        kind="image",
        num_classes=10,
        num_features=192,  # 8x8x3, stands in for 32x32x3
        train_size=2000,
        test_size=600,
        class_sep=0.65,
        clusters_per_class=4,
        noise_std=1.6,
        substitutes_for="CIFAR-10 (Krizhevsky)",
        paper_rows=PAPER_TABLE1["cifar10"],
    ),
    "ucihar": SyntheticSpec(
        name="ucihar",
        kind="gaussian",
        num_classes=6,
        num_features=128,  # stands in for 561 engineered features
        train_size=1500,
        test_size=500,
        class_sep=1.4,
        clusters_per_class=4,
        noise_std=1.0,
        noise_feature_fraction=0.15,
        substitutes_for="UCIHAR (Anguita et al.)",
        paper_rows=PAPER_TABLE1["ucihar"],
    ),
    "isolet": SyntheticSpec(
        name="isolet",
        kind="gaussian",
        num_classes=26,
        num_features=128,  # stands in for 617 audio features
        train_size=1560,  # 60 samples per class: few samples per class, many classes
        test_size=520,
        class_sep=1.3,
        clusters_per_class=2,
        noise_std=1.0,
        noise_feature_fraction=0.1,
        substitutes_for="ISOLET (UCI)",
        paper_rows=PAPER_TABLE1["isolet"],
    ),
    "pamap": SyntheticSpec(
        name="pamap",
        kind="gaussian",
        num_classes=12,
        num_features=64,  # stands in for the PAMAP2 IMU channels
        train_size=1800,
        test_size=600,
        class_sep=2.0,
        clusters_per_class=6,
        noise_std=0.8,
        noise_feature_fraction=0.1,
        substitutes_for="PAMAP2 (Reiss & Stricker)",
        paper_rows=PAPER_TABLE1["pamap"],
    ),
}

_PROFILE_MULTIPLIERS = {"tiny": 0.15, "small": 1.0, "full": 4.0}


def list_datasets() -> List[str]:
    """Names of every registered benchmark, in the paper's Table 1 order."""
    return list(DATASET_SPECS)


def get_dataset(
    name: str,
    profile: str = "small",
    seed: SeedLike = 0,
    prefer_real: bool = True,
) -> Dataset:
    """Build (or load) a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive, ``-`` and ``_``
        interchangeable).
    profile:
        ``"tiny"``, ``"small"`` or ``"full"`` — scales the synthetic sample
        counts (ignored when real data is loaded from disk).
    seed:
        Seed for the synthetic generator.
    prefer_real:
        When ``True`` (default) and the real files are present under
        ``$REPRO_DATA_DIR/<name>``, load those instead of generating data.
    """
    key = name.lower().replace("-", "_")
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    if profile not in _PROFILE_MULTIPLIERS:
        raise ValueError(
            f"profile must be one of {sorted(_PROFILE_MULTIPLIERS)}, got {profile!r}"
        )

    if prefer_real:
        real = try_load_real_dataset(key)
        if real is not None:
            return real

    spec = DATASET_SPECS[key]
    multiplier = _PROFILE_MULTIPLIERS[profile]
    train_size = max(spec.num_classes * 4, int(round(spec.train_size * multiplier)))
    test_size = max(spec.num_classes * 2, int(round(spec.test_size * multiplier)))

    if spec.kind == "image":
        channels = 3 if key == "cifar10" else 1
        image_size = int(round(np.sqrt(spec.num_features / channels)))
        features = make_image_like_classes(
            num_classes=spec.num_classes,
            image_size=image_size,
            channels=channels,
            train_size=train_size,
            test_size=test_size,
            class_sep=spec.class_sep,
            clusters_per_class=spec.clusters_per_class,
            noise_std=spec.noise_std,
            seed=seed,
        )
    else:
        features = make_gaussian_classes(
            num_classes=spec.num_classes,
            num_features=spec.num_features,
            train_size=train_size,
            test_size=test_size,
            class_sep=spec.class_sep,
            clusters_per_class=spec.clusters_per_class,
            noise_std=spec.noise_std,
            noise_feature_fraction=spec.noise_feature_fraction,
            seed=seed,
        )

    train_features, train_labels, test_features, test_labels = features
    return Dataset(
        name=key,
        train_features=train_features,
        train_labels=train_labels,
        test_features=test_features,
        test_labels=test_labels,
        metadata={
            "source": "synthetic",
            "profile": profile,
            "seed": seed,
            "substitutes_for": spec.substitutes_for,
            "spec": spec,
        },
    )


__all__ = ["DATASET_SPECS", "PAPER_TABLE1", "get_dataset", "list_datasets"]
