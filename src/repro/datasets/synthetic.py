"""Synthetic dataset generators.

Two generators cover the paper's six benchmarks:

* :func:`make_gaussian_classes` - multi-cluster Gaussian mixture classes over
  real-valued feature vectors, used for the sensor/speech benchmarks (UCIHAR,
  ISOLET, PAMAP).  Difficulty is controlled by class separation, the number
  of clusters per class (more clusters = centroid training struggles more,
  which is exactly the regime where LeHDC's discriminative training pays off),
  and the fraction of uninformative noise features.

* :func:`make_image_like_classes` - template-based "images": each class has a
  smooth 2-D prototype, each intra-class cluster a deformation of it, and each
  sample adds pixel noise; channels can be stacked for a CIFAR-like layout.
  This keeps the spatial-correlation structure that makes pixel-level record
  encoding meaningful for the CV benchmarks (MNIST, Fashion-MNIST, CIFAR-10).

Both return features scaled to ``[0, 1]`` so the uniform quantiser behaves the
same way it does on normalised image/sensor data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters describing one synthetic benchmark (used by the registry).

    ``kind`` selects the generator (``"gaussian"`` or ``"image"``); the other
    fields are forwarded to it.  ``substitutes_for`` records which paper
    dataset this spec stands in for, and ``paper_rows`` keeps the published
    Table 1 accuracies so EXPERIMENTS.md can print paper-vs-measured tables.
    """

    name: str
    kind: str
    num_classes: int
    num_features: int
    train_size: int
    test_size: int
    class_sep: float
    clusters_per_class: int
    noise_std: float
    noise_feature_fraction: float = 0.0
    substitutes_for: str = ""
    paper_rows: Optional[dict] = None


def _labels_for(
    num_samples: int, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Balanced labels: every class gets floor/ceil(num_samples / K) samples."""
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    return labels.astype(np.int64)


def make_gaussian_classes(
    num_classes: int,
    num_features: int,
    train_size: int,
    test_size: int,
    class_sep: float = 2.0,
    clusters_per_class: int = 1,
    noise_std: float = 1.0,
    noise_feature_fraction: float = 0.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a multi-cluster Gaussian classification problem.

    Parameters
    ----------
    num_classes, num_features:
        Problem shape.
    train_size, test_size:
        Number of samples per split (class-balanced).
    class_sep:
        Distance scale between cluster centres of different classes; larger is
        easier.
    clusters_per_class:
        Number of Gaussian modes per class.  With more than one mode the class
        centroid is a poor summary, so centroid-style HDC training degrades
        while discriminative training (retraining / LeHDC) keeps working —
        the qualitative gap reported in Table 1.
    noise_std:
        Within-cluster standard deviation.
    noise_feature_fraction:
        Fraction of features that carry no class information at all (pure
        noise), mimicking the irrelevant sensor channels of the HAR datasets.
    seed:
        Seed or generator.

    Returns
    -------
    (train_features, train_labels, test_features, test_labels)
        Features scaled to ``[0, 1]`` per feature across both splits.
    """
    num_classes = check_positive_int(num_classes, "num_classes", minimum=2)
    num_features = check_positive_int(num_features, "num_features")
    train_size = check_positive_int(train_size, "train_size", minimum=num_classes)
    test_size = check_positive_int(test_size, "test_size", minimum=num_classes)
    clusters_per_class = check_positive_int(clusters_per_class, "clusters_per_class")
    check_probability(noise_feature_fraction, "noise_feature_fraction")
    if class_sep <= 0 or noise_std <= 0:
        raise ValueError("class_sep and noise_std must be positive")

    rng = ensure_rng(seed)
    num_noise = int(round(noise_feature_fraction * num_features))
    num_informative = num_features - num_noise
    if num_informative < 1:
        raise ValueError("noise_feature_fraction leaves no informative features")

    # Cluster centres: isotropic Gaussian placement scaled by class_sep.
    centres = rng.normal(
        0.0, class_sep, size=(num_classes, clusters_per_class, num_informative)
    )

    def _sample(num_samples: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = _labels_for(num_samples, num_classes, rng)
        cluster_choice = rng.integers(0, clusters_per_class, size=num_samples)
        chosen_centres = centres[labels, cluster_choice]
        informative = chosen_centres + rng.normal(
            0.0, noise_std, size=(num_samples, num_informative)
        )
        if num_noise:
            noise = rng.normal(0.0, noise_std, size=(num_samples, num_noise))
            features = np.concatenate([informative, noise], axis=1)
        else:
            features = informative
        return features, labels

    train_features, train_labels = _sample(train_size)
    test_features, test_labels = _sample(test_size)
    train_features, test_features = _rescale_01(train_features, test_features)
    return train_features, train_labels, test_features, test_labels


def make_image_like_classes(
    num_classes: int,
    image_size: int,
    train_size: int,
    test_size: int,
    channels: int = 1,
    class_sep: float = 2.0,
    clusters_per_class: int = 2,
    noise_std: float = 1.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate image-like data: smooth class templates + deformations + noise.

    Each class owns ``clusters_per_class`` prototype images built by smoothing
    white noise (so neighbouring pixels are correlated, as in natural images);
    a sample is a prototype plus i.i.d. pixel noise.  The flattened feature
    vector has ``channels * image_size**2`` entries in ``[0, 1]``.

    ``class_sep`` scales the prototype contrast relative to ``noise_std``; a
    CIFAR-like benchmark uses low separation, many clusters and three channels,
    an MNIST-like one uses higher separation and a single channel.
    """
    num_classes = check_positive_int(num_classes, "num_classes", minimum=2)
    image_size = check_positive_int(image_size, "image_size", minimum=2)
    channels = check_positive_int(channels, "channels")
    train_size = check_positive_int(train_size, "train_size", minimum=num_classes)
    test_size = check_positive_int(test_size, "test_size", minimum=num_classes)
    clusters_per_class = check_positive_int(clusters_per_class, "clusters_per_class")
    if class_sep <= 0 or noise_std <= 0:
        raise ValueError("class_sep and noise_std must be positive")

    rng = ensure_rng(seed)
    num_pixels = channels * image_size * image_size
    templates = np.empty((num_classes, clusters_per_class, num_pixels))
    for class_index in range(num_classes):
        base = _smooth_image(image_size, channels, rng)
        for cluster_index in range(clusters_per_class):
            deformation = 0.5 * _smooth_image(image_size, channels, rng)
            templates[class_index, cluster_index] = class_sep * (base + deformation)

    def _sample(num_samples: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = _labels_for(num_samples, num_classes, rng)
        cluster_choice = rng.integers(0, clusters_per_class, size=num_samples)
        chosen = templates[labels, cluster_choice]
        features = chosen + rng.normal(0.0, noise_std, size=(num_samples, num_pixels))
        return features, labels

    train_features, train_labels = _sample(train_size)
    test_features, test_labels = _sample(test_size)
    train_features, test_features = _rescale_01(train_features, test_features)
    return train_features, train_labels, test_features, test_labels


def _smooth_image(image_size: int, channels: int, rng: np.random.Generator) -> np.ndarray:
    """White noise blurred with a separable box filter: cheap spatial correlation."""
    kernel_width = max(2, image_size // 4)
    kernel = np.ones(kernel_width) / kernel_width
    images = []
    for _ in range(channels):
        noise = rng.normal(0.0, 1.0, size=(image_size, image_size))
        blurred = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, noise
        )
        blurred = np.apply_along_axis(
            lambda col: np.convolve(col, kernel, mode="same"), 0, blurred
        )
        images.append(blurred.ravel())
    return np.concatenate(images)


def _rescale_01(
    train_features: np.ndarray, test_features: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale both splits to [0, 1] using the training split's per-feature range."""
    minimums = train_features.min(axis=0)
    spans = train_features.max(axis=0) - minimums
    spans[spans == 0] = 1.0
    train_scaled = (train_features - minimums) / spans
    test_scaled = np.clip((test_features - minimums) / spans, 0.0, 1.0)
    return train_scaled, test_scaled


__all__ = ["SyntheticSpec", "make_gaussian_classes", "make_image_like_classes"]
