"""Evaluation harness: metrics, multi-seed experiments, sweeps, tables, figures.

This package turns the classifiers into the numbers the paper reports:

* :mod:`repro.eval.metrics` - accuracy, confusion matrices, ``mean±std``
  aggregation (Table 1 is reported as mean±std over repetitions);
* :mod:`repro.eval.experiment` - run a set of training strategies on a
  dataset over multiple seeds with one shared encoding per seed;
* :mod:`repro.eval.sweep` - parameter sweeps (the dimension sweep of Fig. 6);
* :mod:`repro.eval.tables` / :mod:`repro.eval.figures` - plain-text rendering
  of tables and accuracy-trajectory "figures" (no plotting dependency).
"""

from repro.eval.metrics import MeanStd, accuracy, aggregate_mean_std, confusion_matrix
from repro.eval.experiment import (
    ExperimentResult,
    StrategyResult,
    default_strategy_factories,
    run_strategy_comparison,
)
from repro.eval.sweep import (
    DimensionSweepResult,
    GridCellResult,
    PackedSplits,
    run_dimension_sweep,
    run_fit_grid,
)
from repro.eval.tables import format_table
from repro.eval.figures import TrajectorySeries, render_trajectories, sparkline
from repro.eval.reports import (
    ClassificationReport,
    classification_report,
    compare_per_class,
    training_timing_report,
)
from repro.eval.significance import (
    mcnemar_test,
    paired_accuracy_ttest,
    wilson_interval,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "MeanStd",
    "aggregate_mean_std",
    "StrategyResult",
    "ExperimentResult",
    "run_strategy_comparison",
    "default_strategy_factories",
    "DimensionSweepResult",
    "GridCellResult",
    "PackedSplits",
    "run_dimension_sweep",
    "run_fit_grid",
    "format_table",
    "TrajectorySeries",
    "render_trajectories",
    "sparkline",
    "ClassificationReport",
    "classification_report",
    "compare_per_class",
    "training_timing_report",
    "mcnemar_test",
    "paired_accuracy_ttest",
    "wilson_interval",
]
