"""Multi-seed strategy comparison: the machinery behind Table 1.

For each repetition (seed), the dataset is (re)generated, encoded **once**,
and every training strategy is fitted on the same encoded hypervectors —
mirroring the paper's setup where all strategies share the same encoder and
only the class-hypervector training differs.  Accuracies are aggregated to
``mean±std`` across repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import LeHDCConfig, get_paper_config
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.base import Dataset
from repro.datasets.registry import get_dataset
from repro.eval.metrics import MeanStd, aggregate_mean_std
from repro.hdc.encoders import RecordEncoder
from repro.kernels.packed import PackedHypervectors, pack_bipolar
from repro.kernels.train import PackedTrainingSet
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: A strategy factory takes a per-repetition seed and returns an unfitted classifier.
StrategyFactory = Callable[[np.random.Generator], object]


def strategy_accuracy(
    classifier,
    encoded: np.ndarray,
    labels: np.ndarray,
    packed: Optional[PackedHypervectors] = None,
) -> float:
    """Accuracy of a fitted classifier, scored through the kernel layer.

    When the classifier uses the shared dot-similarity rule and a bit-packed
    copy of the encoded samples is supplied, prediction runs on the packed
    XOR+popcount kernel (one pack of the evaluation set is shared across all
    strategies by the experiment loops); otherwise it falls back to the
    classifier's dense ``predict``.  Both paths yield identical predictions,
    so the reported accuracy is unchanged — only faster.
    """
    supports = getattr(classifier, "supports_packed_scoring", None)
    if packed is not None and supports is not None and supports():
        predictions = classifier.predict_packed(packed)
    else:
        predictions = classifier.predict(encoded)
    return float(np.mean(predictions == np.asarray(labels)))


def fit_strategy(classifier, encoded: np.ndarray, labels: np.ndarray, packed_train=None):
    """Fit a classifier, sharing a pre-packed training set when it can ride it.

    Strategies in the centroid/retraining family accept a
    :class:`~repro.kernels.train.PackedTrainingSet` and train over packed
    words (encode + pack once, reuse across every retraining iteration *and*
    across strategies); everything else falls back to the plain ``fit``.
    Both paths produce bit-identical models, so experiment results do not
    depend on which one a strategy takes.
    """
    supports = getattr(classifier, "supports_packed_training", None)
    if packed_train is not None and supports is not None and supports():
        classifier.fit(encoded, labels, packed_train=packed_train)
    else:
        classifier.fit(encoded, labels)
    return classifier


@dataclass
class StrategyResult:
    """Accuracies of one strategy across repetitions."""

    name: str
    test_accuracies: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)

    @property
    def test_summary(self) -> MeanStd:
        """``mean±std`` of the test accuracy (as a fraction in [0, 1])."""
        return aggregate_mean_std(self.test_accuracies)

    @property
    def train_summary(self) -> MeanStd:
        """``mean±std`` of the training accuracy."""
        return aggregate_mean_std(self.train_accuracies)


@dataclass
class ExperimentResult:
    """All strategy results for one dataset plus the experiment parameters."""

    dataset_name: str
    dimension: int
    repetitions: int
    strategies: Dict[str, StrategyResult] = field(default_factory=dict)

    def summary_percent(self) -> Dict[str, MeanStd]:
        """Test-accuracy summaries in percent, keyed by strategy name."""
        return {
            name: result.test_summary.as_percent()
            for name, result in self.strategies.items()
        }

    def increment_over(self, baseline_name: str, strategy_name: str) -> float:
        """Mean test-accuracy increment (percent) of one strategy over another."""
        baseline = self.strategies[baseline_name].test_summary.mean
        strategy = self.strategies[strategy_name].test_summary.mean
        return (strategy - baseline) * 100.0


def default_strategy_factories(
    dataset_name: str,
    lehdc_epochs: Optional[int] = None,
    retraining_iterations: int = 30,
    multimodel_models_per_class: int = 16,
    multimodel_iterations: int = 3,
    lehdc_config: Optional[LeHDCConfig] = None,
) -> Dict[str, StrategyFactory]:
    """The four Table 1 strategies with laptop-scale default budgets.

    The paper uses 150 retraining iterations, 64 models per class and the
    Table 2 epoch counts; those are reachable by passing larger budgets, but
    the defaults here converge on the scaled-down synthetic benchmarks and
    keep the full Table 1 run in minutes on a CPU.
    """
    config = lehdc_config if lehdc_config is not None else get_paper_config(dataset_name)
    if lehdc_epochs is not None:
        config = config.with_overrides(epochs=int(lehdc_epochs))

    return {
        "baseline": lambda rng: BaselineHDC(seed=rng),
        "multimodel": lambda rng: MultiModelHDC(
            models_per_class=multimodel_models_per_class,
            iterations=multimodel_iterations,
            seed=rng,
        ),
        "retraining": lambda rng: RetrainingHDC(
            iterations=retraining_iterations, seed=rng
        ),
        "lehdc": lambda rng: LeHDCClassifier(config=config, seed=rng),
    }


def run_strategy_comparison(
    dataset: Optional[Dataset] = None,
    dataset_name: Optional[str] = None,
    strategies: Optional[Dict[str, StrategyFactory]] = None,
    dimension: int = 4000,
    num_levels: int = 32,
    repetitions: int = 3,
    profile: str = "small",
    seed: SeedLike = 0,
    encoder_kind: str = "record",
) -> ExperimentResult:
    """Fit every strategy on *repetitions* seeds of a dataset and aggregate.

    Exactly one of *dataset* (a pre-built :class:`Dataset`, reused for every
    repetition) or *dataset_name* (regenerated per repetition with a fresh
    seed, matching how the paper reports mean±std) must be given.

    Returns an :class:`ExperimentResult` whose ``summary_percent()`` rows are
    directly comparable to Table 1.
    """
    if (dataset is None) == (dataset_name is None):
        raise ValueError("provide exactly one of dataset or dataset_name")
    check_positive_int(repetitions, "repetitions")
    name = dataset.name if dataset is not None else dataset_name
    if strategies is None:
        strategies = default_strategy_factories(name)
    if encoder_kind not in ("record", "ngram"):
        raise ValueError(f"encoder_kind must be 'record' or 'ngram', got {encoder_kind!r}")

    root_rng = ensure_rng(seed)
    result = ExperimentResult(
        dataset_name=name, dimension=dimension, repetitions=repetitions
    )
    for strategy_name in strategies:
        result.strategies[strategy_name] = StrategyResult(name=strategy_name)

    for repetition in range(repetitions):
        repetition_seed = int(root_rng.integers(0, 2**31 - 1))
        data = (
            dataset
            if dataset is not None
            else get_dataset(dataset_name, profile=profile, seed=repetition_seed)
        )
        encoder = _build_encoder(encoder_kind, dimension, num_levels, repetition_seed)
        encoder.fit(data.train_features)
        train_encoded = encoder.encode(data.train_features)
        test_encoded = encoder.encode(data.test_features)
        # One packed copy of each split, shared by every strategy: the
        # training set rides both packed *training* (fit_strategy) and the
        # packed train-accuracy scoring; the test split rides packed scoring.
        train_set = PackedTrainingSet.from_dense(train_encoded)
        test_packed = pack_bipolar(test_encoded)

        for strategy_name, factory in strategies.items():
            strategy_rng = np.random.default_rng(
                repetition_seed + _stable_offset(strategy_name)
            )
            classifier = factory(strategy_rng)
            fit_strategy(
                classifier, train_encoded, data.train_labels, packed_train=train_set
            )
            result.strategies[strategy_name].test_accuracies.append(
                strategy_accuracy(
                    classifier, test_encoded, data.test_labels, packed=test_packed
                )
            )
            result.strategies[strategy_name].train_accuracies.append(
                strategy_accuracy(
                    classifier, train_encoded, data.train_labels, packed=train_set.packed
                )
            )

    return result


def _stable_offset(name: str) -> int:
    """Deterministic per-strategy seed offset (``hash()`` is randomised per process)."""
    return sum((index + 1) * ord(character) for index, character in enumerate(name)) % 10_000


def _build_encoder(kind: str, dimension: int, num_levels: int, seed: int):
    from repro.hdc.encoders import NGramEncoder

    if kind == "record":
        return RecordEncoder(dimension=dimension, num_levels=num_levels, seed=seed)
    return NGramEncoder(dimension=dimension, num_levels=num_levels, seed=seed)


__all__ = [
    "StrategyResult",
    "ExperimentResult",
    "StrategyFactory",
    "default_strategy_factories",
    "fit_strategy",
    "run_strategy_comparison",
    "strategy_accuracy",
]
