"""Text rendering of accuracy trajectories and series ("figures").

The paper's Figures 3, 5 and 6 are accuracy-versus-iteration (or -dimension)
curves.  The benchmark harness records the underlying series and renders them
as aligned text: a compact unicode sparkline per series plus the raw numbers,
so the figure can be compared against the paper without a plotting library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of numbers as a unicode sparkline string."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot render an empty series")
    low, high = float(array.min()), float(array.max())
    if high == low:
        return _SPARK_CHARS[0] * array.size
    normalised = (array - low) / (high - low)
    indices = np.minimum(
        (normalised * len(_SPARK_CHARS)).astype(int), len(_SPARK_CHARS) - 1
    )
    return "".join(_SPARK_CHARS[i] for i in indices)


@dataclass
class TrajectorySeries:
    """A named series of values indexed by iteration/epoch/dimension."""

    name: str
    x_values: List[float]
    y_values: List[float]

    def __post_init__(self):
        if len(self.x_values) != len(self.y_values):
            raise ValueError(
                f"series {self.name!r}: x has {len(self.x_values)} points, "
                f"y has {len(self.y_values)}"
            )
        if not self.y_values:
            raise ValueError(f"series {self.name!r} is empty")

    @property
    def final(self) -> float:
        """Last y value (e.g. converged accuracy)."""
        return float(self.y_values[-1])

    @property
    def best(self) -> float:
        """Maximum y value reached."""
        return float(max(self.y_values))

    def oscillation(self) -> float:
        """Mean absolute change between consecutive points over the last half.

        The paper observes that basic retraining "starts to oscillate after the
        initial convergence" while the enhanced strategy is stable; this scalar
        quantifies that claim so tests and benches can assert it.
        """
        tail = np.asarray(self.y_values[len(self.y_values) // 2 :], dtype=np.float64)
        if tail.size < 2:
            return 0.0
        return float(np.mean(np.abs(np.diff(tail))))


def render_trajectories(
    series: Sequence[TrajectorySeries],
    title: str = "",
    x_label: str = "iteration",
    y_format: str = "{:.4f}",
) -> str:
    """Render a set of trajectory series as sparkline + summary lines."""
    if not series:
        raise ValueError("series must be non-empty")
    lines: List[str] = []
    if title:
        lines.append(title)
    name_width = max(len(entry.name) for entry in series)
    for entry in series:
        summary = (
            f"start={y_format.format(entry.y_values[0])} "
            f"final={y_format.format(entry.final)} "
            f"best={y_format.format(entry.best)} "
            f"oscillation={entry.oscillation():.4f}"
        )
        lines.append(
            f"{entry.name.ljust(name_width)}  {sparkline(entry.y_values)}  {summary}"
        )
    lines.append(f"({len(series[0].y_values)} points per series, x = {x_label})")
    return "\n".join(lines)


__all__ = ["TrajectorySeries", "render_trajectories", "sparkline"]
