"""Classification metrics and mean±std aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_labels


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to the true labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions shape {predictions.shape} does not match labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(predictions == labels))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class *i* predicted as *j*."""
    labels = check_labels(np.asarray(labels), np.asarray(labels).shape[0])
    predictions = check_labels(np.asarray(predictions), labels.shape[0])
    if num_classes is None:
        num_classes = int(max(labels.max(), predictions.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Recall of each class (diagonal of the row-normalised confusion matrix)."""
    matrix = confusion_matrix(predictions, labels)
    row_totals = matrix.sum(axis=1).astype(np.float64)
    row_totals[row_totals == 0] = 1.0
    return np.diag(matrix) / row_totals


@dataclass(frozen=True)
class MeanStd:
    """A mean ± standard deviation pair, formatted the way Table 1 prints it."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"

    def as_percent(self) -> "MeanStd":
        """Return the same statistic scaled by 100 (fraction -> percent)."""
        return MeanStd(mean=self.mean * 100.0, std=self.std * 100.0, count=self.count)


def aggregate_mean_std(values: Iterable[float]) -> MeanStd:
    """Aggregate repeated measurements into a :class:`MeanStd`.

    Uses the population standard deviation (``ddof=0``) so a single repetition
    yields std 0 rather than NaN.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot aggregate an empty sequence")
    return MeanStd(mean=float(array.mean()), std=float(array.std()), count=int(array.size))


def average_increment(
    strategy_means: Sequence[float], baseline_means: Sequence[float]
) -> float:
    """Average accuracy increment of a strategy over the baseline across datasets.

    This is the "Avg Increment" column of Table 1: the mean, over datasets, of
    (strategy accuracy - baseline accuracy).
    """
    strategy = np.asarray(strategy_means, dtype=np.float64)
    baseline = np.asarray(baseline_means, dtype=np.float64)
    if strategy.shape != baseline.shape or strategy.size == 0:
        raise ValueError("strategy and baseline sequences must be equal-length and non-empty")
    return float(np.mean(strategy - baseline))


__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "MeanStd",
    "aggregate_mean_std",
    "average_increment",
]
