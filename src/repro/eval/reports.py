"""Per-class evaluation and training-timing reports.

Table 1 reports a single accuracy number per model, but when analysing *why*
one training strategy beats another (e.g. LeHDC's gain on the multi-cluster
PAMAP-style classes) a per-class breakdown is far more informative.  This
module provides a scikit-learn-style classification report built only on the
confusion matrix: precision, recall and F1 per class plus macro/weighted
averages, rendered through :func:`repro.eval.tables.format_table`.

It also renders the per-iteration wall-clock timings that every trainer with
a :class:`~repro.classifiers.retraining.RetrainingHistory` records
(``iteration_seconds`` — the retraining family and the multi-model ensemble
alike) as the table the committed experiment reports carry
(:func:`training_timing_report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.eval.metrics import confusion_matrix
from repro.eval.tables import format_table


@dataclass(frozen=True)
class ClassReport:
    """Precision / recall / F1 / support for one class."""

    label: int
    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class ClassificationReport:
    """Full per-class report plus aggregate rows."""

    classes: List[ClassReport]
    accuracy: float
    macro_precision: float
    macro_recall: float
    macro_f1: float
    weighted_f1: float

    def to_text(self, class_names: Optional[Sequence[str]] = None) -> str:
        """Render the report as an aligned text table."""
        rows = []
        for entry in self.classes:
            name = (
                class_names[entry.label]
                if class_names is not None and entry.label < len(class_names)
                else str(entry.label)
            )
            rows.append(
                [
                    name,
                    f"{entry.precision:.4f}",
                    f"{entry.recall:.4f}",
                    f"{entry.f1:.4f}",
                    entry.support,
                ]
            )
        rows.append(["macro avg", f"{self.macro_precision:.4f}", f"{self.macro_recall:.4f}",
                     f"{self.macro_f1:.4f}", sum(e.support for e in self.classes)])
        rows.append(["accuracy", "-", "-", f"{self.accuracy:.4f}",
                     sum(e.support for e in self.classes)])
        return format_table(
            ["class", "precision", "recall", "f1", "support"], rows
        )


def classification_report(
    predictions: np.ndarray,
    labels: np.ndarray,
    num_classes: Optional[int] = None,
) -> ClassificationReport:
    """Compute per-class precision/recall/F1 and aggregate statistics.

    Classes absent from both predictions and labels get zero support and zero
    scores (they still appear in the report so table shapes stay stable across
    repetitions).
    """
    matrix = confusion_matrix(predictions, labels, num_classes=num_classes)
    num_classes = matrix.shape[0]
    true_totals = matrix.sum(axis=1).astype(np.float64)
    predicted_totals = matrix.sum(axis=0).astype(np.float64)
    diagonal = np.diag(matrix).astype(np.float64)

    classes: List[ClassReport] = []
    for label in range(num_classes):
        precision = diagonal[label] / predicted_totals[label] if predicted_totals[label] else 0.0
        recall = diagonal[label] / true_totals[label] if true_totals[label] else 0.0
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        classes.append(
            ClassReport(
                label=label,
                precision=float(precision),
                recall=float(recall),
                f1=float(f1),
                support=int(true_totals[label]),
            )
        )

    total = float(matrix.sum())
    accuracy = float(diagonal.sum() / total) if total else 0.0
    macro_precision = float(np.mean([entry.precision for entry in classes]))
    macro_recall = float(np.mean([entry.recall for entry in classes]))
    macro_f1 = float(np.mean([entry.f1 for entry in classes]))
    supports = np.array([entry.support for entry in classes], dtype=np.float64)
    weighted_f1 = (
        float(np.sum(supports * np.array([entry.f1 for entry in classes])) / supports.sum())
        if supports.sum()
        else 0.0
    )
    return ClassificationReport(
        classes=classes,
        accuracy=accuracy,
        macro_precision=macro_precision,
        macro_recall=macro_recall,
        macro_f1=macro_f1,
        weighted_f1=weighted_f1,
    )


def compare_per_class(
    reports: Dict[str, ClassificationReport], metric: str = "recall"
) -> str:
    """Render a side-by-side per-class comparison of several models.

    ``metric`` selects which per-class quantity to tabulate (``"precision"``,
    ``"recall"`` or ``"f1"``).  Useful for showing *which* classes LeHDC
    recovers relative to the baseline.
    """
    if metric not in ("precision", "recall", "f1"):
        raise ValueError(f"metric must be precision, recall or f1, got {metric!r}")
    if not reports:
        raise ValueError("reports must be non-empty")
    names = list(reports)
    num_classes = len(next(iter(reports.values())).classes)
    rows = []
    for label in range(num_classes):
        row = [label]
        for name in names:
            row.append(f"{getattr(reports[name].classes[label], metric):.4f}")
        rows.append(row)
    return format_table(["class"] + names, rows, title=f"per-class {metric}")


def training_timing_report(
    histories: Mapping[str, object], footnote: Optional[str] = None
) -> str:
    """Render per-iteration training wall-time as an aligned table.

    ``histories`` maps a display name to either a
    :class:`~repro.classifiers.retraining.RetrainingHistory` (anything with
    an ``iteration_seconds`` list) or a bare sequence of per-iteration
    seconds.  This is the single rendering the committed experiment reports
    use, so the retraining benchmarks and the ensemble trainer publish their
    timings in one shape.
    """
    if not histories:
        raise ValueError("histories must be non-empty")
    rows = []
    for name, history in histories.items():
        seconds = list(getattr(history, "iteration_seconds", history))
        if not seconds:
            raise ValueError(f"history {name!r} has no iteration_seconds")
        rows.append(
            [
                name,
                len(seconds),
                f"{sum(seconds):.3f}",
                f"{sum(seconds) / len(seconds):.5f}",
                f"{max(seconds):.5f}",
            ]
        )
    table = format_table(
        ["variant", "iterations", "total (s)", "mean/iter (s)", "max/iter (s)"], rows
    )
    if footnote:
        table = f"{table}\n\n{footnote}"
    return table


__all__ = [
    "ClassReport",
    "ClassificationReport",
    "classification_report",
    "compare_per_class",
    "training_timing_report",
]
