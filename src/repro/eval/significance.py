"""Statistical significance helpers for accuracy comparisons.

Table 1 reports ``mean±std`` over repetitions, and the paper's conclusions are
about which strategy is *better*, not just numerically higher.  This module
provides the two tests a careful reader would apply to such claims:

* :func:`mcnemar_test` — per-sample paired comparison of two classifiers on
  the *same* test set (the right test when both models were evaluated on
  identical queries, as every benchmark in this repository does);
* :func:`paired_accuracy_ttest` — paired t-test over per-repetition
  accuracies (the right test for mean±std rows aggregated over seeds).

Both are thin, explicit wrappers over ``scipy.stats`` so the benchmark
harness and downstream users can quote p-values instead of eyeballing error
bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.utils.validation import check_labels


@dataclass(frozen=True)
class TestResult:
    """Outcome of a significance test."""

    statistic: float
    p_value: float
    detail: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level *alpha*."""
        return self.p_value < alpha


def mcnemar_test(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    labels: np.ndarray,
) -> TestResult:
    """McNemar's test: do two classifiers disagree more than chance allows?

    Uses the exact binomial form (recommended when the number of discordant
    pairs is small, which is common at benchmark scale).  The null hypothesis
    is that both classifiers have the same error rate on the population the
    test set was drawn from.
    """
    labels = check_labels(np.asarray(labels), np.asarray(labels).shape[0])
    predictions_a = check_labels(np.asarray(predictions_a), labels.shape[0])
    predictions_b = check_labels(np.asarray(predictions_b), labels.shape[0])

    correct_a = predictions_a == labels
    correct_b = predictions_b == labels
    only_a = int(np.sum(correct_a & ~correct_b))
    only_b = int(np.sum(~correct_a & correct_b))
    discordant = only_a + only_b
    if discordant == 0:
        return TestResult(
            statistic=0.0,
            p_value=1.0,
            detail="no discordant predictions; classifiers are indistinguishable here",
        )
    result = stats.binomtest(min(only_a, only_b), discordant, p=0.5)
    return TestResult(
        statistic=float(min(only_a, only_b)),
        p_value=float(result.pvalue),
        detail=(
            f"A-only correct: {only_a}, B-only correct: {only_b}, "
            f"discordant pairs: {discordant}"
        ),
    )


def paired_accuracy_ttest(
    accuracies_a: Sequence[float], accuracies_b: Sequence[float]
) -> TestResult:
    """Paired t-test over per-repetition accuracies of two strategies.

    Each repetition must have used the same data/seed for both strategies
    (which :func:`repro.eval.experiment.run_strategy_comparison` guarantees,
    since every strategy in a repetition shares the encoding).
    """
    a = np.asarray(list(accuracies_a), dtype=np.float64)
    b = np.asarray(list(accuracies_b), dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("accuracy sequences must be equal-length and non-empty")
    if a.size == 1:
        raise ValueError("at least two paired repetitions are required for a t-test")
    differences = a - b
    if np.allclose(differences, differences[0]):
        # Zero variance in the differences: the t statistic is undefined; report
        # a degenerate but informative result instead of a NaN.
        identical = bool(np.allclose(differences, 0.0))
        return TestResult(
            statistic=float("inf") if not identical else 0.0,
            p_value=0.0 if not identical else 1.0,
            detail="constant difference across repetitions",
        )
    statistic, p_value = stats.ttest_rel(a, b)
    return TestResult(
        statistic=float(statistic),
        p_value=float(p_value),
        detail=f"mean difference {float(np.mean(differences)):+.4f} over {a.size} repetitions",
    )


def wilson_interval(correct: int, total: int, confidence: float = 0.95) -> tuple:
    """Wilson score confidence interval for a single accuracy estimate.

    Useful for quoting uncertainty on a single-run accuracy (e.g. the per-class
    recalls in :mod:`repro.eval.reports`) without repetitions.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not (0 <= correct <= total):
        raise ValueError("correct must be in [0, total]")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    proportion = correct / total
    denominator = 1.0 + z**2 / total
    centre = (proportion + z**2 / (2 * total)) / denominator
    margin = (
        z
        * np.sqrt(proportion * (1 - proportion) / total + z**2 / (4 * total**2))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


__all__ = ["TestResult", "mcnemar_test", "paired_accuracy_ttest", "wilson_interval"]
