"""Parameter sweeps, in particular the dimension sweep of Fig. 6.

Fig. 6 plots inference accuracy against the hypervector dimension
``D ∈ {10 000, 8 000, 6 000, 4 000, 2 000}`` for every training strategy on
Fashion-MNIST and ISOLET.  :func:`run_dimension_sweep` regenerates that
series for any dataset: one encoding per (dimension, repetition), shared
across strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.registry import get_dataset
from repro.eval.experiment import (
    StrategyFactory,
    _stable_offset,
    default_strategy_factories,
    fit_strategy,
    strategy_accuracy,
)
from repro.eval.metrics import MeanStd, aggregate_mean_std
from repro.hdc.encoders import RecordEncoder
from repro.kernels.packed import pack_bipolar
from repro.kernels.train import PackedTrainingSet
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class DimensionSweepResult:
    """Accuracy of each strategy at each swept dimension."""

    dataset_name: str
    dimensions: List[int]
    #: accuracies[strategy][dimension] -> list of per-repetition accuracies
    accuracies: Dict[str, Dict[int, List[float]]] = field(default_factory=dict)

    def summary(self, strategy: str) -> Dict[int, MeanStd]:
        """``mean±std`` accuracy of *strategy* at every dimension."""
        return {
            dimension: aggregate_mean_std(values)
            for dimension, values in self.accuracies[strategy].items()
        }

    def series(self, strategy: str) -> List[float]:
        """Mean accuracy of *strategy* ordered like :attr:`dimensions` (for plotting)."""
        return [self.summary(strategy)[dimension].mean for dimension in self.dimensions]

    def crossover_dimension(
        self, strategy: str, reference_strategy: str, reference_dimension: int
    ) -> Optional[int]:
        """Smallest dimension at which *strategy* matches *reference_strategy*.

        Implements the paper's headline scalability observation: LeHDC at
        D=2 000 reaches the accuracy of retraining at D=10 000.  Returns
        ``None`` when no swept dimension reaches the reference accuracy.
        """
        reference = self.summary(reference_strategy)[reference_dimension].mean
        matching = [
            dimension
            for dimension in self.dimensions
            if self.summary(strategy)[dimension].mean >= reference
        ]
        return min(matching) if matching else None


def run_dimension_sweep(
    dataset: Optional[Dataset] = None,
    dataset_name: Optional[str] = None,
    dimensions: Sequence[int] = (2000, 4000, 6000, 8000, 10000),
    strategies: Optional[Dict[str, StrategyFactory]] = None,
    num_levels: int = 32,
    repetitions: int = 1,
    profile: str = "small",
    seed: SeedLike = 0,
) -> DimensionSweepResult:
    """Measure accuracy of every strategy across hypervector dimensions.

    Exactly one of *dataset* / *dataset_name* must be given, as in
    :func:`repro.eval.experiment.run_strategy_comparison`.
    """
    if (dataset is None) == (dataset_name is None):
        raise ValueError("provide exactly one of dataset or dataset_name")
    if not dimensions:
        raise ValueError("dimensions must be a non-empty sequence")
    check_positive_int(repetitions, "repetitions")
    name = dataset.name if dataset is not None else dataset_name
    if strategies is None:
        strategies = default_strategy_factories(name)

    root_rng = ensure_rng(seed)
    result = DimensionSweepResult(
        dataset_name=name, dimensions=sorted(int(d) for d in dimensions)
    )
    for strategy_name in strategies:
        result.accuracies[strategy_name] = {d: [] for d in result.dimensions}

    for repetition in range(repetitions):
        repetition_seed = int(root_rng.integers(0, 2**31 - 1))
        data = (
            dataset
            if dataset is not None
            else get_dataset(dataset_name, profile=profile, seed=repetition_seed)
        )
        for dimension in result.dimensions:
            encoder = RecordEncoder(
                dimension=dimension, num_levels=num_levels, seed=repetition_seed
            )
            encoder.fit(data.train_features)
            train_encoded = encoder.encode(data.train_features)
            test_encoded = encoder.encode(data.test_features)
            # One packed copy of each split per (dimension, repetition):
            # the training set feeds packed training for every strategy that
            # rides it, the test split feeds packed XOR+popcount scoring.
            train_set = PackedTrainingSet.from_dense(train_encoded)
            test_packed = pack_bipolar(test_encoded)
            for strategy_name, factory in strategies.items():
                strategy_rng = np.random.default_rng(
                    repetition_seed + _stable_offset(strategy_name)
                )
                classifier = factory(strategy_rng)
                fit_strategy(
                    classifier, train_encoded, data.train_labels, packed_train=train_set
                )
                result.accuracies[strategy_name][dimension].append(
                    strategy_accuracy(
                        classifier, test_encoded, data.test_labels, packed=test_packed
                    )
                )
    return result


__all__ = ["DimensionSweepResult", "run_dimension_sweep"]
