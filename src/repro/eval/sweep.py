"""Parameter sweeps: the dimension sweep of Fig. 6 and grid-fit harnesses.

Fig. 6 plots inference accuracy against the hypervector dimension
``D ∈ {10 000, 8 000, 6 000, 4 000, 2 000}`` for every training strategy on
Fashion-MNIST and ISOLET.  :func:`run_dimension_sweep` regenerates that
series for any dataset: one encoding per (dimension, repetition), shared
across strategies.

:class:`PackedSplits` / :func:`run_fit_grid` factor the "encode + pack once,
fit many" pattern out of the loops: a hyper-parameter grid (the Table 2
sensitivity studies) fits dozens of classifiers on the *same* encoded split,
so the encoding, the shared :class:`~repro.kernels.train.PackedTrainingSet`
and the packed copy of the evaluation split are built exactly once and every
grid cell rides them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.registry import get_dataset
from repro.eval.experiment import (
    StrategyFactory,
    _stable_offset,
    default_strategy_factories,
    fit_strategy,
    strategy_accuracy,
)
from repro.eval.metrics import MeanStd, aggregate_mean_std
from repro.hdc.encoders import RecordEncoder
from repro.kernels.packed import PackedHypervectors, pack_bipolar
from repro.kernels.train import PackedTrainingSet
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class DimensionSweepResult:
    """Accuracy of each strategy at each swept dimension."""

    dataset_name: str
    dimensions: List[int]
    #: accuracies[strategy][dimension] -> list of per-repetition accuracies
    accuracies: Dict[str, Dict[int, List[float]]] = field(default_factory=dict)

    def summary(self, strategy: str) -> Dict[int, MeanStd]:
        """``mean±std`` accuracy of *strategy* at every dimension."""
        return {
            dimension: aggregate_mean_std(values)
            for dimension, values in self.accuracies[strategy].items()
        }

    def series(self, strategy: str) -> List[float]:
        """Mean accuracy of *strategy* ordered like :attr:`dimensions` (for plotting)."""
        return [self.summary(strategy)[dimension].mean for dimension in self.dimensions]

    def crossover_dimension(
        self, strategy: str, reference_strategy: str, reference_dimension: int
    ) -> Optional[int]:
        """Smallest dimension at which *strategy* matches *reference_strategy*.

        Implements the paper's headline scalability observation: LeHDC at
        D=2 000 reaches the accuracy of retraining at D=10 000.  Returns
        ``None`` when no swept dimension reaches the reference accuracy.
        """
        reference = self.summary(reference_strategy)[reference_dimension].mean
        matching = [
            dimension
            for dimension in self.dimensions
            if self.summary(strategy)[dimension].mean >= reference
        ]
        return min(matching) if matching else None


@dataclass
class PackedSplits:
    """Encode-once, pack-once view of one train/test split pair.

    Built once per split and handed to every fit that shares it: the train
    side carries the shared :class:`~repro.kernels.train.PackedTrainingSet`
    (packed words + int8 samples) that packed-native ``fit()`` consumes, the
    test side the packed words that packed scoring consumes.  Strategies
    that support neither transparently fall back to the dense arrays, which
    are kept alongside.
    """

    train_encoded: np.ndarray
    train_labels: np.ndarray
    test_encoded: np.ndarray
    test_labels: np.ndarray
    train_set: PackedTrainingSet
    test_packed: PackedHypervectors

    @classmethod
    def from_encoded(
        cls,
        train_encoded: np.ndarray,
        train_labels: np.ndarray,
        test_encoded: np.ndarray,
        test_labels: np.ndarray,
    ) -> "PackedSplits":
        """Pack already-encoded bipolar splits."""
        return cls(
            train_encoded=train_encoded,
            train_labels=np.asarray(train_labels),
            test_encoded=test_encoded,
            test_labels=np.asarray(test_labels),
            train_set=PackedTrainingSet.from_dense(train_encoded),
            test_packed=pack_bipolar(test_encoded),
        )

    @classmethod
    def from_dataset(cls, data: Dataset, encoder) -> "PackedSplits":
        """Fit *encoder* on the train split, encode both splits, pack once."""
        encoder.fit(data.train_features)
        return cls.from_encoded(
            encoder.encode(data.train_features),
            data.train_labels,
            encoder.encode(data.test_features),
            data.test_labels,
        )


@dataclass
class GridCellResult:
    """One fitted grid cell: the classifier, its accuracy, its fit time."""

    classifier: object
    test_accuracy: float
    fit_seconds: float


def run_fit_grid(
    splits: PackedSplits,
    cells: Mapping[Hashable, Callable[[], object]],
) -> Dict[Hashable, GridCellResult]:
    """Fit every grid cell on one shared packed split and score it.

    ``cells`` maps a cell key (e.g. a ``(weight_decay, dropout)`` tuple) to a
    zero-argument factory returning an unfitted classifier.  Each cell is
    fitted through :func:`~repro.eval.experiment.fit_strategy` — so packed
    training rides the one shared :class:`PackedTrainingSet` — and scored
    through :func:`~repro.eval.experiment.strategy_accuracy` on the one
    shared packed test split.  The grid therefore pays for encoding and
    packing exactly once, no matter how many cells it has.
    """
    if not cells:
        raise ValueError("cells must be non-empty")
    results: Dict[Hashable, GridCellResult] = {}
    for key, factory in cells.items():
        classifier = factory()
        started = time.perf_counter()
        fit_strategy(
            classifier,
            splits.train_encoded,
            splits.train_labels,
            packed_train=splits.train_set,
        )
        fit_seconds = time.perf_counter() - started
        accuracy = strategy_accuracy(
            classifier,
            splits.test_encoded,
            splits.test_labels,
            packed=splits.test_packed,
        )
        results[key] = GridCellResult(
            classifier=classifier, test_accuracy=accuracy, fit_seconds=fit_seconds
        )
    return results


def run_dimension_sweep(
    dataset: Optional[Dataset] = None,
    dataset_name: Optional[str] = None,
    dimensions: Sequence[int] = (2000, 4000, 6000, 8000, 10000),
    strategies: Optional[Dict[str, StrategyFactory]] = None,
    num_levels: int = 32,
    repetitions: int = 1,
    profile: str = "small",
    seed: SeedLike = 0,
) -> DimensionSweepResult:
    """Measure accuracy of every strategy across hypervector dimensions.

    Exactly one of *dataset* / *dataset_name* must be given, as in
    :func:`repro.eval.experiment.run_strategy_comparison`.
    """
    if (dataset is None) == (dataset_name is None):
        raise ValueError("provide exactly one of dataset or dataset_name")
    if not dimensions:
        raise ValueError("dimensions must be a non-empty sequence")
    check_positive_int(repetitions, "repetitions")
    name = dataset.name if dataset is not None else dataset_name
    if strategies is None:
        strategies = default_strategy_factories(name)

    root_rng = ensure_rng(seed)
    result = DimensionSweepResult(
        dataset_name=name, dimensions=sorted(int(d) for d in dimensions)
    )
    for strategy_name in strategies:
        result.accuracies[strategy_name] = {d: [] for d in result.dimensions}

    for repetition in range(repetitions):
        repetition_seed = int(root_rng.integers(0, 2**31 - 1))
        data = (
            dataset
            if dataset is not None
            else get_dataset(dataset_name, profile=profile, seed=repetition_seed)
        )
        for dimension in result.dimensions:
            encoder = RecordEncoder(
                dimension=dimension, num_levels=num_levels, seed=repetition_seed
            )
            encoder.fit(data.train_features)
            train_encoded = encoder.encode(data.train_features)
            test_encoded = encoder.encode(data.test_features)
            # One packed copy of each split per (dimension, repetition):
            # the training set feeds packed training for every strategy that
            # rides it, the test split feeds packed XOR+popcount scoring.
            train_set = PackedTrainingSet.from_dense(train_encoded)
            test_packed = pack_bipolar(test_encoded)
            for strategy_name, factory in strategies.items():
                strategy_rng = np.random.default_rng(
                    repetition_seed + _stable_offset(strategy_name)
                )
                classifier = factory(strategy_rng)
                fit_strategy(
                    classifier, train_encoded, data.train_labels, packed_train=train_set
                )
                result.accuracies[strategy_name][dimension].append(
                    strategy_accuracy(
                        classifier, test_encoded, data.test_labels, packed=test_packed
                    )
                )
    return result


__all__ = [
    "DimensionSweepResult",
    "GridCellResult",
    "PackedSplits",
    "run_dimension_sweep",
    "run_fit_grid",
]
