"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table.

    Every cell is converted with ``str``; floats should be pre-formatted by the
    caller so the table controls its own precision.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(_line(list(headers)))
    lines.append(separator)
    lines.extend(_line(row) for row in string_rows)
    return "\n".join(lines)


__all__ = ["format_table"]
