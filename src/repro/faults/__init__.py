"""repro.faults — seeded deterministic fault injection for chaos testing.

The serving/cluster tier's failure story is only trustworthy if it is
*rehearsed*: this package provides the picklable :class:`FaultPlan` that the
dispatcher ships into every worker process, where a :class:`FaultInjector`
deterministically injects crashes, hangs, slow replies, error replies, torn
shared-memory writes, and dropped sockets keyed by ``(seed, worker_index,
request_count)``.  Activated per-dispatcher (``ClusterDispatcher(...,
fault_plan=...)``), per-run (``repro loadgen --faults quick``), or globally
via the ``REPRO_FAULTS`` environment variable.

See ``docs/robustness.md`` for the fault taxonomy and the hardening each
kind exercises.
"""

from repro.faults.plan import (
    ENV_SEED_VAR,
    ENV_VAR,
    FAULT_KINDS,
    PARENT_INDEX,
    PARENT_KINDS,
    PRESETS,
    WORKER_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "ENV_SEED_VAR",
    "ENV_VAR",
    "FAULT_KINDS",
    "PARENT_INDEX",
    "PARENT_KINDS",
    "WORKER_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PRESETS",
]
