"""Seeded, deterministic fault schedules for chaos testing the cluster tier.

A :class:`FaultPlan` is a small, picklable description of *which* faults fire
*where* and *when*.  It rides the worker spawn arguments into
:func:`repro.cluster.worker.worker_main`, where a per-process
:class:`FaultInjector` consults it once per scoring request.  Determinism is
the whole point: a schedule is a pure function of ``(seed, worker_index,
request_count)``, so a chaos soak that fails in CI replays bit-identically
from the same plan string — no flaky "sometimes the worker crashed" runs.

Fault kinds (the taxonomy is documented in ``docs/robustness.md``):

``crash``
    ``os._exit`` mid-request — the parent sees EOF and maps it to a worker
    crash (503 after the respawned pool also fails the retry).
``hang``
    Sleep for ``hang_seconds`` while holding the shard.  Exercises the
    dispatcher's ``request_timeout`` watchdog: the worker is still *alive*,
    so only explicit retirement (terminate + join) unsticks the slot.
``slow``
    Sleep for ``slow_seconds`` and then answer normally — latency noise
    below the watchdog threshold.
``error``
    Reply with a typed error frame instead of scores (maps to
    :class:`~repro.cluster.errors.WorkerFaultError`; retryable).
``torn``
    Skew the shared-memory ring's generation counter before replying so the
    parent's torn-write detector trips (``TransportError``).  On transports
    without a ring to tear this degrades to ``drop``.
``drop``
    Close the transport endpoint and exit without replying — a TCP
    reset / dropped socket as seen from the parent.

Three further kinds target the fleet pager and fire in the *parent* (the
dispatcher consults its own injector once per dispatch, as pseudo-worker
index :data:`PARENT_INDEX`; worker-side injectors skip them):

``evict``
    Page the dispatcher's own bank out right before the dispatch — the
    eviction-during-dispatch race.  The dispatch cold-restores the bank to
    a fresh segment/generation and every worker re-attaches mid-stream.
``unlink``
    Force-unlink the restored segment before the scatter — the
    unlink-vs-attach race.  Workers answer a typed ``BankUnavailableError``
    and the retry round restores the bank again.
``slow_load``
    Like ``evict``, but the cold restore also sleeps ``slow_seconds`` —
    a slow cold-load while requests queue behind the single-flight lock.

Rules trigger in one of three deterministic modes: ``at`` (fire exactly when
this process's request count equals ``at``), ``every``/``after`` (fire
periodically starting at ``after``), or ``rate`` (a seed-stable hash draw per
request).  A worker respawn resets its request count — deliberate, so a rule
like ``at=2`` proves the *respawned* worker is healthy while the original
faults.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

#: Worker-side kinds, injected inside ``worker_main`` per scoring request.
WORKER_KINDS = ("crash", "hang", "slow", "error", "torn", "drop")

#: Parent-side kinds, injected by the dispatcher per dispatch — they target
#: the shared-bank pager, which only the parent can reach.
PARENT_KINDS = ("evict", "unlink", "slow_load")

FAULT_KINDS = WORKER_KINDS + PARENT_KINDS

#: The pseudo worker index the dispatcher's own injector draws under, so
#: parent-side schedules are seed-stable and disjoint from every real worker.
PARENT_INDEX = -1

ENV_VAR = "REPRO_FAULTS"
ENV_SEED_VAR = "REPRO_FAULTS_SEED"


def _unit_draw(seed: int, worker_index: int, kind: str, count: int) -> float:
    """Seed-stable draw in ``[0, 1)`` — the same on every platform/process."""
    key = f"{seed}:{worker_index}:{kind}:{count}".encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger for one fault kind.

    Exactly one of ``at``, ``every``, or ``rate`` selects the trigger mode;
    ``workers`` (a tuple of worker indices) restricts which processes the
    rule applies to, ``None`` meaning all of them.
    """

    kind: str
    at: int = 0
    every: int = 0
    after: int = 0
    rate: float = 0.0
    workers: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        modes = sum((self.at > 0, self.every > 0, self.rate > 0.0))
        if modes != 1:
            raise ValueError(
                f"rule {self.kind!r} must set exactly one of at/every/rate"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {self.rate}")

    def fires(self, count: int, worker_index: int, seed: int) -> bool:
        """Does this rule trigger on request *count* (1-based) of *worker*?"""
        if self.workers is not None and worker_index not in self.workers:
            return False
        if self.at > 0:
            return count == self.at
        if self.every > 0:
            start = max(self.after, 1)
            return count >= start and (count - start) % self.every == 0
        return count > self.after and _unit_draw(
            seed, worker_index, self.kind, count
        ) < self.rate


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultRule` plus the knobs they share.

    Rule order is priority order: the first rule that fires on a request
    decides the injected fault.  Frozen + tuple-typed so the plan pickles
    into worker spawn arguments unchanged.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05

    def injector(
        self, worker_index: int, kinds: Optional[Tuple[str, ...]] = None
    ) -> "FaultInjector":
        return FaultInjector(self, worker_index, kinds=kinds)

    # -- serialisation -----------------------------------------------------

    def describe(self) -> Dict:
        """JSON-ready description (used by reports and ``/v1/metrics``)."""
        return {
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
            "rules": [dataclasses.asdict(rule) for rule in self.rules],
        }

    def describe_short(self) -> str:
        """One-line human summary for CLI banners and log lines."""
        parts = []
        for rule in self.rules:
            if rule.at:
                schedule = f"at={rule.at}"
            elif rule.every:
                schedule = f"every={rule.every}"
            else:
                schedule = f"rate={rule.rate:g}"
            parts.append(f"{rule.kind} {schedule}")
        return f"seed={self.seed}: " + "; ".join(parts)

    def to_json(self) -> str:
        return json.dumps(self.describe(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        rules = []
        for entry in data.get("rules", []):
            workers = entry.get("workers")
            rules.append(
                FaultRule(
                    kind=entry["kind"],
                    at=int(entry.get("at", 0)),
                    every=int(entry.get("every", 0)),
                    after=int(entry.get("after", 0)),
                    rate=float(entry.get("rate", 0.0)),
                    workers=None if workers is None else tuple(workers),
                )
            )
        return cls(
            rules=tuple(rules),
            seed=int(data.get("seed", 0)),
            hang_seconds=float(data.get("hang_seconds", 30.0)),
            slow_seconds=float(data.get("slow_seconds", 0.05)),
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact CLI/env grammar.

        ``spec`` is ``;``-separated tokens.  A token containing ``:`` is a
        rule — ``kind:key=value:key=value`` (keys: ``at``, ``every``,
        ``after``, ``rate``, ``workers`` with ``+``-separated indices).  A
        bare ``key=value`` token sets a plan-level option (``seed``,
        ``hang_seconds``, ``slow_seconds``).  A bare kind defaults to
        ``rate=0.01``.  Preset names (:data:`PRESETS`) and JSON objects are
        accepted too, so one ``--faults`` flag covers all three forms.
        """
        spec = spec.strip()
        if not spec or spec.lower() in ("off", "none"):
            raise ValueError("empty fault spec")
        if spec in PRESETS:
            return PRESETS[spec]
        if spec.startswith("{"):
            return cls.from_json(spec)
        rules: List[FaultRule] = []
        options: Dict[str, float] = {}
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            if ":" not in token and "=" in token:
                key, _, value = token.partition("=")
                key = key.strip()
                if key not in ("seed", "hang_seconds", "slow_seconds"):
                    raise ValueError(f"unknown fault plan option {key!r}")
                options[key] = float(value)
                continue
            parts = token.split(":")
            kind = parts[0].strip()
            fields: Dict[str, object] = {"kind": kind}
            for part in parts[1:]:
                key, _, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                if key in ("at", "every", "after"):
                    fields[key] = int(value)
                elif key == "rate":
                    fields[key] = float(value)
                elif key == "workers":
                    fields[key] = tuple(
                        int(index) for index in value.split("+") if index
                    )
                else:
                    raise ValueError(f"unknown fault rule field {key!r}")
            if not any(key in fields for key in ("at", "every", "rate")):
                fields["rate"] = 0.01
            rules.append(FaultRule(**fields))  # type: ignore[arg-type]
        if not rules:
            raise ValueError(f"fault spec {spec!r} defines no rules")
        plan = cls(rules=tuple(rules), seed=int(options.get("seed", 0)))
        if "hang_seconds" in options:
            plan = dataclasses.replace(plan, hang_seconds=options["hang_seconds"])
        if "slow_seconds" in options:
            plan = dataclasses.replace(plan, slow_seconds=options["slow_seconds"])
        return plan

    @classmethod
    def resolve(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """``None``/empty/"off" → ``None``; otherwise :meth:`from_spec`."""
        if spec is None:
            return None
        spec = spec.strip()
        if not spec or spec.lower() in ("off", "none"):
            return None
        return cls.from_spec(spec)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """Activate from ``REPRO_FAULTS`` (spec/preset/JSON); ``None`` if unset.

        ``REPRO_FAULTS_SEED`` overrides the plan seed so one exported spec
        can be replayed under several seeds.
        """
        environ = os.environ if environ is None else environ
        plan = cls.resolve(environ.get(ENV_VAR))
        if plan is None:
            return None
        seed = environ.get(ENV_SEED_VAR)
        if seed is not None:
            plan = dataclasses.replace(plan, seed=int(seed))
        return plan


class FaultInjector:
    """Per-worker-process cursor over a :class:`FaultPlan`.

    ``draw()`` advances the request count and returns the fault kind to
    inject for this request (or ``None``).  Purely local state — no locks,
    no clock, no RNG object — so two runs of the same plan are identical.

    ``kinds`` restricts which fault kinds this cursor may return: workers
    pass :data:`WORKER_KINDS` and the dispatcher passes :data:`PARENT_KINDS`
    (under :data:`PARENT_INDEX`), so one plan string drives both sides
    without either injecting a fault it cannot express.  Skipped rules still
    advance the count, keeping the schedule stable across restrictions.
    """

    def __init__(
        self,
        plan: FaultPlan,
        worker_index: int,
        kinds: Optional[Tuple[str, ...]] = None,
    ):
        self.plan = plan
        self.worker_index = worker_index
        self.kinds = None if kinds is None else tuple(kinds)
        self.count = 0
        self.injected: Dict[str, int] = {}

    def draw(self) -> Optional[str]:
        self.count += 1
        for rule in self.plan.rules:
            if self.kinds is not None and rule.kind not in self.kinds:
                continue
            if rule.fires(self.count, self.worker_index, self.plan.seed):
                self.injected[rule.kind] = self.injected.get(rule.kind, 0) + 1
                return rule.kind
        return None


def _preset(spec_rules: Iterable[FaultRule], seed: int = 0) -> FaultPlan:
    return FaultPlan(rules=tuple(spec_rules), seed=seed)


#: Named plans accepted anywhere a spec string is.  ``quick`` is the CI chaos
#: smoke.  A worker's request count resets when it is respawned, so on any
#: one worker only the *earliest* lethal fault ever fires (later fire points
#: are never reached) — which is why the lethal kinds are partitioned across
#: worker indices: worker 0 crashes, worker 1 hangs, worker 2 tears/drops
#: frames (run the smoke with at least 3 workers to exercise all three).
#: The non-lethal kinds (slow, error — and torn on the shm transport, where
#: it skews a ring generation instead of killing the worker) fire on every
#: worker before its first kill point.  Against a ~30-ops-per-worker soak
#: each worker dies and respawns 2–3 times while the dispatcher's retry-once
#: keeps availability above the 95% floor.
PRESETS: Dict[str, FaultPlan] = {
    "quick": _preset(
        [
            FaultRule(kind="slow", every=13, after=5),
            FaultRule(kind="error", every=17, after=9),
            FaultRule(kind="crash", every=23, after=11, workers=(0,)),
            FaultRule(kind="hang", every=23, after=11, workers=(1,)),
            FaultRule(kind="torn", every=23, after=11, workers=(2,)),
            FaultRule(kind="drop", every=29, after=17, workers=(2,)),
        ]
    ),
    "soak": _preset(
        [
            FaultRule(kind="crash", rate=0.01),
            FaultRule(kind="hang", rate=0.005),
            FaultRule(kind="torn", rate=0.01),
            FaultRule(kind="drop", rate=0.005),
            FaultRule(kind="error", rate=0.02),
            FaultRule(kind="slow", rate=0.05),
        ]
    ),
    # Fleet-pager churn for the multi-tenant smoke: the parent-side kinds
    # fire per *dispatch* (pseudo-worker -1), so every few batches a bank is
    # paged out mid-stream, force-unlinked under an attach, or restored
    # slowly — while a light worker-side error/slow mix keeps the ordinary
    # retry machinery honest at the same time.
    "evict-churn": _preset(
        [
            FaultRule(kind="evict", every=7, after=3),
            FaultRule(kind="unlink", every=13, after=6),
            FaultRule(kind="slow_load", every=17, after=9),
            FaultRule(kind="error", every=19, after=8),
            FaultRule(kind="slow", every=23, after=10),
        ]
    ),
}


__all__ = [
    "ENV_SEED_VAR",
    "ENV_VAR",
    "FAULT_KINDS",
    "PARENT_INDEX",
    "PARENT_KINDS",
    "WORKER_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PRESETS",
]
