"""Hardware cost model for HDC inference (Sec. 5.1's resource discussion)."""

from repro.hardware.cost_model import (
    InferenceCostModel,
    StrategyCost,
    compare_strategies,
)

__all__ = ["InferenceCostModel", "StrategyCost", "compare_strategies"]
