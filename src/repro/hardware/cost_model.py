"""Inference cost model: storage, operation counts and latency estimates.

Sec. 5.1 argues that LeHDC "has the same time consumption and resource
occupation as the baseline and retraining binary HDC" because it changes only
training, "however, multi-model strategy costs more storage due to the
multiple class hypervectors".  This module quantifies that claim with a simple
but explicit cost model for the binary-HDC inference datapath:

* class-hypervector storage: ``models_per_class * K * D`` bits;
* similarity computation: an XOR + popcount per stored hypervector word plus
  a ``K``-way (or ``K*N``-way) argmin;
* latency: cycles on a word-parallel datapath of configurable width — a
  first-order stand-in for the FPGA / in-memory accelerators the paper cites.

These numbers are *model* outputs (no hardware is simulated cycle-accurately);
they reproduce the relative comparison the paper makes, which is all Sec. 5.1
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class StrategyCost:
    """Inference-time cost of one trained HDC strategy."""

    name: str
    storage_bits: int
    xor_popcount_ops: int
    comparison_ops: int
    latency_cycles: int

    @property
    def storage_kib(self) -> float:
        """Class-hypervector storage in KiB."""
        return self.storage_bits / 8.0 / 1024.0


class InferenceCostModel:
    """Cost model for the nearest-Hamming inference datapath.

    Parameters
    ----------
    dimension:
        Hypervector dimension ``D``.
    num_classes:
        Number of classes ``K``.
    word_width:
        Datapath word width in bits (64 models a CPU; an FPGA/IMC design would
        use a much wider effective width, which scales latency down but leaves
        every *relative* comparison unchanged).
    """

    def __init__(self, dimension: int, num_classes: int, word_width: int = 64):
        self.dimension = check_positive_int(dimension, "dimension")
        self.num_classes = check_positive_int(num_classes, "num_classes")
        self.word_width = check_positive_int(word_width, "word_width")

    @property
    def words_per_hypervector(self) -> int:
        """Number of datapath words holding one packed hypervector."""
        return -(-self.dimension // self.word_width)  # ceil division

    def cost(self, name: str, models_per_class: int = 1) -> StrategyCost:
        """Cost of a strategy storing *models_per_class* hypervectors per class."""
        check_positive_int(models_per_class, "models_per_class")
        stored_hypervectors = self.num_classes * models_per_class
        storage_bits = stored_hypervectors * self.dimension
        # One XOR + popcount per stored word, then a tree of comparisons to
        # find the minimum distance.
        xor_popcount_ops = stored_hypervectors * self.words_per_hypervector
        comparison_ops = stored_hypervectors - 1
        latency_cycles = xor_popcount_ops + comparison_ops
        return StrategyCost(
            name=name,
            storage_bits=storage_bits,
            xor_popcount_ops=xor_popcount_ops,
            comparison_ops=comparison_ops,
            latency_cycles=latency_cycles,
        )

    def encoding_cost_ops(self, num_features: int) -> int:
        """Bind-and-accumulate operations for one record-encoded query (Eq. 1).

        Identical for every strategy (the encoder is shared), so it is reported
        separately rather than folded into :meth:`cost`.
        """
        check_positive_int(num_features, "num_features")
        return num_features * self.dimension


def compare_strategies(
    dimension: int,
    num_classes: int,
    multimodel_models_per_class: int = 64,
    word_width: int = 64,
) -> Dict[str, StrategyCost]:
    """Costs of the four Table 1 strategies under one cost model.

    Baseline, retraining and LeHDC all store exactly ``K`` class hypervectors
    (they differ only in training), so their rows are identical; the
    multi-model ensemble stores ``K * N`` and scales every cost by ``N``.
    """
    model = InferenceCostModel(dimension, num_classes, word_width=word_width)
    return {
        "baseline": model.cost("baseline"),
        "retraining": model.cost("retraining"),
        "lehdc": model.cost("lehdc"),
        "multimodel": model.cost(
            "multimodel", models_per_class=multimodel_models_per_class
        ),
    }


__all__ = ["StrategyCost", "InferenceCostModel", "compare_strategies"]
