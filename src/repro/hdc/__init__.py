"""Hyperdimensional-computing substrate.

This package implements the binary (bipolar) HDC machinery the paper builds
on: hypervector algebra (Sec. 2), orthogonal position and correlated level
item memories, the record-based encoder of Eq. 1, an N-gram encoder, feature
quantisation, and a bit-packed backend used by the hardware cost model.
"""

from repro.hdc.hypervector import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    permute,
    random_hypervectors,
    sign_with_ties,
)
from repro.hdc.itemmemory import LevelItemMemory, RandomItemMemory
from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer
from repro.hdc.encoders import Encoder, NGramEncoder, RecordEncoder
from repro.kernels.packed import PackedHypervectors, pack_bipolar, unpack_bipolar

__all__ = [
    "bind",
    "bundle",
    "cosine_similarity",
    "dot_similarity",
    "hamming_distance",
    "permute",
    "random_hypervectors",
    "sign_with_ties",
    "RandomItemMemory",
    "LevelItemMemory",
    "UniformQuantizer",
    "QuantileQuantizer",
    "Encoder",
    "RecordEncoder",
    "NGramEncoder",
    "PackedHypervectors",
    "pack_bipolar",
    "unpack_bipolar",
]
