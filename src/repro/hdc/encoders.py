"""HDC encoders: map raw feature vectors to bipolar sample hypervectors.

The paper's case study (and this reproduction's default) is the
*record-based* encoder of Eq. 1:

.. math::

    H = sgn\\Big(\\sum_{i=1}^{N} F_i \\circ V_{f_i}\\Big)

where ``F_i`` is the (quasi-orthogonal) position hypervector of feature *i*
and ``V_{f_i}`` the (correlated) level hypervector of that feature's
quantised value.  An *N-gram* encoder is also provided because the paper
notes LeHDC is encoder-agnostic; it lets the test-suite and examples
demonstrate that the training strategies plug into either encoder unchanged.

Both encoders share the :class:`Encoder` interface: ``fit`` learns the
quantiser (and builds the item memories), ``encode`` maps a feature matrix to
a ``(samples, D)`` int8 hypervector matrix, and ``encode_packed`` goes
straight to bit-packed words without the dense intermediate.  The pre-sign
accumulation itself runs on the fused kernels in :mod:`repro.kernels.encode`
— the *same* kernels the serving engine compiles against, so training,
evaluation and serving cannot drift apart.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.hdc.itemmemory import LevelItemMemory, RandomItemMemory
from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer
from repro.kernels.encode import DEFAULT_LUT_BUDGET_BYTES, build_accumulator
from repro.kernels.packed import PackedHypervectors, pack_bits, sign_fuse_bits
from repro.utils.rng import RngMixin, SeedLike
from repro.utils.validation import check_fitted, check_matrix, check_positive_int


class Encoder(RngMixin, abc.ABC):
    """Common interface for HDC encoders.

    Parameters
    ----------
    dimension:
        Hypervector dimension ``D``.
    num_levels:
        Number of quantisation levels for feature values.
    quantizer:
        ``"uniform"`` (equal-width bins) or ``"quantile"`` (equal-frequency).
    tie_break:
        How ``sgn(0)`` is resolved; see :func:`repro.hdc.hypervector.sign_with_ties`.
    seed:
        Seed or generator controlling item-memory construction and tie-breaks.
    """

    def __init__(
        self,
        dimension: int = 10_000,
        num_levels: int = 32,
        quantizer: str = "uniform",
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.dimension = check_positive_int(dimension, "dimension")
        self.num_levels = check_positive_int(num_levels, "num_levels")
        if quantizer not in ("uniform", "quantile"):
            raise ValueError(
                f"quantizer must be 'uniform' or 'quantile', got {quantizer!r}"
            )
        if tie_break not in ("random", "positive"):
            raise ValueError(
                f"tie_break must be 'random' or 'positive', got {tie_break!r}"
            )
        self.quantizer_kind = quantizer
        self.tie_break = tie_break
        self.lut_budget_bytes = DEFAULT_LUT_BUDGET_BYTES
        self.num_features: Optional[int] = None
        self.position_memory: Optional[RandomItemMemory] = None
        self.level_memory: Optional[LevelItemMemory] = None
        self._quantizer = None
        self._accumulator = None
        self._accumulator_budget: Optional[int] = None

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray) -> "Encoder":
        """Learn the quantiser and build item memories for *features*."""
        features = check_matrix(features, "features", dtype=np.float64)
        self.num_features = features.shape[1]
        quantizer_cls = (
            UniformQuantizer if self.quantizer_kind == "uniform" else QuantileQuantizer
        )
        self._quantizer = quantizer_cls(self.num_levels)
        self._quantizer.fit(features)
        self.position_memory = RandomItemMemory(
            self.num_features, self.dimension, seed=self.rng
        )
        self.level_memory = LevelItemMemory(
            self.num_levels, self.dimension, seed=self.rng
        )
        self._accumulator = None  # item memories changed; recompile lazily
        return self

    # --------------------------------------------------------------- encode
    def _get_accumulator(self):
        """The compiled fused accumulator (built lazily, rebuilt on budget change)."""
        if self._accumulator is None or self._accumulator_budget != self.lut_budget_bytes:
            accumulator = build_accumulator(self, lut_budget_bytes=self.lut_budget_bytes)
            if accumulator is None:  # pragma: no cover - future encoders
                raise NotImplementedError(
                    f"no fused kernel for {type(self).__name__}; override _accumulate"
                )
            self._accumulator = accumulator
            self._accumulator_budget = self.lut_budget_bytes
        return self._accumulator

    def _accumulate(self, levels: np.ndarray) -> np.ndarray:
        """The *pre-sign* integer accumulation for a batch of level rows."""
        return self._get_accumulator()(levels)

    def accumulate(self, features: np.ndarray) -> np.ndarray:
        """Pre-sign integer accumulation for raw *features* (``(n, D)`` int32).

        This is the thread-safe half of encoding — it touches only immutable
        compiled tables, no RNG — which is why the serving engine calls it
        outside its tie-break lock.
        """
        check_fitted(self, "_quantizer")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.num_features
        )
        return self._accumulate(self._quantizer.transform(features))

    def encode(self, features: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Encode a ``(samples, features)`` matrix to ``(samples, D)`` int8."""
        check_fitted(self, "_quantizer")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.num_features
        )
        levels = self._quantizer.transform(features)
        outputs = np.empty((features.shape[0], self.dimension), dtype=BIPOLAR_DTYPE)
        for start in range(0, features.shape[0], batch_size):
            stop = min(start + batch_size, features.shape[0])
            raw = self._accumulate(levels[start:stop])
            outputs[start:stop] = sign_with_ties(
                raw, rng=self.rng, tie_break=self.tie_break
            )
        return outputs

    def encode_packed(
        self, features: np.ndarray, batch_size: int = 256
    ) -> PackedHypervectors:
        """Encode straight to bit-packed words, skipping the dense intermediate.

        The sign of the raw accumulation *is* the packed bit
        (:func:`repro.kernels.packed.sign_fuse_bits`), so the int8
        hypervector matrix never exists.  RNG draws for ``sgn(0)`` tie-breaks
        mirror :meth:`encode` exactly, keeping this path bit-identical to
        ``pack_bipolar(self.encode(features))``.
        """
        check_fitted(self, "_quantizer")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.num_features
        )
        levels = self._quantizer.transform(features)
        num_words = (self.dimension + 63) // 64
        words = np.empty((features.shape[0], num_words), dtype=np.uint64)
        for start in range(0, features.shape[0], batch_size):
            stop = min(start + batch_size, features.shape[0])
            raw = self._accumulate(levels[start:stop])
            bits = sign_fuse_bits(raw, tie_break=self.tie_break, rng=self.rng)
            words[start:stop] = pack_bits(bits, self.dimension).words
        return PackedHypervectors(words=words, dimension=self.dimension)

    def fit_encode(self, features: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`encode` on the same data."""
        return self.fit(features).encode(features, batch_size=batch_size)

    def encode_one(self, feature_vector: np.ndarray) -> np.ndarray:
        """Encode a single sample; returns a 1-D hypervector of length ``D``."""
        return self.encode(np.atleast_2d(feature_vector))[0]


class RecordEncoder(Encoder):
    """Record-based encoder of Eq. 1 (position-value binding + bundling).

    Each feature contributes ``F_i ∘ V_{level(x_i)}``; contributions are summed
    over features and binarised.  This is the encoder used for every
    experiment in the paper's evaluation.  The bind+bundle runs on the fused
    position×level LUT kernel (:class:`repro.kernels.encode.RecordAccumulator`).
    """


class NGramEncoder(Encoder):
    """N-gram encoder: bind permuted value hypervectors of adjacent features.

    Every window of ``n`` consecutive features is bound into a single
    n-gram hypervector ``V_{f_i} ∘ ρ(V_{f_{i+1}}) ∘ ... ∘ ρ^{n-1}(V_{f_{i+n-1}})``
    (``ρ`` is the cyclic permutation); n-grams are then bundled.  Feature
    positions are implicit in the permutation depth, so no position memory is
    consumed at encode time (it is still built by ``fit`` for interface
    uniformity).  The window binding runs on the vectorised rolled-gather
    kernel (:class:`repro.kernels.encode.NGramAccumulator`).
    """

    def __init__(
        self,
        dimension: int = 10_000,
        num_levels: int = 32,
        ngram: int = 3,
        quantizer: str = "uniform",
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(
            dimension=dimension,
            num_levels=num_levels,
            quantizer=quantizer,
            tie_break=tie_break,
            seed=seed,
        )
        self.ngram = check_positive_int(ngram, "ngram")

    def fit(self, features: np.ndarray) -> "NGramEncoder":
        features = check_matrix(features, "features", dtype=np.float64)
        if features.shape[1] < self.ngram:
            raise ValueError(
                f"ngram={self.ngram} exceeds the number of features {features.shape[1]}"
            )
        super().fit(features)
        return self


__all__ = ["Encoder", "RecordEncoder", "NGramEncoder"]
