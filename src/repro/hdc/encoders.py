"""HDC encoders: map raw feature vectors to bipolar sample hypervectors.

The paper's case study (and this reproduction's default) is the
*record-based* encoder of Eq. 1:

.. math::

    H = sgn\\Big(\\sum_{i=1}^{N} F_i \\circ V_{f_i}\\Big)

where ``F_i`` is the (quasi-orthogonal) position hypervector of feature *i*
and ``V_{f_i}`` the (correlated) level hypervector of that feature's
quantised value.  An *N-gram* encoder is also provided because the paper
notes LeHDC is encoder-agnostic; it lets the test-suite and examples
demonstrate that the training strategies plug into either encoder unchanged.

Both encoders share the :class:`Encoder` interface: ``fit`` learns the
quantiser (and builds the item memories), ``encode`` maps a feature matrix to
a ``(samples, D)`` int8 hypervector matrix.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.hdc.hypervector import BIPOLAR_DTYPE, bind, permute, sign_with_ties
from repro.hdc.itemmemory import LevelItemMemory, RandomItemMemory
from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer
from repro.utils.rng import RngMixin, SeedLike
from repro.utils.validation import check_fitted, check_matrix, check_positive_int


class Encoder(RngMixin, abc.ABC):
    """Common interface for HDC encoders.

    Parameters
    ----------
    dimension:
        Hypervector dimension ``D``.
    num_levels:
        Number of quantisation levels for feature values.
    quantizer:
        ``"uniform"`` (equal-width bins) or ``"quantile"`` (equal-frequency).
    tie_break:
        How ``sgn(0)`` is resolved; see :func:`repro.hdc.hypervector.sign_with_ties`.
    seed:
        Seed or generator controlling item-memory construction and tie-breaks.
    """

    def __init__(
        self,
        dimension: int = 10_000,
        num_levels: int = 32,
        quantizer: str = "uniform",
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(seed=seed)
        self.dimension = check_positive_int(dimension, "dimension")
        self.num_levels = check_positive_int(num_levels, "num_levels")
        if quantizer not in ("uniform", "quantile"):
            raise ValueError(
                f"quantizer must be 'uniform' or 'quantile', got {quantizer!r}"
            )
        if tie_break not in ("random", "positive"):
            raise ValueError(
                f"tie_break must be 'random' or 'positive', got {tie_break!r}"
            )
        self.quantizer_kind = quantizer
        self.tie_break = tie_break
        self.num_features: Optional[int] = None
        self.position_memory: Optional[RandomItemMemory] = None
        self.level_memory: Optional[LevelItemMemory] = None
        self._quantizer = None

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray) -> "Encoder":
        """Learn the quantiser and build item memories for *features*."""
        features = check_matrix(features, "features", dtype=np.float64)
        self.num_features = features.shape[1]
        quantizer_cls = (
            UniformQuantizer if self.quantizer_kind == "uniform" else QuantileQuantizer
        )
        self._quantizer = quantizer_cls(self.num_levels)
        self._quantizer.fit(features)
        self.position_memory = RandomItemMemory(
            self.num_features, self.dimension, seed=self.rng
        )
        self.level_memory = LevelItemMemory(
            self.num_levels, self.dimension, seed=self.rng
        )
        return self

    # --------------------------------------------------------------- encode
    def encode(self, features: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Encode a ``(samples, features)`` matrix to ``(samples, D)`` int8."""
        check_fitted(self, "_quantizer")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.num_features
        )
        levels = self._quantizer.transform(features)
        outputs = np.empty((features.shape[0], self.dimension), dtype=BIPOLAR_DTYPE)
        for start in range(0, features.shape[0], batch_size):
            stop = min(start + batch_size, features.shape[0])
            raw = self._accumulate(levels[start:stop])
            outputs[start:stop] = sign_with_ties(
                raw, rng=self.rng, tie_break=self.tie_break
            )
        return outputs

    def fit_encode(self, features: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`encode` on the same data."""
        return self.fit(features).encode(features, batch_size=batch_size)

    def encode_one(self, feature_vector: np.ndarray) -> np.ndarray:
        """Encode a single sample; returns a 1-D hypervector of length ``D``."""
        return self.encode(np.atleast_2d(feature_vector))[0]

    @abc.abstractmethod
    def _accumulate(self, levels: np.ndarray) -> np.ndarray:
        """Return the *pre-sign* integer accumulation for a batch of level rows."""


class RecordEncoder(Encoder):
    """Record-based encoder of Eq. 1 (position-value binding + bundling).

    Each feature contributes ``F_i ∘ V_{level(x_i)}``; contributions are summed
    over features and binarised.  This is the encoder used for every
    experiment in the paper's evaluation.
    """

    def _accumulate(self, levels: np.ndarray) -> np.ndarray:
        positions = self.position_memory.vectors.astype(np.int32)
        level_vectors = self.level_memory.vectors.astype(np.int32)
        batch, num_features = levels.shape
        accumulated = np.zeros((batch, self.dimension), dtype=np.int32)
        # Loop over features rather than samples: each step is a vectorised
        # (batch, D) gather + multiply, so the Python-level loop length is N,
        # independent of batch size.
        for feature_index in range(num_features):
            value_vectors = level_vectors[levels[:, feature_index]]
            accumulated += positions[feature_index] * value_vectors
        return accumulated


class NGramEncoder(Encoder):
    """N-gram encoder: bind permuted value hypervectors of adjacent features.

    Every window of ``n`` consecutive features is bound into a single
    n-gram hypervector ``V_{f_i} ∘ ρ(V_{f_{i+1}}) ∘ ... ∘ ρ^{n-1}(V_{f_{i+n-1}})``
    (``ρ`` is the cyclic permutation); n-grams are then bundled.  Feature
    positions are implicit in the permutation depth, so no position memory is
    consumed at encode time (it is still built by ``fit`` for interface
    uniformity).
    """

    def __init__(
        self,
        dimension: int = 10_000,
        num_levels: int = 32,
        ngram: int = 3,
        quantizer: str = "uniform",
        tie_break: str = "random",
        seed: SeedLike = None,
    ):
        super().__init__(
            dimension=dimension,
            num_levels=num_levels,
            quantizer=quantizer,
            tie_break=tie_break,
            seed=seed,
        )
        self.ngram = check_positive_int(ngram, "ngram")

    def fit(self, features: np.ndarray) -> "NGramEncoder":
        features = check_matrix(features, "features", dtype=np.float64)
        if features.shape[1] < self.ngram:
            raise ValueError(
                f"ngram={self.ngram} exceeds the number of features {features.shape[1]}"
            )
        super().fit(features)
        return self

    def _accumulate(self, levels: np.ndarray) -> np.ndarray:
        level_vectors = self.level_memory.vectors.astype(np.int32)
        batch, num_features = levels.shape
        # Pre-permute the level codebook once per n-gram slot.
        permuted_codebooks = [
            np.roll(level_vectors, offset, axis=1) for offset in range(self.ngram)
        ]
        accumulated = np.zeros((batch, self.dimension), dtype=np.int32)
        for start in range(num_features - self.ngram + 1):
            gram = permuted_codebooks[0][levels[:, start]].copy()
            for offset in range(1, self.ngram):
                gram *= permuted_codebooks[offset][levels[:, start + offset]]
            accumulated += gram
        return accumulated


__all__ = ["Encoder", "RecordEncoder", "NGramEncoder"]
