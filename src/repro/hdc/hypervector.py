"""Bipolar hypervector algebra.

All hypervectors in this library are dense NumPy arrays with entries in
``{+1, -1}`` stored as ``int8`` (the paper's "bipolar" convention,
Sec. 2).  Batched variants operate on 2-D arrays whose rows are hypervectors.

The key operations are:

* :func:`bind` - element-wise (Hadamard) product, used to pair a feature
  position hypervector with its value hypervector in Eq. 1;
* :func:`bundle` - element-wise summation followed by :func:`sign_with_ties`,
  used both inside the record encoder (Eq. 1) and in centroid training
  (Eq. 2);
* :func:`hamming_distance` / :func:`cosine_similarity` / :func:`dot_similarity`
  - the three equivalent similarity measures related by
  ``cosine = 1 - 2*hamming`` and ``dot = D * cosine`` (Sec. 3.1), which is the
  identity the BNN equivalence rests on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

BIPOLAR_DTYPE = np.int8


def random_hypervectors(
    count: int, dimension: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw *count* i.i.d. uniform bipolar hypervectors of length *dimension*.

    Independent uniform draws are quasi-orthogonal in high dimension: the
    expected normalised Hamming distance between any two of them is 0.5,
    which is exactly the property the paper requires of feature-position
    hypervectors.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    rng = ensure_rng(seed)
    bits = rng.integers(0, 2, size=(count, dimension), dtype=np.int8)
    return (2 * bits - 1).astype(BIPOLAR_DTYPE)


def sign_with_ties(
    values: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    tie_break: str = "random",
) -> np.ndarray:
    """Binarise *values* to ``{+1, -1}`` with explicit handling of zeros.

    The paper assumes ``sgn(0)`` is randomly assigned +1 or -1 (Sec. 2.1).
    ``tie_break`` selects that behaviour (``"random"``, the default) or a
    deterministic assignment to +1 (``"positive"``), which is useful in tests
    and in hardware implementations that avoid an RNG.
    """
    if tie_break not in ("random", "positive"):
        raise ValueError(f"tie_break must be 'random' or 'positive', got {tie_break!r}")
    values = np.asarray(values)
    result = np.where(values > 0, 1, -1).astype(BIPOLAR_DTYPE)
    zeros = values == 0
    if np.any(zeros):
        if tie_break == "random":
            rng = ensure_rng(rng)
            random_signs = (
                2 * rng.integers(0, 2, size=int(zeros.sum()), dtype=np.int8) - 1
            )
            result[zeros] = random_signs
        else:
            result[zeros] = 1
    return result


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind hypervectors by the Hadamard (element-wise) product.

    Binding is its own inverse for bipolar vectors (``bind(bind(a, b), b) == a``)
    and produces a vector quasi-orthogonal to both inputs.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return (a.astype(np.int8) * b.astype(np.int8)).astype(BIPOLAR_DTYPE)


def bundle(
    hypervectors: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    tie_break: str = "random",
) -> np.ndarray:
    """Bundle (superpose) hypervectors by summation + sign (majority rule).

    ``hypervectors`` is a 2-D array whose rows are the vectors to combine.
    The result is the binarised element-wise sum, i.e. Eq. 1's outer ``sgn``
    and Eq. 2's class-centroid rule.
    """
    hypervectors = np.asarray(hypervectors)
    if hypervectors.ndim != 2:
        raise ValueError(f"expected a 2-D array of rows, got shape {hypervectors.shape}")
    accumulated = hypervectors.astype(np.int64).sum(axis=0)
    return sign_with_ties(accumulated, rng=rng, tie_break=tie_break)


def permute(hypervector: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically permute (rotate) a hypervector.

    Permutation encodes sequence position in N-gram encoders: it is
    distance-preserving and (for shifts != 0 mod D) maps a vector to one
    quasi-orthogonal to itself.
    """
    hypervector = np.asarray(hypervector)
    return np.roll(hypervector, shifts, axis=-1)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Normalised Hamming distance between bipolar hypervectors.

    Supports broadcasting over leading axes: ``a`` of shape ``(n, D)`` against
    ``b`` of shape ``(k, D)`` yields an ``(n, k)`` distance matrix, which is
    what the HDC inference step (Eq. 4) consumes.
    """
    a = np.asarray(a, dtype=np.int32)
    b = np.asarray(b, dtype=np.int32)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}")
    dimension = a.shape[-1]
    dots = _pairwise_dot(a, b)
    # For bipolar vectors: dot = (#equal - #different) and #equal + #different = D,
    # hence #different = (D - dot) / 2.
    return (dimension - dots) / (2.0 * dimension)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity between bipolar hypervectors (Eq. 5).

    For strictly bipolar inputs this equals ``1 - 2 * hamming_distance``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}")
    dots = _pairwise_dot(a, b)
    norm_a = np.linalg.norm(np.atleast_2d(a), axis=-1)
    norm_b = np.linalg.norm(np.atleast_2d(b), axis=-1)
    denom = np.outer(norm_a, norm_b)
    result = np.asarray(dots, dtype=np.float64).reshape(norm_a.size, norm_b.size) / denom
    return _match_output_shape(result, a, b)


def dot_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer dot-product similarity ``En(x)^T c_k`` (Eq. 6).

    This is the quantity a single-layer BNN computes at each output neuron;
    argmax over it is equivalent to argmin over Hamming distance.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}")
    return _pairwise_dot(a, b)


def _pairwise_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dot products with shape promotion: (n,D)x(k,D) -> (n,k); 1-D inputs collapse."""
    a2 = np.atleast_2d(a)
    b2 = np.atleast_2d(b)
    result = a2 @ b2.T
    return _match_output_shape(result, a, b)


def _match_output_shape(result: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_was_1d = np.asarray(a).ndim == 1
    b_was_1d = np.asarray(b).ndim == 1
    if a_was_1d and b_was_1d:
        return result[0, 0]
    if a_was_1d:
        return result[0]
    if b_was_1d:
        return result[:, 0]
    return result
