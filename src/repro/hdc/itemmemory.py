"""Item memories: the lookup tables mapping symbols to hypervectors.

Two kinds are needed by the record-based encoder of Eq. 1:

* :class:`RandomItemMemory` holds one independently drawn hypervector per
  feature *position*; independence makes them quasi-orthogonal
  (``Hamm(F_i, F_j) ~ 0.5``), which is what lets the encoder keep features
  distinguishable after superposition.
* :class:`LevelItemMemory` holds one hypervector per quantised feature
  *value* such that the Hamming distance between two level hypervectors is
  proportional to the difference between the values they represent
  (``Hamm(V_i, V_j) ∝ |f_i - f_j| / (max - min)``).  It is built by the
  standard progressive bit-flipping construction: start from a random vector
  for the lowest level and flip a fresh disjoint slice of ``D/2 / (L-1)``
  coordinates per step, so the first and last levels end up at distance 0.5.
"""

from __future__ import annotations


import numpy as np

from repro.hdc.hypervector import BIPOLAR_DTYPE, random_hypervectors
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


class RandomItemMemory:
    """Orthogonal codebook of `num_items` random bipolar hypervectors.

    Parameters
    ----------
    num_items:
        Number of symbols (e.g. feature positions).
    dimension:
        Hypervector dimension ``D``.
    seed:
        Seed or generator for reproducibility.
    """

    def __init__(self, num_items: int, dimension: int, seed: SeedLike = None):
        self.num_items = check_positive_int(num_items, "num_items")
        self.dimension = check_positive_int(dimension, "dimension")
        self._vectors = random_hypervectors(self.num_items, self.dimension, seed=seed)

    @property
    def vectors(self) -> np.ndarray:
        """The full ``(num_items, dimension)`` int8 codebook."""
        return self._vectors

    def __len__(self) -> int:
        return self.num_items

    def __getitem__(self, index) -> np.ndarray:
        """Look up hypervector(s) by integer index or array of indices."""
        return self._vectors[index]

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised lookup: returns an array of hypervectors for *indices*."""
        indices = np.asarray(indices)
        if np.any(indices < 0) or np.any(indices >= self.num_items):
            raise IndexError(
                f"indices must be in [0, {self.num_items}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self._vectors[indices]


class LevelItemMemory:
    """Correlated codebook for quantised feature values.

    The construction flips a disjoint block of coordinates at each level so
    that ``Hamm(level_i, level_j) = 0.5 * |i - j| / (num_levels - 1)`` exactly
    (up to integer rounding of block boundaries), matching the linear
    correlation structure the paper requires of value hypervectors.

    Parameters
    ----------
    num_levels:
        Number of quantisation levels ``L`` (must be >= 2 to carry any
        information; a single level is permitted but degenerate).
    dimension:
        Hypervector dimension ``D``.
    seed:
        Seed or generator for reproducibility.
    """

    def __init__(self, num_levels: int, dimension: int, seed: SeedLike = None):
        self.num_levels = check_positive_int(num_levels, "num_levels")
        self.dimension = check_positive_int(dimension, "dimension")
        rng = ensure_rng(seed)
        self._vectors = self._build(rng)

    def _build(self, rng: np.random.Generator) -> np.ndarray:
        base = random_hypervectors(1, self.dimension, seed=rng)[0]
        vectors = np.empty((self.num_levels, self.dimension), dtype=BIPOLAR_DTYPE)
        vectors[0] = base
        if self.num_levels == 1:
            return vectors
        # Flip half of the coordinates in total, spread evenly over the levels,
        # using a random permutation so flipped blocks are disjoint.
        flip_order = rng.permutation(self.dimension)
        total_flips = self.dimension // 2
        boundaries = np.linspace(0, total_flips, self.num_levels, dtype=np.int64)
        current = base.copy()
        for level in range(1, self.num_levels):
            start, stop = boundaries[level - 1], boundaries[level]
            flip_indices = flip_order[start:stop]
            current = current.copy()
            current[flip_indices] = -current[flip_indices]
            vectors[level] = current
        return vectors

    @property
    def vectors(self) -> np.ndarray:
        """The full ``(num_levels, dimension)`` int8 codebook."""
        return self._vectors

    def __len__(self) -> int:
        return self.num_levels

    def __getitem__(self, index) -> np.ndarray:
        """Look up level hypervector(s) by level index or array of indices."""
        return self._vectors[index]

    def lookup(self, levels: np.ndarray) -> np.ndarray:
        """Vectorised lookup of level hypervectors for an array of level indices."""
        levels = np.asarray(levels)
        if np.any(levels < 0) or np.any(levels >= self.num_levels):
            raise IndexError(
                f"levels must be in [0, {self.num_levels}), got range "
                f"[{levels.min()}, {levels.max()}]"
            )
        return self._vectors[levels]

    def expected_distance(self, level_a: int, level_b: int) -> float:
        """The distance the construction targets for a pair of levels.

        Useful in tests and documentation: the realised Hamming distance of
        the built codebook matches this value up to block-rounding error.
        """
        if self.num_levels == 1:
            return 0.0
        return 0.5 * abs(level_a - level_b) / (self.num_levels - 1)


__all__ = ["RandomItemMemory", "LevelItemMemory"]
