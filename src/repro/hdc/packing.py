"""Deprecated shim over :mod:`repro.kernels.packed`.

The bit-packed backend moved into the shared kernel layer so serving,
classifiers, and the hardware cost model all ride one implementation.  This
module keeps the historical ``repro.hdc.packing`` import path working: every
public name resolves to the identical object in :mod:`repro.kernels.packed`
(``PackedHypervectors`` here *is* the kernel-layer class, so ``isinstance``
checks keep working across old and new imports).

New code should import from :mod:`repro.kernels` directly.  A single
:class:`DeprecationWarning` is emitted when this module is first imported;
attribute access afterwards is warning-free (the old per-attribute warning
fired once per call site per process, which buried real warnings in loops).
"""

from __future__ import annotations

import warnings

from repro.kernels import packed as _packed
from repro.kernels.packed import (  # noqa: F401 - re-exports
    PackedHypervectors,
    bit_differences_words,
    pack_bipolar,
    pack_bits,
    packed_dot_scores,
    popcount,
    sign_fuse_bits,
    unpack_bipolar,
)

warnings.warn(
    "repro.hdc.packing is deprecated; import from repro.kernels instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["PackedHypervectors", "pack_bipolar", "pack_bits", "unpack_bipolar"]

#: Historical private helpers, mapped to their kernel-layer spellings.
_PRIVATE_ALIASES = {
    "_popcount": "popcount",
    "_popcount_table": "_popcount_table",
    "_POPCOUNT_16": "_POPCOUNT_16",
    "_HAS_BITWISE_COUNT": "_HAS_BITWISE_COUNT",
    "_WORD_BITS": "_WORD_BITS",
    "_DISTANCE_BLOCK_BYTES": "_DISTANCE_BLOCK_BYTES",
}


def __getattr__(name: str):
    if name in _PRIVATE_ALIASES:
        return getattr(_packed, _PRIVATE_ALIASES[name])
    if not name.startswith("_") and hasattr(_packed, name):
        return getattr(_packed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(dir(_packed)))
