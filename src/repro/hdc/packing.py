"""Bit-packed hypervector backend.

Binary HDC is attractive on hardware because a bipolar hypervector can be
stored as ``D`` bits and the Hamming distance computed with XOR + popcount.
This module provides that packed representation in NumPy (uint64 words), used
by the hardware cost model and by tests that check the packed Hamming
distance agrees with the dense implementation.  Packing maps ``+1 -> 1`` and
``-1 -> 0``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdc.hypervector import BIPOLAR_DTYPE

_WORD_BITS = 64

# Popcount lookup table for 16-bit chunks; uint64 words are split into four.
_POPCOUNT_16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)


def pack_bipolar(hypervectors: np.ndarray) -> "PackedHypervectors":
    """Pack a ``(rows, D)`` bipolar int8 matrix into uint64 words."""
    hypervectors = np.atleast_2d(np.asarray(hypervectors))
    if not np.all(np.isin(hypervectors, (-1, 1))):
        raise ValueError("pack_bipolar expects entries in {+1, -1}")
    dimension = hypervectors.shape[1]
    bits = (hypervectors > 0).astype(np.uint8)
    padded_width = ((dimension + _WORD_BITS - 1) // _WORD_BITS) * _WORD_BITS
    if padded_width != dimension:
        padding = np.zeros(
            (hypervectors.shape[0], padded_width - dimension), dtype=np.uint8
        )
        bits = np.concatenate([bits, padding], axis=1)
    # Pack bits little-endian within each 64-bit word.
    reshaped = bits.reshape(hypervectors.shape[0], -1, _WORD_BITS)
    weights = (1 << np.arange(_WORD_BITS, dtype=np.uint64)).astype(np.uint64)
    words = (reshaped.astype(np.uint64) * weights).sum(axis=2, dtype=np.uint64)
    return PackedHypervectors(words=words, dimension=dimension)


def unpack_bipolar(packed: "PackedHypervectors") -> np.ndarray:
    """Reverse :func:`pack_bipolar`, returning the dense ``{+1, -1}`` matrix."""
    words = packed.words
    rows, num_words = words.shape
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = ((words[:, :, None] >> shifts) & np.uint64(1)).astype(np.int8)
    dense = bits.reshape(rows, num_words * _WORD_BITS)[:, : packed.dimension]
    return (2 * dense - 1).astype(BIPOLAR_DTYPE)


def _popcount(words: np.ndarray) -> np.ndarray:
    """Population count of each uint64 element via four 16-bit table lookups."""
    counts = np.zeros(words.shape, dtype=np.uint32)
    remaining = words.copy()
    for _ in range(4):
        counts += _POPCOUNT_16[(remaining & np.uint64(0xFFFF)).astype(np.uint32)]
        remaining >>= np.uint64(16)
    return counts


class PackedHypervectors:
    """A batch of bit-packed hypervectors.

    Attributes
    ----------
    words:
        ``(rows, ceil(D / 64))`` uint64 array holding the packed bits.
    dimension:
        The original hypervector dimension ``D`` (needed because the last
        word may be partially used).
    """

    def __init__(self, words: np.ndarray, dimension: int):
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        expected_words = (dimension + _WORD_BITS - 1) // _WORD_BITS
        if words.shape[1] != expected_words:
            raise ValueError(
                f"words has {words.shape[1]} columns, expected {expected_words} "
                f"for dimension {dimension}"
            )
        self.words = words
        self.dimension = dimension

    def __len__(self) -> int:
        return self.words.shape[0]

    @property
    def storage_bytes(self) -> int:
        """Bytes needed to store this batch (what an accelerator would keep)."""
        return self.words.nbytes

    def hamming_distance(self, other: "PackedHypervectors") -> np.ndarray:
        """Pairwise normalised Hamming distances, shape ``(len(self), len(other))``.

        Computed as popcount(XOR) over packed words, exactly how a hardware
        implementation would evaluate Eq. 4.
        """
        if other.dimension != self.dimension:
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        distances = np.empty((len(self), len(other)), dtype=np.float64)
        for row_index in range(len(self)):
            xor = np.bitwise_xor(self.words[row_index][None, :], other.words)
            distances[row_index] = _popcount(xor).sum(axis=1)
        return distances / float(self.dimension)


__all__ = ["PackedHypervectors", "pack_bipolar", "unpack_bipolar"]
