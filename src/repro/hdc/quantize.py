"""Feature quantisers: map real-valued features to level indices.

The record-based encoder represents each feature value by a level hypervector
from a :class:`~repro.hdc.itemmemory.LevelItemMemory`.  These quantisers learn
the mapping from raw feature values to level indices on the training set and
then apply it consistently to training and test data (clipping out-of-range
test values to the learned range, as a deployed HDC pipeline would).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_fitted, check_matrix, check_positive_int


class UniformQuantizer:
    """Equal-width binning of each feature into ``num_levels`` levels.

    The bin edges are computed per-feature from the training data's min/max,
    which matches the ``[min, max]`` value-range convention in Sec. 2.
    Features that are constant on the training set map to level 0.
    """

    def __init__(self, num_levels: int):
        self.num_levels = check_positive_int(num_levels, "num_levels")
        self._minimums: Optional[np.ndarray] = None
        self._ranges: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "UniformQuantizer":
        """Learn per-feature ranges from a ``(samples, features)`` matrix."""
        features = check_matrix(features, "features", dtype=np.float64)
        self._minimums = features.min(axis=0)
        spans = features.max(axis=0) - self._minimums
        # Guard constant features: a zero span would divide by zero; such
        # features carry no information and are pinned to level 0.
        spans[spans == 0] = np.inf
        self._ranges = spans
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map features to integer level indices in ``[0, num_levels)``."""
        check_fitted(self, "_minimums")
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self._minimums.shape[0]
        )
        scaled = (features - self._minimums) / self._ranges
        levels = np.floor(scaled * self.num_levels).astype(np.int64)
        return np.clip(levels, 0, self.num_levels - 1)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`transform` on the same data."""
        return self.fit(features).transform(features)


class QuantileQuantizer:
    """Equal-frequency binning: bin edges at training-set quantiles.

    More robust than uniform binning when features have heavy-tailed
    distributions (e.g. accelerometer magnitudes in the HAR/PAMAP-style
    workloads); each level then receives roughly the same number of training
    values.
    """

    def __init__(self, num_levels: int):
        self.num_levels = check_positive_int(num_levels, "num_levels")
        self._edges: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "QuantileQuantizer":
        """Learn per-feature quantile edges from a ``(samples, features)`` matrix."""
        features = check_matrix(features, "features", dtype=np.float64)
        quantiles = np.linspace(0.0, 1.0, self.num_levels + 1)[1:-1]
        # edges shape: (num_levels - 1, n_features)
        self._edges = np.quantile(features, quantiles, axis=0)
        if self._edges.ndim == 1:
            self._edges = self._edges.reshape(-1, features.shape[1])
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map features to integer level indices in ``[0, num_levels)``."""
        check_fitted(self, "_edges")
        n_features = self._edges.shape[1] if self._edges.size else None
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=n_features
        )
        if self.num_levels == 1:
            return np.zeros(features.shape, dtype=np.int64)
        levels = np.zeros(features.shape, dtype=np.int64)
        for column in range(features.shape[1]):
            levels[:, column] = np.searchsorted(
                self._edges[:, column], features[:, column], side="right"
            )
        return np.clip(levels, 0, self.num_levels - 1)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`transform` on the same data."""
        return self.fit(features).transform(features)


__all__ = ["UniformQuantizer", "QuantileQuantizer"]
