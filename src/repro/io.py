"""Model persistence: save and load trained HDC pipelines.

A deployed HDC classifier consists of three artefacts:

* the encoder's item memories (position and level hypervectors) and its
  quantiser state — needed to encode queries exactly as at training time;
* the binary class hypervectors — the entire inference-time model — plus,
  for SearcHD-style ensembles, the full ``(K, N, D)`` model bank, so a
  loaded ensemble keeps its max-over-sub-models decision rule instead of
  silently degrading to the per-class majority vectors;
* metadata (dimension, class count, the training strategy that produced it).

:func:`save_model` / :func:`load_model` store all three in a single ``.npz``
file (NumPy's portable compressed container, no pickle involved), so a model
trained with LeHDC on a workstation can be shipped to the device-side runtime
— or simply reloaded later — without retraining.  Loading reconstructs an
:class:`~repro.classifiers.pipeline.HDCPipeline` whose predictions match the
saved one (exactly, when the encoder uses the deterministic ``"positive"``
tie-break; up to the random resolution of ``sgn(0)`` ties otherwise).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import Encoder, NGramEncoder, RecordEncoder
from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer

FORMAT_VERSION = 1
#: Archives carrying a multi-model ensemble bank are stamped with this higher
#: version: readers that predate ensemble persistence reject them with a
#: clear format error instead of silently serving the per-class majority
#: vectors.  Plain single-hypervector models keep ``FORMAT_VERSION`` so they
#: stay readable by older builds.
ENSEMBLE_FORMAT_VERSION = 2
SUPPORTED_FORMAT_VERSIONS = (FORMAT_VERSION, ENSEMBLE_FORMAT_VERSION)

_ENCODER_KINDS = ("record", "ngram")


def _package_version() -> str:
    from repro import __version__

    return __version__


def _verify_metadata(metadata: dict, path: Path) -> None:
    """Validate a loaded metadata block, raising descriptive errors.

    Earlier revisions of this module silently accepted archives written by any
    package version and deferred encoder-kind mistakes to an opaque
    ``KeyError`` deep in reconstruction; both are now checked up front.
    """
    if metadata.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(
            f"unsupported model format version {metadata.get('format_version')!r} "
            f"in {path} (this build reads formats {SUPPORTED_FORMAT_VERSIONS})"
        )
    saved_version = metadata.get("package_version")
    if saved_version is not None:
        saved_major = str(saved_version).split(".")[0]
        current = _package_version()
        if saved_major != current.split(".")[0]:
            raise ValueError(
                f"model {path} was saved by repro {saved_version}, which is "
                f"incompatible with the installed repro {current} "
                "(major versions differ); re-train or convert the model"
            )
    encoder_kind = metadata.get("encoder_kind")
    if encoder_kind not in _ENCODER_KINDS:
        raise ValueError(
            f"model {path} records unknown encoder kind {encoder_kind!r}; "
            f"expected one of {_ENCODER_KINDS}"
        )


class FrozenClassifier(BaselineHDC):
    """Inference-only carrier for loaded class hypervectors.

    It reuses :class:`BaselineHDC`'s inference path (which is shared by every
    strategy) but refuses to be refitted, making it explicit that a loaded
    model is an inference artefact.
    """

    def fit(self, hypervectors, labels):  # pragma: no cover - guard path
        raise RuntimeError(
            "this classifier was loaded from a file and is inference-only; "
            "train a new classifier instead of refitting it"
        )


class FrozenEnsembleClassifier(MultiModelHDC):
    """Inference-only carrier for a loaded SearcHD-style model bank.

    Reuses :class:`MultiModelHDC`'s max-over-sub-models scoring (dense and
    packed) against the restored ``model_hypervectors_``.
    """

    def fit(self, hypervectors, labels, packed_train=None):  # pragma: no cover
        raise RuntimeError(
            "this classifier was loaded from a file and is inference-only; "
            "train a new classifier instead of refitting it"
        )


def save_model(
    path: Union[str, Path],
    pipeline: HDCPipeline,
    strategy_name: str = "unknown",
    extra_metadata: Optional[dict] = None,
) -> Path:
    """Serialise a fitted pipeline (encoder state + class hypervectors) to *path*.

    Parameters
    ----------
    path:
        Destination file; the ``.npz`` suffix is appended if missing.
    pipeline:
        A fitted :class:`HDCPipeline` (any classifier that exposes
        ``class_hypervectors_``).
    strategy_name:
        Free-form label recording which training strategy produced the model.
    extra_metadata:
        Optional JSON-serialisable dictionary stored alongside the arrays.
    """
    encoder = pipeline.encoder
    classifier = pipeline.classifier
    if classifier.class_hypervectors_ is None or encoder.num_features is None:
        raise ValueError("the pipeline must be fitted before it can be saved")

    quantizer = encoder._quantizer
    if isinstance(quantizer, UniformQuantizer):
        quantizer_kind = "uniform"
        quantizer_state = {
            "minimums": quantizer._minimums,
            "ranges": quantizer._ranges,
        }
    elif isinstance(quantizer, QuantileQuantizer):
        quantizer_kind = "quantile"
        quantizer_state = {"edges": quantizer._edges}
    else:  # pragma: no cover - future quantisers
        raise TypeError(f"unsupported quantizer type {type(quantizer).__name__}")

    model_bank = getattr(classifier, "model_hypervectors_", None)
    if model_bank is not None and np.ndim(model_bank) != 3:  # pragma: no cover
        raise ValueError(
            f"model_hypervectors_ must be a (K, N, D) bank, got shape "
            f"{np.shape(model_bank)}"
        )

    metadata = {
        "format_version": (
            ENSEMBLE_FORMAT_VERSION if model_bank is not None else FORMAT_VERSION
        ),
        "package_version": _package_version(),
        "strategy": strategy_name,
        "models_per_class": (
            int(model_bank.shape[1]) if model_bank is not None else None
        ),
        "encoder_kind": "ngram" if isinstance(encoder, NGramEncoder) else "record",
        "ngram": getattr(encoder, "ngram", None),
        "dimension": encoder.dimension,
        "num_levels": encoder.num_levels,
        "num_features": encoder.num_features,
        "quantizer_kind": quantizer_kind,
        "tie_break": encoder.tie_break,
        "num_classes": int(classifier.class_hypervectors_.shape[0]),
        "extra": extra_metadata or {},
    }

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz" if path.suffix else ".npz")
    arrays = {
        "class_hypervectors": classifier.class_hypervectors_,
        "position_vectors": encoder.position_memory.vectors,
        "level_vectors": encoder.level_memory.vectors,
        "metadata_json": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    }
    if model_bank is not None:
        arrays["model_hypervectors"] = model_bank
    for key, value in quantizer_state.items():
        arrays[f"quantizer_{key}"] = value
    np.savez_compressed(path, **arrays)
    return path


def load_model(path: Union[str, Path]) -> HDCPipeline:
    """Load a pipeline saved by :func:`save_model`.

    Returns an :class:`HDCPipeline` ready for ``predict``/``score`` on raw
    feature vectors; its classifier is inference-only.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(bytes(archive["metadata_json"].tobytes()).decode("utf-8"))
        _verify_metadata(metadata, path)
        class_hypervectors = archive["class_hypervectors"]
        position_vectors = archive["position_vectors"]
        level_vectors = archive["level_vectors"]
        model_bank = (
            archive["model_hypervectors"]
            if "model_hypervectors" in archive.files
            else None
        )
        quantizer_arrays = {
            key[len("quantizer_") :]: archive[key]
            for key in archive.files
            if key.startswith("quantizer_")
        }

    encoder = _rebuild_encoder(metadata, position_vectors, level_vectors, quantizer_arrays)
    if model_bank is not None:
        classifier = FrozenEnsembleClassifier(
            models_per_class=int(model_bank.shape[1])
        )
        classifier.model_hypervectors_ = model_bank.astype(np.int8)
    else:
        classifier = FrozenClassifier(tie_break=metadata["tie_break"])
    classifier.class_hypervectors_ = class_hypervectors.astype(np.int8)
    classifier.num_classes_ = metadata["num_classes"]

    pipeline = HDCPipeline(encoder, classifier)
    pipeline._fitted = True
    return pipeline


def read_model_metadata(path: Union[str, Path]) -> dict:
    """Read and verify the metadata block of a saved model without loading it.

    Cheap (no array decompression beyond the metadata entry), used by the
    serving registry to list models and by tooling that inspects artefacts.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(bytes(archive["metadata_json"].tobytes()).decode("utf-8"))
    _verify_metadata(metadata, path)
    return metadata


def _rebuild_encoder(metadata, position_vectors, level_vectors, quantizer_arrays) -> Encoder:
    """Reconstruct an encoder object from its serialised state."""
    common = dict(
        dimension=metadata["dimension"],
        num_levels=metadata["num_levels"],
        quantizer=metadata["quantizer_kind"],
        tie_break=metadata["tie_break"],
        seed=0,
    )
    if metadata["encoder_kind"] == "ngram":
        encoder: Encoder = NGramEncoder(ngram=metadata["ngram"], **common)
    else:
        encoder = RecordEncoder(**common)

    encoder.num_features = metadata["num_features"]
    # Overwrite the freshly constructed item memories with the saved codebooks.
    from repro.hdc.itemmemory import LevelItemMemory, RandomItemMemory

    position_memory = RandomItemMemory(
        position_vectors.shape[0], metadata["dimension"], seed=0
    )
    position_memory._vectors = position_vectors.astype(np.int8)
    level_memory = LevelItemMemory(level_vectors.shape[0], metadata["dimension"], seed=0)
    level_memory._vectors = level_vectors.astype(np.int8)
    encoder.position_memory = position_memory
    encoder.level_memory = level_memory

    if metadata["quantizer_kind"] == "uniform":
        quantizer = UniformQuantizer(metadata["num_levels"])
        quantizer._minimums = quantizer_arrays["minimums"]
        quantizer._ranges = quantizer_arrays["ranges"]
    else:
        quantizer = QuantileQuantizer(metadata["num_levels"])
        quantizer._edges = quantizer_arrays["edges"]
    encoder._quantizer = quantizer
    return encoder


__all__ = [
    "FrozenClassifier",
    "FrozenEnsembleClassifier",
    "save_model",
    "load_model",
    "read_model_metadata",
    "ENSEMBLE_FORMAT_VERSION",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
]
