"""Shared hot-path compute kernels.

``repro.kernels`` is the single home for the computations every layer of the
system competes on: bit-packed XOR+popcount scoring (:mod:`.packed`), fused
encoder accumulation (:mod:`.encode`), packed training — centroid bundling,
epoch scoring and ordered accumulator updates (:mod:`.train`) — and the
float matmul/dtype policy behind the NN substrate (:mod:`.linear`).
Implementations are published in a
named registry with swappable backends (:mod:`.dispatch`), selected via
``REPRO_KERNEL_BACKEND`` or :func:`~repro.kernels.dispatch.set_backend`.

Layering: :mod:`repro.hdc`, :mod:`repro.classifiers`, :mod:`repro.nn`,
:mod:`repro.core`, :mod:`repro.eval` and :mod:`repro.serve` all call *down*
into this package; nothing here imports back up (the only exception is the
lazy encoder-type dispatch inside :func:`~repro.kernels.encode.build_accumulator`).
See ``docs/architecture.md`` for the full data-flow.
"""

from repro.kernels.dispatch import (
    active_backend,
    available_backends,
    enable_kernel_profiling,
    float_dtype,
    get_kernel,
    kernel_profile_snapshot,
    kernel_profiling_enabled,
    list_kernels,
    profile_kernels,
    register_kernel,
    reset_kernel_profile,
    set_backend,
    set_float_dtype,
    use_backend,
    use_float_dtype,
)
from repro.kernels.train import (
    EnsembleScoreboard,
    PackedTrainingSet,
    apply_class_updates,
    bundle_packed,
    flip_fraction_packed,
    score_epoch,
)
from repro.kernels.encode import (
    DEFAULT_LUT_BUDGET_BYTES,
    NGramAccumulator,
    RecordAccumulator,
    build_accumulator,
)
from repro.kernels.linear import as_float, matmul, sign_bipolar
from repro.kernels.packed import (
    PackedHypervectors,
    bit_differences_words,
    flip_score_delta,
    pack_bipolar,
    pack_bits,
    pack_flip_mask,
    packed_dot_scores,
    popcount,
    sign_fuse_bits,
    try_pack_bipolar,
    unpack_bipolar,
)

__all__ = [
    "DEFAULT_LUT_BUDGET_BYTES",
    "EnsembleScoreboard",
    "NGramAccumulator",
    "PackedHypervectors",
    "PackedTrainingSet",
    "RecordAccumulator",
    "active_backend",
    "apply_class_updates",
    "as_float",
    "available_backends",
    "bit_differences_words",
    "build_accumulator",
    "bundle_packed",
    "enable_kernel_profiling",
    "flip_fraction_packed",
    "flip_score_delta",
    "float_dtype",
    "get_kernel",
    "kernel_profile_snapshot",
    "kernel_profiling_enabled",
    "list_kernels",
    "matmul",
    "profile_kernels",
    "reset_kernel_profile",
    "pack_bipolar",
    "pack_bits",
    "pack_flip_mask",
    "packed_dot_scores",
    "popcount",
    "register_kernel",
    "score_epoch",
    "set_backend",
    "set_float_dtype",
    "sign_bipolar",
    "sign_fuse_bits",
    "try_pack_bipolar",
    "unpack_bipolar",
    "use_backend",
    "use_float_dtype",
]
