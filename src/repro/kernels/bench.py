"""Kernel-layer benchmark shared by the CLI and the benchmark harness.

Measures the four hot paths the ``repro.kernels`` refactor moved into one
place, each against the implementation the seed repository shipped:

* **encode** — the fused position×level LUT accumulation behind
  ``RecordEncoder.encode`` vs the seed's per-feature gather+multiply loop
  (re-implemented here verbatim as the reference);
* **encode-ngram** — the vectorised rolled-window kernel behind
  ``NGramEncoder.encode`` vs the seed's per-window Python loop;
* **predict** — batched packed XOR+popcount classification vs the dense
  int64 dot-product rule, from the same encoded queries (the packed side
  pays for its own bit-packing, so the speedup is end-to-end honest);
* **train-epoch** — one BNN training epoch under the float32 dtype policy
  vs the seed's forced-float64 behaviour.

Every section reports its wall time, a rate, and the speedup; the result
dictionary is JSON-ready.  The acceptance bar from the kernels issue —
packed batch predict >= 5x dense at D=4000, fused encode >= 2x the seed
encoder — is checked by ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.classifiers.baseline import BaselineHDC
from repro.core.bnn_model import BNNTrainer, SingleLayerBNN
from repro.core.configs import DEFAULT_CONFIG
from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.hdc.hypervector import dot_similarity, sign_with_ties
from repro.kernels.dispatch import (
    kernel_profile_snapshot,
    profile_kernels,
    reset_kernel_profile,
    use_float_dtype,
)
from repro.kernels.packed import pack_bits


def _best_time(run, repeats: int = 3) -> float:
    """Best-of-*repeats* wall seconds for callable *run*."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


# ------------------------------------------------------- seed reference paths
def _seed_record_accumulate(encoder: RecordEncoder, levels: np.ndarray) -> np.ndarray:
    """The seed repository's ``RecordEncoder._accumulate``: one vectorised
    gather + multiply per feature, no fused LUT."""
    positions = encoder.position_memory.vectors.astype(np.int32)
    level_vectors = encoder.level_memory.vectors.astype(np.int32)
    batch, num_features = levels.shape
    accumulated = np.zeros((batch, encoder.dimension), dtype=np.int32)
    for feature_index in range(num_features):
        value_vectors = level_vectors[levels[:, feature_index]]
        accumulated += positions[feature_index] * value_vectors
    return accumulated


def _seed_ngram_accumulate(encoder: NGramEncoder, levels: np.ndarray) -> np.ndarray:
    """The seed repository's ``NGramEncoder._accumulate``: a Python loop over
    binding windows."""
    level_vectors = encoder.level_memory.vectors.astype(np.int32)
    batch, num_features = levels.shape
    permuted_codebooks = [
        np.roll(level_vectors, offset, axis=1) for offset in range(encoder.ngram)
    ]
    accumulated = np.zeros((batch, encoder.dimension), dtype=np.int32)
    for start in range(num_features - encoder.ngram + 1):
        gram = permuted_codebooks[0][levels[:, start]].copy()
        for offset in range(1, encoder.ngram):
            gram *= permuted_codebooks[offset][levels[:, start + offset]]
        accumulated += gram
    return accumulated


def _seed_encode(encoder: RecordEncoder, features: np.ndarray, batch_size: int = 256):
    """Seed ``encode``: per-feature accumulation + sign, batched like the seed."""
    levels = encoder._quantizer.transform(features)
    outputs = np.empty((features.shape[0], encoder.dimension), dtype=np.int8)
    for start in range(0, features.shape[0], batch_size):
        stop = min(start + batch_size, features.shape[0])
        raw = _seed_record_accumulate(encoder, levels[start:stop])
        outputs[start:stop] = sign_with_ties(
            raw, rng=encoder.rng, tie_break=encoder.tie_break
        )
    return outputs


# ------------------------------------------------------------------ benchmark
def run_kernel_benchmark(
    dimension: int = 4000,
    num_features: int = 64,
    num_levels: int = 32,
    num_classes: int = 10,
    num_samples: int = 512,
    ngram: int = 3,
    seed: int = 0,
    repeats: int = 3,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark the kernel layer against the seed implementations.

    ``quick=True`` shrinks every size for CI smoke runs (a couple of seconds
    end to end); the defaults match the acceptance setting ``D=4000``.
    """
    if quick:
        dimension = min(dimension, 1024)
        num_samples = min(num_samples, 128)
        repeats = 1

    train_features, train_labels, test_features, _ = make_gaussian_classes(
        num_classes=num_classes,
        num_features=num_features,
        train_size=max(20 * num_classes, 100),
        test_size=num_samples,
        class_sep=2.5,
        seed=seed,
    )

    results: Dict[str, object] = {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_levels": num_levels,
            "num_classes": num_classes,
            "num_samples": num_samples,
            "ngram": ngram,
            "seed": seed,
            "quick": quick,
        }
    }

    # ---- encode: fused LUT kernel vs seed per-feature loop -----------------
    encoder = RecordEncoder(
        dimension=dimension, num_levels=num_levels, tie_break="positive", seed=seed
    )
    encoder.fit(train_features)
    fused_out = encoder.encode(test_features)
    seed_out = _seed_encode(encoder, test_features)
    assert np.array_equal(fused_out, seed_out), "fused encode diverged from seed"
    fused_time = _best_time(lambda: encoder.encode(test_features), repeats)
    seed_time = _best_time(lambda: _seed_encode(encoder, test_features), repeats)
    results["encode"] = {
        "seed_seconds": seed_time,
        "fused_seconds": fused_time,
        "fused_samples_per_s": num_samples / fused_time,
        "speedup": seed_time / fused_time,
    }

    # ---- encode-ngram: rolled-window kernel vs seed window loop ------------
    ngram_encoder = NGramEncoder(
        dimension=dimension,
        num_levels=num_levels,
        ngram=ngram,
        tie_break="positive",
        seed=seed,
    )
    ngram_encoder.fit(train_features)
    ngram_levels = ngram_encoder._quantizer.transform(test_features)
    assert np.array_equal(
        ngram_encoder._accumulate(ngram_levels),
        _seed_ngram_accumulate(ngram_encoder, ngram_levels),
    ), "vectorised n-gram accumulation diverged from seed"
    ngram_fused = _best_time(lambda: ngram_encoder._accumulate(ngram_levels), repeats)
    ngram_seed = _best_time(
        lambda: _seed_ngram_accumulate(ngram_encoder, ngram_levels), repeats
    )
    results["encode_ngram"] = {
        "seed_seconds": ngram_seed,
        "fused_seconds": ngram_fused,
        "speedup": ngram_seed / ngram_fused,
    }

    # ---- predict: packed XOR+popcount vs dense int64 dot -------------------
    classifier = BaselineHDC(seed=seed)
    classifier.fit(encoder.encode(train_features), train_labels)
    queries = fused_out  # the encoded test split
    packed_classes = classifier.packed_class_hypervectors()

    def dense_predict():
        return np.argmax(dot_similarity(queries, classifier.class_hypervectors_), axis=1)

    def packed_predict():
        packed_queries = pack_bits(queries > 0, dimension)
        scores = packed_queries.dot_scores(packed_classes)
        return np.argmax(scores, axis=1)

    assert np.array_equal(dense_predict(), packed_predict())
    dense_time = _best_time(dense_predict, repeats)
    packed_time = _best_time(packed_predict, repeats)
    results["predict"] = {
        "dense_seconds": dense_time,
        "packed_seconds": packed_time,
        "packed_samples_per_s": num_samples / packed_time,
        "speedup": dense_time / packed_time,
    }

    # ---- train-epoch: float32 policy vs forced float64 ---------------------
    train_encoded = encoder.encode(train_features)
    config = DEFAULT_CONFIG.with_overrides(
        epochs=1, batch_size=64, validation_fraction=0.0
    )

    def one_epoch(dtype):
        with use_float_dtype(dtype):
            model = SingleLayerBNN(
                dimension=dimension,
                num_classes=num_classes,
                dropout_rate=config.dropout_rate,
                seed=seed,
            )
            trainer = BNNTrainer(model, config, seed=seed)
            trainer.train(train_encoded, train_labels)

    time_f32 = _best_time(lambda: one_epoch("float32"), repeats)
    time_f64 = _best_time(lambda: one_epoch("float64"), repeats)
    results["train_epoch"] = {
        "float64_seconds": time_f64,
        "float32_seconds": time_f32,
        "speedup": time_f64 / time_f32,
    }

    # ---- per-kernel profile: where the kernels-side time actually went -----
    # One profiled re-run of each measured path (profiling hooks in at
    # get_kernel resolution, so the timed sections above stay unwrapped).
    reset_kernel_profile()
    with profile_kernels():
        encoder.encode(test_features)
        ngram_encoder._accumulate(ngram_levels)
        packed_predict()
        one_epoch("float32")
    results["kernel_profile"] = kernel_profile_snapshot()

    return results


def format_report(results: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_kernel_benchmark` output."""
    config = results["config"]
    lines = [
        f"kernel benchmark  D={config['dimension']}  "
        f"N={config['num_features']}  samples={config['num_samples']}",
        "",
        f"{'section':<14} {'seed/dense (s)':>15} {'kernels (s)':>12} {'speedup':>8}",
    ]
    rows = (
        ("encode", "seed_seconds", "fused_seconds"),
        ("encode_ngram", "seed_seconds", "fused_seconds"),
        ("predict", "dense_seconds", "packed_seconds"),
        ("train_epoch", "float64_seconds", "float32_seconds"),
    )
    for section, before_key, after_key in rows:
        entry = results[section]
        lines.append(
            f"{section:<14} {entry[before_key]:>15.5f} "
            f"{entry[after_key]:>12.5f} {entry['speedup']:>7.2f}x"
        )
    profile = results.get("kernel_profile")
    if profile:
        lines.append("")
        lines.append(f"{'kernel':<36} {'calls':>6} {'total (ms)':>11} {'mean (ms)':>10}")
        for key, entry in profile.items():
            lines.append(
                f"{key:<36} {entry['calls']:>6} "
                f"{entry['total_ms']:>11.3f} {entry['mean_ms']:>10.4f}"
            )
    return "\n".join(lines)


__all__ = ["run_kernel_benchmark", "format_report"]
