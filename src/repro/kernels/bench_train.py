"""Packed-training benchmark shared by the CLI and the benchmark harness.

Measures the packed training path of the classifier family against the
sequential per-sample loop the seed repository shipped (still available as
``packed_epochs=False``, unchanged):

* **bundle** — baseline centroid bundling over packed words
  (:func:`repro.kernels.train.bundle_packed`, including the one-time pack)
  vs the dense ``np.add.at`` rule;
* **retraining / adapthd / enhanced** — full ``fit()`` wall-clock of each
  retraining strategy on the packed epoch kernels (blocked XOR+popcount
  scoring + ordered scatter-add) vs the seed loop, end to end: the packed
  side pays for building its own :class:`~repro.kernels.train.PackedTrainingSet`;
* **multimodel** — the SearcHD-style ensemble's full ``fit()`` on the
  incremental packed-scoring trainer
  (:class:`~repro.kernels.train.EnsembleScoreboard`: score-once per pass,
  sparse flipped-mask column updates) vs the seed per-sample dense
  model-bank matmul, verified bit-identical — models, history *and* the RNG
  stream, for both ``push_away`` settings — before timing.

Every comparison also *verifies* bit-identity — equal class hypervectors,
equal non-binary accumulators / model banks, and an identical
:class:`~repro.classifiers.retraining.RetrainingHistory` — before timing is
reported; a benchmark that drifted numerically raises instead of reporting a
speedup.  The result dictionary is JSON-ready.  The acceptance bars —
retraining ``fit()`` >= 5x and ensemble ``fit()`` >= 5x the seed loops at
D=4000 (the ensemble at the paper's 64 models per class) — are asserted by
``benchmarks/bench_training.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import numpy as np

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import RecordEncoder
from repro.kernels.train import PackedTrainingSet


def _best_time(run: Callable, repeats: int) -> float:
    """Best-of-*repeats* wall seconds for callable *run* (returns last result)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _assert_identical(name: str, seed_model, packed_model) -> None:
    """The packed path must reproduce the sequential path bit for bit."""
    if not np.array_equal(
        seed_model.class_hypervectors_, packed_model.class_hypervectors_
    ):
        raise AssertionError(f"{name}: packed class hypervectors diverged from seed")
    seed_history = seed_model.history_
    packed_history = packed_model.history_
    if (
        seed_history.train_accuracy != packed_history.train_accuracy
        or seed_history.update_fraction != packed_history.update_fraction
        or seed_history.test_accuracy != packed_history.test_accuracy
    ):
        raise AssertionError(f"{name}: packed retraining history diverged from seed")
    if not np.array_equal(
        seed_model.nonbinary_class_hypervectors_,
        packed_model.nonbinary_class_hypervectors_,
    ):
        raise AssertionError(f"{name}: packed accumulators diverged from seed")


def _assert_identical_ensemble(name: str, seed_model, packed_model) -> None:
    """The packed ensemble trainer must reproduce the seed loop bit for bit.

    Beyond the model bank and history, the RNG streams must coincide: the
    packed path replays every ``rng`` call of the seed loop (permutations,
    bootstrap choices, flip choices, ``sgn(0)`` ties) in the same order with
    the same arguments, so the generators end in the same state.
    """
    if not np.array_equal(
        seed_model.model_hypervectors_, packed_model.model_hypervectors_
    ):
        raise AssertionError(f"{name}: packed model bank diverged from seed")
    if not np.array_equal(
        seed_model.class_hypervectors_, packed_model.class_hypervectors_
    ):
        raise AssertionError(f"{name}: packed majority vectors diverged from seed")
    seed_history = seed_model.history_
    packed_history = packed_model.history_
    if (
        seed_history.train_accuracy != packed_history.train_accuracy
        or seed_history.update_fraction != packed_history.update_fraction
    ):
        raise AssertionError(f"{name}: packed training history diverged from seed")
    if seed_model.rng.bit_generator.state != packed_model.rng.bit_generator.state:
        raise AssertionError(f"{name}: packed RNG stream diverged from seed")


def run_training_benchmark(
    dimension: int = 4000,
    num_features: int = 64,
    num_levels: int = 32,
    num_classes: int = 10,
    num_samples: int = 2000,
    iterations: int = 20,
    class_sep: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
    quick: bool = False,
    multimodel_models_per_class: int = 64,
    multimodel_samples: int = 400,
    multimodel_iterations: int = 3,
) -> Dict[str, object]:
    """Benchmark packed training against the seed sequential loop.

    ``quick=True`` shrinks every size for CI smoke runs (a few seconds end
    to end); the defaults match the acceptance setting ``D=4000``, with
    ``class_sep`` low enough that a few percent of samples stay
    misclassified throughout — so the timed epochs exercise the scatter-add,
    not just the scorer.  All retraining strategies run ``shuffle=False`` /
    ``tie_break='positive'`` / ``epsilon=0`` so every pair completes the same
    full iteration budget and the bit-identity check covers the whole
    trajectory.

    The multimodel case runs at the paper's 64 models per class on a slice
    of the encoded set with 15% label noise mixed in — noisy labels keep a
    steady share of samples misclassified, so the timed passes exercise the
    stochastic flip updates and the incremental score-column maintenance,
    not just the pass-start scorer.
    """
    if quick:
        dimension = min(dimension, 1024)
        num_samples = min(num_samples, 256)
        iterations = min(iterations, 5)
        repeats = 1
        multimodel_models_per_class = min(multimodel_models_per_class, 8)
        multimodel_samples = min(multimodel_samples, 128)
        multimodel_iterations = min(multimodel_iterations, 2)
    # Clamp before the config block below records it, so the committed JSON
    # always states the sample count the ensemble case actually ran on.
    multimodel_samples = min(multimodel_samples, num_samples)

    train_features, train_labels, _, _ = make_gaussian_classes(
        num_classes=num_classes,
        num_features=num_features,
        train_size=num_samples,
        test_size=num_classes,
        class_sep=class_sep,
        seed=seed,
    )
    encoder = RecordEncoder(
        dimension=dimension, num_levels=num_levels, tie_break="positive", seed=seed
    )
    encoder.fit(train_features)
    encoded = encoder.encode(train_features)

    results: Dict[str, object] = {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_levels": num_levels,
            "num_classes": num_classes,
            "num_samples": num_samples,
            "iterations": iterations,
            "class_sep": class_sep,
            "seed": seed,
            "repeats": repeats,
            "quick": quick,
            "multimodel_models_per_class": multimodel_models_per_class,
            "multimodel_samples": multimodel_samples,
            "multimodel_iterations": multimodel_iterations,
        }
    }

    # ---- bundle: packed per-class bit counts vs dense np.add.at ------------
    def dense_bundle():
        return BaselineHDC(tie_break="positive", seed=seed).fit(encoded, train_labels)

    def packed_bundle():
        train_set = PackedTrainingSet.from_dense(encoded)
        return BaselineHDC(tie_break="positive", seed=seed).fit(
            encoded, train_labels, packed_train=train_set
        )

    if not np.array_equal(
        dense_bundle().accumulators_, packed_bundle().accumulators_
    ):
        raise AssertionError("bundle_packed accumulators diverged from np.add.at")
    dense_time = _best_time(dense_bundle, repeats)
    packed_time = _best_time(packed_bundle, repeats)
    results["bundle"] = {
        "dense_seconds": dense_time,
        "packed_seconds": packed_time,
        "speedup": dense_time / packed_time,
    }

    # ---- retraining family: packed epochs vs the seed sequential loop ------
    strategy_factories = {
        "retraining": lambda packed: RetrainingHDC(
            iterations=iterations,
            epsilon=0.0,
            shuffle=False,
            packed_epochs=packed,
            tie_break="positive",
            seed=seed,
        ),
        "adapthd": lambda packed: AdaptHDC(
            iterations=iterations,
            mode="data",
            epsilon=0.0,
            shuffle=False,
            packed_epochs=packed,
            tie_break="positive",
            seed=seed,
        ),
        "enhanced": lambda packed: EnhancedRetrainingHDC(
            iterations=iterations,
            epsilon=0.0,
            shuffle=False,
            packed_epochs=packed,
            tie_break="positive",
            seed=seed,
        ),
    }
    for name, factory in strategy_factories.items():
        seed_model = factory(False)
        packed_model = factory(True)
        seed_time = _best_time(lambda: seed_model.fit(encoded, train_labels), repeats)
        packed_time = _best_time(
            lambda: packed_model.fit(encoded, train_labels), repeats
        )
        _assert_identical(name, seed_model, packed_model)
        history = packed_model.history_
        results[name] = {
            "seed_seconds": seed_time,
            "packed_seconds": packed_time,
            "speedup": seed_time / packed_time,
            "iterations": history.iterations,
            "seed_iteration_seconds": float(
                np.mean(seed_model.history_.iteration_seconds)
            ),
            "packed_iteration_seconds": float(np.mean(history.iteration_seconds)),
            "samples_per_second": num_samples * history.iterations / packed_time,
            "final_train_accuracy": history.train_accuracy[-1],
            "bit_identical": True,
        }

    # ---- multimodel: incremental packed scoring vs the seed dense loop -----
    ensemble_encoded = encoded[:multimodel_samples]
    noise_rng = np.random.default_rng(seed + 1)
    ensemble_labels = np.array(train_labels[:multimodel_samples])
    noisy = noise_rng.random(multimodel_samples) < 0.15
    ensemble_labels[noisy] = (
        ensemble_labels[noisy]
        + noise_rng.integers(1, num_classes, size=int(np.count_nonzero(noisy)))
    ) % num_classes

    def ensemble_factory(packed: bool, push_away: bool = False) -> MultiModelHDC:
        return MultiModelHDC(
            models_per_class=multimodel_models_per_class,
            iterations=multimodel_iterations,
            push_away=push_away,
            packed_epochs=packed,
            seed=seed,
        )

    seed_model = ensemble_factory(False)
    packed_model = ensemble_factory(True)
    seed_time = _best_time(
        lambda: seed_model.fit(ensemble_encoded, ensemble_labels), repeats
    )
    packed_time = _best_time(
        lambda: packed_model.fit(ensemble_encoded, ensemble_labels), repeats
    )
    _assert_identical_ensemble("multimodel", seed_model, packed_model)
    # The push-away update rule flips a second sub-model per misclassification
    # (extra RNG draws, extra score-column patches); verify it separately.
    seed_push = ensemble_factory(False, push_away=True)
    packed_push = ensemble_factory(True, push_away=True)
    seed_push.fit(ensemble_encoded, ensemble_labels)
    packed_push.fit(ensemble_encoded, ensemble_labels)
    _assert_identical_ensemble("multimodel[push_away]", seed_push, packed_push)
    history = packed_model.history_
    results["multimodel"] = {
        "seed_seconds": seed_time,
        "packed_seconds": packed_time,
        "speedup": seed_time / packed_time,
        "iterations": history.iterations,
        "seed_iteration_seconds": float(
            np.mean(seed_model.history_.iteration_seconds)
        ),
        "packed_iteration_seconds": float(np.mean(history.iteration_seconds)),
        "samples_per_second": multimodel_samples * history.iterations / packed_time,
        "final_train_accuracy": history.train_accuracy[-1],
        "bit_identical": True,
        "rng_stream_identical": True,
        "push_away_bit_identical": True,
        "models_per_class": multimodel_models_per_class,
        "num_samples": multimodel_samples,
    }

    return results


def format_training_report(results: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_training_benchmark` output."""
    config = results["config"]
    lines = [
        f"packed training benchmark  D={config['dimension']}  "
        f"n={config['num_samples']}  K={config['num_classes']}  "
        f"iters={config['iterations']}",
        "",
        f"{'section':<12} {'seed (s)':>10} {'packed (s)':>11} {'speedup':>8}  "
        f"{'s/iter packed':>13}",
    ]
    bundle = results["bundle"]
    lines.append(
        f"{'bundle':<12} {bundle['dense_seconds']:>10.4f} "
        f"{bundle['packed_seconds']:>11.4f} {bundle['speedup']:>7.2f}x {'—':>13}"
    )
    for section in ("retraining", "adapthd", "enhanced", "multimodel"):
        entry = results[section]
        lines.append(
            f"{section:<12} {entry['seed_seconds']:>10.4f} "
            f"{entry['packed_seconds']:>11.4f} {entry['speedup']:>7.2f}x "
            f"{entry['packed_iteration_seconds']:>12.5f}s"
        )
    multimodel = results["multimodel"]
    lines.append("")
    lines.append(
        f"multimodel: {multimodel['models_per_class']} models/class on "
        f"{multimodel['num_samples']} samples, both push_away settings "
        "verified (models + RNG stream)"
    )
    lines.append(
        "histories bit-identical to the sequential loops (verified before timing)"
    )
    return "\n".join(lines)


__all__ = ["format_training_report", "run_training_benchmark"]
