"""Named-kernel registry, backend selection, and the float dtype policy.

Every hot-path computation in this code base (packed Hamming scoring, fused
encoder accumulation, float matmuls) is published here under a stable name
with one implementation per *backend*.  Call sites resolve through
:func:`get_kernel`, so swapping the execution strategy — for example the
threaded/sharded backend on a multi-core host — is a configuration change,
not a code change.  This mirrors the plug-in-estimator discipline hardware
HDC stacks use for their compute kernels: the algorithm is fixed, the
executor is swappable.

Backends
--------
``numpy``
    The default single-threaded NumPy implementation.  Always registered;
    every other backend falls back to it for kernels it does not override.
``threaded``
    Shards the batch (row) axis of large kernels across a thread pool.
    Useful on multi-core hosts where the underlying ufuncs release the GIL;
    harmless (just extra dispatch) on single-core machines.
``multiprocess``
    Shards the batch (row) axis across a process pool, sidestepping the GIL
    entirely.  Each task ships its operand shards through pickle, so it only
    pays off for large batches on genuinely multi-core hosts; on a
    single-core machine (or for small inputs) it degrades to the direct
    in-process call, which keeps it parity-safe everywhere.  The worker
    count comes from ``REPRO_KERNEL_PROCS`` (default: CPU count, capped
    at 4).

Selection order: an explicit :func:`set_backend` / :func:`use_backend` wins,
then the ``REPRO_KERNEL_BACKEND`` environment variable, then ``numpy``.

Float dtype policy
------------------
The NN substrate historically forced ``float64`` on every forward/backward
call.  The policy lives here now: :func:`float_dtype` returns the dtype used
when *introducing* floats (parameter initialisation, casting integer
hypervectors for training), defaulting to ``float32`` and overridable via
``REPRO_FLOAT_DTYPE``, :func:`set_float_dtype`, or the
:func:`use_float_dtype` context manager.  Arrays that are already floating
point are never silently up- or down-cast.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

DEFAULT_BACKEND = "numpy"

#: kernel name -> backend name -> implementation
_REGISTRY: Dict[str, Dict[str, Callable]] = {}

#: Backend forced via set_backend/use_backend; None defers to the environment.
_ACTIVE_BACKEND: Optional[str] = None

#: Dtype forced via set_float_dtype/use_float_dtype; None defers to the env.
_FLOAT_DTYPE: Optional[np.dtype] = None

_KNOWN_BACKENDS = ("numpy", "threaded", "multiprocess")


# ------------------------------------------------------------------ backends
def register_kernel(name: str, backend: str = DEFAULT_BACKEND) -> Callable:
    """Decorator registering a kernel implementation under (*name*, *backend*)."""
    if backend not in _KNOWN_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_KNOWN_BACKENDS}")

    def decorate(function: Callable) -> Callable:
        _REGISTRY.setdefault(name, {})[backend] = function
        return function

    return decorate


def get_kernel(name: str, backend: Optional[str] = None) -> Callable:
    """Resolve *name* for the requested (or active) backend.

    Backends that do not override a kernel fall back to the ``numpy``
    implementation, so a partial backend is always usable.
    """
    implementations = _REGISTRY.get(name)
    if implementations is None:
        raise KeyError(
            f"no kernel registered under {name!r}; known: {sorted(_REGISTRY)}"
        )
    backend = backend if backend is not None else active_backend()
    implementation = implementations.get(backend)
    if implementation is None:
        implementation = implementations.get(DEFAULT_BACKEND)
    if implementation is None:  # pragma: no cover - registration bug
        raise KeyError(f"kernel {name!r} has no {backend!r} or numpy implementation")
    if _PROFILE_ENABLED:
        return _profiled_kernel(name, backend, implementation)
    return implementation


def list_kernels() -> Dict[str, List[str]]:
    """Registered kernel names mapped to their available backends."""
    return {name: sorted(backends) for name, backends in sorted(_REGISTRY.items())}


def available_backends() -> List[str]:
    """All backend names any kernel is registered under."""
    found = set()
    for backends in _REGISTRY.values():
        found.update(backends)
    return sorted(found)


def active_backend() -> str:
    """The backend kernels currently resolve to.

    An unknown ``REPRO_KERNEL_BACKEND`` raises immediately (a typo like
    ``thread`` must not silently measure the numpy backend); the per-kernel
    numpy fallback in :func:`get_kernel` is only for *valid* backends that do
    not override a particular kernel.
    """
    if _ACTIVE_BACKEND is not None:
        return _ACTIVE_BACKEND
    backend = os.environ.get("REPRO_KERNEL_BACKEND", DEFAULT_BACKEND)
    if backend not in _KNOWN_BACKENDS:
        raise ValueError(
            f"REPRO_KERNEL_BACKEND={backend!r} is not a known backend; "
            f"expected one of {_KNOWN_BACKENDS}"
        )
    return backend


def set_backend(backend: Optional[str]) -> None:
    """Force a backend process-wide (``None`` re-enables env resolution)."""
    global _ACTIVE_BACKEND
    if backend is not None and backend not in _KNOWN_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_KNOWN_BACKENDS}")
    _ACTIVE_BACKEND = backend


@contextmanager
def use_backend(backend: str):
    """Temporarily force a backend within a ``with`` block."""
    previous = _ACTIVE_BACKEND
    set_backend(backend)
    try:
        yield
    finally:
        set_backend(previous)


def num_threads() -> int:
    """Worker count for the threaded backend (``REPRO_KERNEL_THREADS``)."""
    value = os.environ.get("REPRO_KERNEL_THREADS")
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            raise ValueError(
                f"REPRO_KERNEL_THREADS must be an integer, got {value!r}"
            ) from None
    return max(1, min(4, os.cpu_count() or 1))


_EXECUTOR = None
_EXECUTOR_LOCK = threading.Lock()


def _shared_executor():
    """The process-wide thread pool for sharded kernels (created on first use).

    The worker count is captured at creation; changing
    ``REPRO_KERNEL_THREADS`` afterwards does not resize the pool.
    """
    global _EXECUTOR
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None:
            from concurrent.futures import ThreadPoolExecutor

            _EXECUTOR = ThreadPoolExecutor(
                max_workers=num_threads(), thread_name_prefix="repro-kernel"
            )
    return _EXECUTOR


def _sharded_futures(compute, num_rows: int):
    """Submit ``compute`` over row shards, or ``None`` when it cannot pay off.

    The shared partitioning behind :func:`run_sharded` and
    :func:`run_sharded_sum`: one shard per worker over the cached executor
    (no per-call pool construction), with a ``None`` fast path telling the
    caller to run ``compute(0, num_rows)`` directly.
    """
    workers = num_threads()
    if workers <= 1 or num_rows < 2 * workers:
        return None
    shard = (num_rows + workers - 1) // workers
    bounds = [(start, min(start + shard, num_rows)) for start in range(0, num_rows, shard)]
    executor = _shared_executor()
    return [executor.submit(compute, start, stop) for start, stop in bounds]


def run_sharded(compute, num_rows: int):
    """Run ``compute(start, stop)`` over row shards and concatenate in order.

    The shared helper behind every ``threaded`` backend: shards ``[0,
    num_rows)`` across the cached executor and falls back to one direct call
    when sharding cannot pay off.  ``compute`` must return the result rows
    for its half-open range.
    """
    futures = _sharded_futures(compute, num_rows)
    if futures is None:
        return compute(0, num_rows)
    return np.concatenate([future.result() for future in futures], axis=0)


def run_sharded_sum(compute, num_rows: int):
    """Shard ``compute(start, stop)`` over rows and *sum* the partial results.

    The reduction twin of :func:`run_sharded`, for kernels whose shards
    produce same-shaped partial aggregates instead of result rows (e.g. the
    per-class bit counts of ``train.bundle_counts``).  Only exact for
    associative accumulations — integer sums, not floats.
    """
    futures = _sharded_futures(compute, num_rows)
    if futures is None:
        return compute(0, num_rows)
    total = futures[0].result()
    for future in futures[1:]:
        total = total + future.result()
    return total


def num_procs() -> int:
    """Worker count for the multiprocess backend (``REPRO_KERNEL_PROCS``)."""
    value = os.environ.get("REPRO_KERNEL_PROCS")
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            raise ValueError(
                f"REPRO_KERNEL_PROCS must be an integer, got {value!r}"
            ) from None
    return max(1, min(4, os.cpu_count() or 1))


_PROCESS_EXECUTOR = None
_PROCESS_EXECUTOR_LOCK = threading.Lock()


def _process_executor():
    """The process pool for sharded kernels (created on first use).

    The worker count is captured at creation; changing ``REPRO_KERNEL_PROCS``
    afterwards does not resize the pool.  The ``fork`` start method is
    preferred (no re-import, no operand re-pickling at startup) and ``spawn``
    is the portable fallback.
    """
    global _PROCESS_EXECUTOR
    with _PROCESS_EXECUTOR_LOCK:
        if _PROCESS_EXECUTOR is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            _PROCESS_EXECUTOR = ProcessPoolExecutor(
                max_workers=num_procs(), mp_context=context
            )
    return _PROCESS_EXECUTOR


def shutdown_process_pool() -> None:
    """Tear down the multiprocess backend's pool (tests; end-of-run cleanup)."""
    global _PROCESS_EXECUTOR
    with _PROCESS_EXECUTOR_LOCK:
        executor, _PROCESS_EXECUTOR = _PROCESS_EXECUTOR, None
    if executor is not None:
        executor.shutdown(wait=True)


def run_sharded_processes(function, sharded: np.ndarray, *args):
    """Run ``function(shard, *args)`` over row shards in worker processes.

    The process twin of :func:`run_sharded`: ``function`` must be a picklable
    top-level callable returning the result rows for the shard it is handed;
    results are concatenated in shard order, so the output is bit-identical
    to one direct ``function(sharded, *args)`` call.  Falls back to that
    direct call whenever sharding cannot pay off: a single configured worker,
    fewer than two rows per worker, or execution inside a daemonic process
    (which may not spawn children).

    A pool worker dying mid-task (OOM kill, signal) marks the whole
    ``ProcessPoolExecutor`` broken; the broken pool is torn down so the next
    call builds a fresh one, and *this* call completes on the direct path —
    a crashed backend degrades to single-process speed, never to errors.
    """
    import multiprocessing
    from concurrent.futures.process import BrokenProcessPool

    num_rows = sharded.shape[0]
    workers = num_procs()
    if (
        workers <= 1
        or num_rows < 2 * workers
        or multiprocessing.current_process().daemon
    ):
        return function(sharded, *args)
    shard = (num_rows + workers - 1) // workers
    executor = _process_executor()
    try:
        futures = [
            executor.submit(function, sharded[start : start + shard], *args)
            for start in range(0, num_rows, shard)
        ]
        return np.concatenate([future.result() for future in futures], axis=0)
    except BrokenProcessPool:
        shutdown_process_pool()
        return function(sharded, *args)


# ------------------------------------------------------------------ profiling
#: (kernel name, backend) -> [calls, total seconds]; guarded by _PROFILE_LOCK.
_PROFILE: Dict[Tuple[str, str], List] = {}
_PROFILE_LOCK = threading.Lock()
_PROFILE_ENABLED = False
#: Stable wrapper per (name, backend, implementation) so repeated resolution
#: while profiling does not stack timers.
_PROFILE_WRAPPERS: Dict[Tuple[str, str, Callable], Callable] = {}


def enable_kernel_profiling(enabled: bool = True) -> None:
    """Turn per-kernel call-count/time accounting on or off.

    Profiling hooks in at *resolution* time: while enabled,
    :func:`get_kernel` hands out a timing wrapper; while disabled it returns
    the raw implementation, so the serving hot path (which resolves once and
    caches) pays nothing.  Call sites that cached a kernel before profiling
    was enabled keep their unwrapped reference — re-resolve to profile them.
    """
    global _PROFILE_ENABLED
    _PROFILE_ENABLED = bool(enabled)


def kernel_profiling_enabled() -> bool:
    return _PROFILE_ENABLED


@contextmanager
def profile_kernels():
    """Enable profiling within a ``with`` block (restores the prior state)."""
    previous = _PROFILE_ENABLED
    enable_kernel_profiling(True)
    try:
        yield
    finally:
        enable_kernel_profiling(previous)


def reset_kernel_profile() -> None:
    """Zero all accumulated per-kernel counters."""
    with _PROFILE_LOCK:
        _PROFILE.clear()


def kernel_profile_snapshot() -> Dict[str, Dict[str, object]]:
    """JSON-ready ``{"name[backend]": {calls, total_ms, mean_ms}}`` view."""
    with _PROFILE_LOCK:
        entries = {key: list(value) for key, value in _PROFILE.items()}
    snapshot = {}
    for (name, backend), (calls, seconds) in sorted(entries.items()):
        snapshot[f"{name}[{backend}]"] = {
            "kernel": name,
            "backend": backend,
            "calls": calls,
            "total_ms": seconds * 1e3,
            "mean_ms": (seconds / calls * 1e3) if calls else 0.0,
        }
    return snapshot


def _profiled_kernel(name: str, backend: str, function: Callable) -> Callable:
    cache_key = (name, backend, function)
    wrapper = _PROFILE_WRAPPERS.get(cache_key)
    if wrapper is not None:
        return wrapper
    profile_key = (name, backend)

    @functools.wraps(function)
    def timed(*args, **kwargs):
        started = time.perf_counter()
        try:
            return function(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - started
            with _PROFILE_LOCK:
                entry = _PROFILE.get(profile_key)
                if entry is None:
                    entry = _PROFILE[profile_key] = [0, 0.0]
                entry[0] += 1
                entry[1] += elapsed

    with _PROFILE_LOCK:
        wrapper = _PROFILE_WRAPPERS.setdefault(cache_key, timed)
    return wrapper


# --------------------------------------------------------------- dtype policy
def float_dtype() -> np.dtype:
    """The dtype used when floats are introduced (init, int->float casts)."""
    if _FLOAT_DTYPE is not None:
        return _FLOAT_DTYPE
    return _validate_float_dtype(os.environ.get("REPRO_FLOAT_DTYPE", "float32"))


def set_float_dtype(dtype) -> None:
    """Force the float policy dtype (``None`` re-enables env resolution)."""
    global _FLOAT_DTYPE
    _FLOAT_DTYPE = None if dtype is None else _validate_float_dtype(dtype)


@contextmanager
def use_float_dtype(dtype):
    """Temporarily force the float policy dtype within a ``with`` block."""
    previous = _FLOAT_DTYPE
    set_float_dtype(dtype)
    try:
        yield
    finally:
        set_float_dtype(previous)


def _validate_float_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if not np.issubdtype(resolved, np.floating):
        raise ValueError(f"float dtype policy requires a floating dtype, got {resolved}")
    return resolved


__all__ = [
    "DEFAULT_BACKEND",
    "active_backend",
    "available_backends",
    "enable_kernel_profiling",
    "float_dtype",
    "get_kernel",
    "kernel_profile_snapshot",
    "kernel_profiling_enabled",
    "list_kernels",
    "num_procs",
    "num_threads",
    "profile_kernels",
    "register_kernel",
    "reset_kernel_profile",
    "run_sharded",
    "run_sharded_processes",
    "run_sharded_sum",
    "set_backend",
    "shutdown_process_pool",
    "set_float_dtype",
    "use_backend",
    "use_float_dtype",
]
