"""Fused encoder kernels: pre-sign accumulation for record and n-gram encoders.

Both accumulators produce the exact integer accumulation the dense encoders
define (Eq. 1), so signing the result reproduces ``Encoder.encode``
bit-for-bit; they only reorganise the computation:

* :class:`RecordAccumulator` fuses the position×level bind into a lookup
  table ``lut[i, l] = position[i] * level[l]`` built once, collapsing each
  batch into one fancy-indexed gather + a single C-level reduction (chunked
  over batch rows so the int8 scratch stays bounded);
* :class:`NGramAccumulator` hoists the per-call codebook permutations out of
  the request path and evaluates all binding windows of a block at once with
  a rolled gather per n-gram offset, instead of a Python loop over windows.

The encoders in :mod:`repro.hdc.encoders` and the serving engine in
:mod:`repro.serve.engine` both build their accumulator through
:func:`build_accumulator`, so training, evaluation, and serving ride the same
fused kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.dispatch import get_kernel, register_kernel, run_sharded

#: Largest bound-LUT the record path will materialise, in bytes
#: (``num_features * num_levels * D`` int8 entries).  Above this the factored
#: item memories are kept and the bind happens on the fly.
DEFAULT_LUT_BUDGET_BYTES = 128 * 1024 * 1024

#: Byte cap on the int8 gather scratch of a single accumulation block.
_SCRATCH_BYTES = 32 * 1024 * 1024

#: A block's partial sums are reduced in int16; each gathered element is ±1,
#: so at most this many may be summed per output element in one reduction.
_INT16_HEADROOM = 32767


@register_kernel("encode.lut_accumulate")
def _lut_accumulate_numpy(flat_lut: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Gather *rows* of *flat_lut* and reduce over the feature axis.

    ``rows`` is ``(batch, num_features)`` int64 indices into the flattened
    ``(num_features * num_levels, D)`` table.  Batch rows are chunked so each
    block's ``(rows, num_features, D)`` int8 gather stays within
    ``_SCRATCH_BYTES`` — small blocks keep the gather + reduction in cache,
    which measures ~3x faster than chunking the feature axis.
    """
    batch, num_features = rows.shape
    dimension = flat_lut.shape[1]
    if num_features > _INT16_HEADROOM:  # pragma: no cover - absurdly wide inputs
        accumulated = np.zeros((batch, dimension), dtype=np.int32)
        for feature_index in range(num_features):
            accumulated += flat_lut[rows[:, feature_index]]
        return accumulated
    block = max(1, _SCRATCH_BYTES // max(1, num_features * dimension))
    accumulated = np.empty((batch, dimension), dtype=np.int32)
    for start in range(0, batch, block):
        stop = min(start + block, batch)
        # Gather and reduce in one expression: the multi-MB gather scratch is
        # freed before the next block allocates, so the allocator hands back
        # the same (hot, already-faulted) buffer every iteration — keeping it
        # alive in a local measures ~2x slower end to end.
        accumulated[start:stop] = flat_lut[rows[start:stop]].sum(
            axis=1, dtype=np.int16
        )
    return accumulated


@register_kernel("encode.lut_accumulate", backend="threaded")
def _lut_accumulate_threaded(flat_lut: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Shard the batch axis of the gather+reduce across the shared pool."""
    return run_sharded(
        lambda start, stop: _lut_accumulate_numpy(flat_lut, rows[start:stop]),
        rows.shape[0],
    )


class RecordAccumulator:
    """Pre-sign accumulation for the record encoder with a fused bind LUT.

    ``lut[i, l] = position[i] * level[l]`` collapses the bind into a gather;
    a batch accumulates as one fancy-indexed gather over the flattened
    ``(N * L, D)`` table followed by one C-level reduction per block.  When
    the LUT itself would exceed *lut_budget_bytes* the factored form is kept
    (one gather + one multiply per feature), with the int32 casts hoisted out
    of the request path.
    """

    def __init__(
        self,
        position_vectors: np.ndarray,
        level_vectors: np.ndarray,
        lut_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES,
    ):
        num_features, dimension = position_vectors.shape
        num_levels = level_vectors.shape[0]
        lut_bytes = num_features * num_levels * dimension
        if lut_bytes <= lut_budget_bytes:
            lut = position_vectors[:, None, :].astype(np.int8) * level_vectors[None, :, :]
            self._flat_lut = lut.reshape(num_features * num_levels, dimension)
            self._row_offsets = np.arange(num_features, dtype=np.int64) * num_levels
            self._positions = None
            self._levels = None
            self.table_bytes = self._flat_lut.nbytes
        else:
            self._flat_lut = None
            self._row_offsets = None
            self._positions = position_vectors.astype(np.int32)
            self._levels = level_vectors.astype(np.int32)
            self.table_bytes = self._positions.nbytes + self._levels.nbytes
        self._dimension = dimension

    def __call__(self, level_indices: np.ndarray) -> np.ndarray:
        if self._flat_lut is not None:
            rows = level_indices + self._row_offsets
            return get_kernel("encode.lut_accumulate")(self._flat_lut, rows)
        batch, num_features = level_indices.shape
        accumulated = np.zeros((batch, self._dimension), dtype=np.int32)
        for feature_index in range(num_features):
            accumulated += (
                self._positions[feature_index]
                * self._levels[level_indices[:, feature_index]]
            )
        return accumulated


class NGramAccumulator:
    """Pre-sign accumulation for the n-gram encoder, fully vectorised.

    The ``ngram`` permuted copies of the level codebook are built once; each
    call then evaluates *all* binding windows of a block in one shot: for
    offset ``o`` the rolled gather ``codebook[o][levels[:, o : o + W]]``
    yields every window's ``o``-th factor at once (``W`` windows), the
    factors multiply element-wise (products of ±1 stay ±1, so int8 never
    overflows) and a single C-level reduction bundles the windows.  Window
    blocks bound the ``(batch, W, D)`` int8 scratch.
    """

    def __init__(self, level_vectors: np.ndarray, ngram: int):
        codebook = level_vectors.astype(np.int8)
        self.ngram = int(ngram)
        self._codebooks = [
            np.roll(codebook, offset, axis=1) for offset in range(self.ngram)
        ]
        self._dimension = codebook.shape[1]
        self.table_bytes = sum(book.nbytes for book in self._codebooks)

    def __call__(self, level_indices: np.ndarray) -> np.ndarray:
        batch, num_features = level_indices.shape
        num_windows = num_features - self.ngram + 1
        if num_windows < 1:
            raise ValueError(
                f"ngram={self.ngram} exceeds the number of features {num_features}"
            )
        accumulated = np.zeros((batch, self._dimension), dtype=np.int32)
        block = max(1, _SCRATCH_BYTES // max(1, batch * self._dimension))
        block = min(block, _INT16_HEADROOM)
        for start in range(0, num_windows, block):
            stop = min(start + block, num_windows)
            gram = self._codebooks[0][level_indices[:, start:stop]]
            for offset in range(1, self.ngram):
                gram *= self._codebooks[offset][
                    level_indices[:, start + offset : stop + offset]
                ]
            accumulated += gram.sum(axis=1, dtype=np.int16)
            # Release the window-block scratch before the next gather so the
            # allocator reuses the same hot buffer (see _lut_accumulate_numpy).
            del gram
        return accumulated


def build_accumulator(
    encoder, lut_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES
) -> Optional[object]:
    """Compile the fused accumulator for a fitted encoder, or ``None``.

    Dispatches on the encoder type; unknown encoder classes get ``None`` so
    callers can fall back to ``encoder.encode``.
    """
    from repro.hdc.encoders import NGramEncoder, RecordEncoder

    if isinstance(encoder, NGramEncoder):
        return NGramAccumulator(encoder.level_memory.vectors, encoder.ngram)
    if isinstance(encoder, RecordEncoder):
        return RecordAccumulator(
            encoder.position_memory.vectors,
            encoder.level_memory.vectors,
            lut_budget_bytes=lut_budget_bytes,
        )
    return None


__all__ = [
    "DEFAULT_LUT_BUDGET_BYTES",
    "NGramAccumulator",
    "RecordAccumulator",
    "build_accumulator",
]
