"""Float matmul/sign kernels and dtype-policy casts backing the NN substrate.

The seed code forced ``np.asarray(..., dtype=np.float64)`` on every
forward/backward call, up-casting the entire training hot path (the encoded
hypervectors are int8; the latent weights need nowhere near 53 bits of
mantissa).  These kernels replace that policy:

* :func:`as_float` casts *integer* inputs to the configured float dtype
  (:func:`repro.kernels.dispatch.float_dtype`, default ``float32``) and
  leaves arrays that are already floating point untouched — no silent up- or
  down-casts anywhere on the training path;
* :func:`matmul` is the dispatchable dense product behind
  :class:`repro.nn.layers.Linear` / :class:`~repro.nn.layers.BinaryLinear`
  and the nearest-centroid scorer;
* :func:`sign_bipolar` binarises latent weights (Eq. 8, zeros map to +1)
  in the dtype of its input.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.dispatch import float_dtype, get_kernel, register_kernel, run_sharded


def as_float(array: np.ndarray) -> np.ndarray:
    """View *array* as floating point without churning precision.

    Floating inputs pass through unchanged (whatever their width); anything
    else is cast to the policy dtype.  This is the only place integer
    hypervectors become floats on the NN path.
    """
    array = np.asarray(array)
    if np.issubdtype(array.dtype, np.floating):
        return array
    return array.astype(float_dtype())


def zeros(shape, dtype=None) -> np.ndarray:
    """A zero array in the policy float dtype (or an explicit *dtype*)."""
    return np.zeros(shape, dtype=float_dtype() if dtype is None else dtype)


def sign_bipolar(values: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Binarise to ``{+1, -1}`` with ``sgn(0) = +1`` (Eq. 8), dtype-preserving.

    Used for the binary weights ``C = sgn(C_nb)``; the result stays in the
    latent weights' dtype unless *dtype* overrides it.
    """
    values = np.asarray(values)
    target = values.dtype if dtype is None else np.dtype(dtype)
    if not np.issubdtype(target, np.floating):
        target = float_dtype()
    return np.where(values < 0, target.type(-1), target.type(1))


@register_kernel("linear.matmul")
def _matmul_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


@register_kernel("linear.matmul", backend="threaded")
def _matmul_threaded(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shard the rows of *a* across the shared pool (BLAS releases the GIL)."""
    if a.ndim != 2:
        return a @ b
    return run_sharded(lambda start, stop: a[start:stop] @ b, a.shape[0])


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dispatchable dense product ``a @ b``."""
    return get_kernel("linear.matmul")(a, b)


__all__ = ["as_float", "matmul", "sign_bipolar", "zeros"]
