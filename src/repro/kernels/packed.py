"""Bit-packed hypervector kernels: pack/unpack, XOR+popcount, sign fusion.

This is the single home of every bit-level trick the paper's zero-overhead
inference claim rests on:

* :func:`pack_bits` / :func:`pack_bipolar` / :func:`unpack_bipolar` — the
  uint64-word representation (``+1 -> 1``, ``-1 -> 0``);
* :func:`bit_differences_words` — pairwise differing-bit counts via one
  broadcasted XOR + popcount per row block (the Eq. 4 Hamming kernel);
* :func:`packed_dot_scores` — the integer dot similarity ``D - 2 * diff``
  recovered from bit differences without unpacking;
* :func:`sign_fuse_bits` — majority/sign fusion: derive the packed bit
  directly from the encoder's pre-sign integer accumulation, replicating
  :func:`repro.hdc.hypervector.sign_with_ties` bit-for-bit (same RNG draws)
  so the dense int8 hypervector never needs to exist.

``repro.hdc.packing`` remains as a thin deprecated shim over this module.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from repro.kernels.dispatch import (
    get_kernel,
    register_kernel,
    run_sharded,
    run_sharded_processes,
)

BIPOLAR_DTYPE = np.int8

_WORD_BITS = 64

# Popcount lookup table for 16-bit chunks; uint64 words are split into four.
# Only used when NumPy lacks the native ``bitwise_count`` ufunc (added in 2.0).
_POPCOUNT_16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Upper bound (bytes) on the XOR scratch buffer allocated per block of the
#: pairwise distance computation; rows of the query side are chunked under it.
_DISTANCE_BLOCK_BYTES = 1 << 25  # 32 MiB


# ------------------------------------------------------------------- packing
def pack_bits(bits: np.ndarray, dimension: Optional[int] = None) -> "PackedHypervectors":
    """Pack a ``(rows, D)`` 0/1 bit matrix into uint64 words.

    This is the raw packing kernel behind :func:`pack_bipolar` (bit 1 means
    ``+1``); callers that already hold bits — e.g. the serving engine, which
    derives them straight from the encoder's pre-sign accumulation — use it to
    skip the dense int8 intermediate.  Entries are not validated; anything
    non-zero counts as a set bit.
    """
    bits = np.atleast_2d(np.asarray(bits))
    if dimension is None:
        dimension = bits.shape[1]
    if bits.dtype != np.bool_:
        bits = bits != 0  # uint8 astype would truncate e.g. 256 or 0.5 to 0
    padded_width = ((dimension + _WORD_BITS - 1) // _WORD_BITS) * _WORD_BITS
    if padded_width != dimension:
        padding = np.zeros((bits.shape[0], padded_width - dimension), dtype=bits.dtype)
        bits = np.concatenate([bits, padding], axis=1)
    if sys.byteorder == "little":
        # np.packbits with little bit order followed by a native uint64 view
        # is the C-speed path; byte k of a word holds bits 8k..8k+7, which on
        # a little-endian host is exactly the arithmetic packing below.
        packed_bytes = np.packbits(bits, axis=1, bitorder="little")
        words = np.ascontiguousarray(packed_bytes).view(np.uint64)
    else:  # pragma: no cover - big-endian hosts
        reshaped = bits.reshape(bits.shape[0], -1, _WORD_BITS)
        weights = (1 << np.arange(_WORD_BITS, dtype=np.uint64)).astype(np.uint64)
        words = (reshaped.astype(np.uint64) * weights).sum(axis=2, dtype=np.uint64)
    return PackedHypervectors(words=words, dimension=dimension)


def pack_bipolar(hypervectors: np.ndarray) -> "PackedHypervectors":
    """Pack a ``(rows, D)`` bipolar int8 matrix into uint64 words."""
    packed = try_pack_bipolar(hypervectors)
    if packed is None:
        raise ValueError("pack_bipolar expects entries in {+1, -1}")
    return packed


def try_pack_bipolar(hypervectors: np.ndarray) -> Optional["PackedHypervectors"]:
    """:func:`pack_bipolar`, but ``None`` instead of raising on non-bipolar input.

    The bipolarity probe is a cheap elementwise compare (one read pass, no
    ``np.isin`` sort machinery), so callers choosing between a packed and a
    dense code path — the packed training path, validation-split scoring —
    can test arbitrary input at streaming cost.
    """
    hypervectors = np.atleast_2d(np.asarray(hypervectors))
    if hypervectors.ndim != 2 or hypervectors.size == 0:
        return None
    if not bool(np.all((hypervectors == 1) | (hypervectors == -1))):
        return None
    return pack_bits(hypervectors > 0, hypervectors.shape[1])


def unpack_bipolar(packed: "PackedHypervectors") -> np.ndarray:
    """Reverse :func:`pack_bipolar`, returning the dense ``{+1, -1}`` matrix."""
    words = packed.words
    rows, num_words = words.shape
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = ((words[:, :, None] >> shifts) & np.uint64(1)).astype(np.int8)
    dense = bits.reshape(rows, num_words * _WORD_BITS)[:, : packed.dimension]
    return (2 * dense - 1).astype(BIPOLAR_DTYPE)


# ------------------------------------------------------------------ popcount
def _popcount_table(words: np.ndarray) -> np.ndarray:
    """Population count of each uint64 element via four 16-bit table lookups."""
    counts = np.zeros(words.shape, dtype=np.uint32)
    remaining = words.copy()
    for _ in range(4):
        counts += _POPCOUNT_16[(remaining & np.uint64(0xFFFF)).astype(np.uint32)]
        remaining >>= np.uint64(16)
    return counts


def popcount(words: np.ndarray) -> np.ndarray:
    """Population count of each uint64 element.

    Uses the native ``np.bitwise_count`` ufunc when available (NumPy >= 2.0),
    falling back to 16-bit table lookups otherwise.  Both paths return the
    exact same integer counts.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    return _popcount_table(words)


# ----------------------------------------------------------- bit differences
@register_kernel("packed.bit_differences")
def _bit_differences_numpy(a_words: np.ndarray, b_words: np.ndarray) -> np.ndarray:
    """Pairwise differing-bit counts between two uint64 word matrices.

    The whole pairwise XOR is evaluated as one broadcasted ufunc call per
    row block (blocks bound the scratch buffer to ``_DISTANCE_BLOCK_BYTES``)
    rather than a Python-level loop over rows, which is what makes the
    packed path faster than the dense dot product instead of merely smaller.
    """
    num_words = a_words.shape[1]
    counts = np.empty((a_words.shape[0], b_words.shape[0]), dtype=np.int64)
    bytes_per_row = max(1, b_words.shape[0] * num_words * 8)
    block_rows = max(1, _DISTANCE_BLOCK_BYTES // bytes_per_row)
    for start in range(0, a_words.shape[0], block_rows):
        stop = min(start + block_rows, a_words.shape[0])
        xor = a_words[start:stop, None, :] ^ b_words[None, :, :]
        counts[start:stop] = popcount(xor).sum(axis=2, dtype=np.int64)
    return counts


@register_kernel("packed.bit_differences", backend="threaded")
def _bit_differences_threaded(a_words: np.ndarray, b_words: np.ndarray) -> np.ndarray:
    """Shard the query rows of the XOR+popcount across the shared pool."""
    return run_sharded(
        lambda start, stop: _bit_differences_numpy(a_words[start:stop], b_words),
        a_words.shape[0],
    )


@register_kernel("packed.bit_differences", backend="multiprocess")
def _bit_differences_multiprocess(
    a_words: np.ndarray, b_words: np.ndarray
) -> np.ndarray:
    """Shard the query rows of the XOR+popcount across worker processes.

    ``packed_dot_scores`` resolves through this kernel too, so selecting the
    ``multiprocess`` backend moves the whole packed scoring rule off the GIL.
    Row-sharded concatenation keeps the counts bit-identical to the numpy
    backend; small inputs fall through to the direct call inside
    :func:`~repro.kernels.dispatch.run_sharded_processes`.
    """
    return run_sharded_processes(_bit_differences_numpy, a_words, b_words)


def bit_differences_words(a_words: np.ndarray, b_words: np.ndarray) -> np.ndarray:
    """Dispatchable pairwise differing-bit counts over packed word matrices.

    ``int64`` counts are returned so callers can derive the dot similarity
    ``D - 2 * diff`` without overflow or rounding.
    """
    if a_words.shape[1] != b_words.shape[1]:
        raise ValueError(
            f"word-count mismatch: {a_words.shape[1]} vs {b_words.shape[1]}"
        )
    return get_kernel("packed.bit_differences")(a_words, b_words)


def packed_dot_scores(
    queries: "PackedHypervectors", references: "PackedHypervectors"
) -> np.ndarray:
    """Integer dot similarity ``En(x)^T c_k`` computed entirely over packed words.

    Equals :func:`repro.hdc.hypervector.dot_similarity` on the corresponding
    dense bipolar matrices exactly: ``dot = D - 2 * differing_bits``.
    """
    differences = queries.bit_differences(references)
    return (queries.dimension - 2 * differences).astype(np.int64)


# ------------------------------------------------------------ flipped masks
def pack_flip_mask(positions: np.ndarray, dimension: int) -> np.ndarray:
    """Pack a set of bit *positions* into a one-row uint64 flip mask.

    The mask's set bits mark the positions a stochastic update flips in one
    packed model row (``words ^= mask`` applies the flip), which is also the
    sparse operand :func:`flip_score_delta` popcounts against.  Positions must
    be unique and lie in ``[0, dimension)`` — out-of-range bits would land in
    the padding of the last word and corrupt every later XOR+popcount.
    """
    positions = np.asarray(positions)
    if positions.size and (
        int(positions.min()) < 0 or int(positions.max()) >= dimension
    ):
        raise ValueError(f"positions must lie in [0, {dimension})")
    num_words = (dimension + _WORD_BITS - 1) // _WORD_BITS
    mask = np.zeros(num_words, dtype=np.uint64)
    word_indices = positions // _WORD_BITS
    bits = np.left_shift(
        np.uint64(1), (positions % _WORD_BITS).astype(np.uint64)
    )
    np.bitwise_or.at(mask, word_indices, bits)
    return mask


def flip_score_delta(
    sample_words: np.ndarray, model_words: np.ndarray, flip_mask: np.ndarray
) -> np.ndarray:
    """Per-sample dot-score change from flipping masked bits of one model row.

    ``model_words`` is the packed model row *after* the flip (``old ^ mask``)
    and ``flip_mask`` marks the flipped positions.  Returns the exact int64
    delta ``new_dot - old_dot`` for every row of ``sample_words``: each
    flipped position moves the dot product by ±2, agreeing with the new bit
    counts ``+2`` and disagreeing ``-2``, so with ``d`` masked disagreements
    ``delta = 2 * flipped - 4 * d``.

    The computation is sparse in the mask: only the mask's non-zero words are
    XOR'd and popcounted, so maintaining a score column under a stochastic
    bit-flip update costs ``O(samples * touched_words)`` instead of a rescan
    of the whole model bank.
    """
    if sample_words.shape[1] != flip_mask.shape[0] or (
        model_words.shape[0] != flip_mask.shape[0]
    ):
        raise ValueError(
            f"word-count mismatch: samples {sample_words.shape[1]}, "
            f"model {model_words.shape[0]}, mask {flip_mask.shape[0]}"
        )
    active = np.flatnonzero(flip_mask)
    if active.size == 0:
        return np.zeros(sample_words.shape[0], dtype=np.int64)
    mask = flip_mask[active]
    flipped = int(popcount(mask).sum())
    disagreements = popcount(
        (sample_words[:, active] ^ model_words[active]) & mask
    ).sum(axis=1, dtype=np.int64)
    return 2 * flipped - 4 * disagreements


# --------------------------------------------------------------- sign fusion
def sign_fuse_bits(
    accumulated: np.ndarray,
    tie_break: str = "positive",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Fuse the encoder's ``sgn`` into packed-bit derivation.

    The sign of the pre-sign integer accumulation *is* the packed bit, so the
    int8 hypervector matrix never needs to exist.  Tie bits replicate
    :func:`repro.hdc.hypervector.sign_with_ties` (same RNG draws, same
    mapping), keeping ``pack_bits(sign_fuse_bits(raw))`` bit-identical to
    ``pack_bipolar(sign_with_ties(raw))``.
    """
    if tie_break not in ("random", "positive"):
        raise ValueError(f"tie_break must be 'random' or 'positive', got {tie_break!r}")
    bits = accumulated > 0
    zeros = accumulated == 0
    if np.any(zeros):
        if tie_break == "positive":
            bits |= zeros
        else:
            if rng is None:
                raise ValueError("tie_break='random' requires an rng")
            draws = rng.integers(0, 2, size=int(zeros.sum()), dtype=np.int8)
            bits[zeros] = draws == 1
    return bits


class PackedHypervectors:
    """A batch of bit-packed hypervectors.

    Attributes
    ----------
    words:
        ``(rows, ceil(D / 64))`` uint64 array holding the packed bits.
    dimension:
        The original hypervector dimension ``D`` (needed because the last
        word may be partially used).
    """

    def __init__(self, words: np.ndarray, dimension: int):
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        expected_words = (dimension + _WORD_BITS - 1) // _WORD_BITS
        if words.shape[1] != expected_words:
            raise ValueError(
                f"words has {words.shape[1]} columns, expected {expected_words} "
                f"for dimension {dimension}"
            )
        self.words = words
        self.dimension = dimension

    def __len__(self) -> int:
        return self.words.shape[0]

    @property
    def storage_bytes(self) -> int:
        """Bytes needed to store this batch (what an accelerator would keep)."""
        return self.words.nbytes

    def hamming_distance(self, other: "PackedHypervectors") -> np.ndarray:
        """Pairwise normalised Hamming distances, shape ``(len(self), len(other))``.

        Computed as popcount(XOR) over packed words, exactly how a hardware
        implementation would evaluate Eq. 4.
        """
        if other.dimension != self.dimension:
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        return self.bit_differences(other) / float(self.dimension)

    def bit_differences(self, other: "PackedHypervectors") -> np.ndarray:
        """Pairwise *raw* differing-bit counts, shape ``(len(self), len(other))``."""
        if other.dimension != self.dimension:
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        return bit_differences_words(self.words, other.words)

    def dot_scores(self, other: "PackedHypervectors") -> np.ndarray:
        """Pairwise integer dot similarity ``D - 2 * bit_differences``."""
        return packed_dot_scores(self, other)


__all__ = [
    "BIPOLAR_DTYPE",
    "PackedHypervectors",
    "bit_differences_words",
    "flip_score_delta",
    "pack_bipolar",
    "pack_bits",
    "pack_flip_mask",
    "packed_dot_scores",
    "popcount",
    "sign_fuse_bits",
    "try_pack_bipolar",
    "unpack_bipolar",
]
