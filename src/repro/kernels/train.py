"""Packed training kernels: centroid bundling, epoch scoring, ordered updates.

PR 2 made *inference* packed-native; this module does the same for the
retraining loop (QuantHD-style Eq. 3, AdaptHD, the enhanced variant).  The
key structural fact it exploits: within one retraining pass the *binary*
class hypervectors are fixed — they are re-signed only after the pass — and
the ``± alpha · H`` accumulator updates are additive.  One epoch therefore
decomposes into

1. **epoch scoring** (:func:`score_epoch`) — one blocked XOR+popcount of the
   whole packed training set against the packed class hypervectors (rides the
   sharded ``packed.bit_differences`` kernel), instead of one dense
   ``(K, D)`` cast + matvec per sample;
2. **ordered scatter-add** (:func:`apply_class_updates`) — the misclassified
   samples' updates applied to the float accumulators *in visit order*, so
   the floating-point accumulation order — and hence every rounding and every
   ``sgn(0)`` tie — is bit-for-bit the sequential loop's;
3. **re-sign on packed words** — :func:`repro.kernels.packed.sign_fuse_bits`
   + :func:`flip_fraction_packed` replace the dense re-sign and the dense
   flip-count.

:func:`bundle_packed` is the matching fast path for the baseline centroid
bundling (Eq. 2) that seeds every retraining run: per-class bit counts over
packed words instead of an unbuffered ``np.add.at`` over dense int64 rows.

:class:`EnsembleScoreboard` extends the same idea to the SearcHD-style
multi-model ensemble, whose updates are sequential *within* a pass (each
stochastic bit-flip changes the scores later samples see): the whole
``(samples, K * N)`` score matrix is computed once per pass by blocked
XOR+popcount and then maintained *incrementally* — a bit-flip update patches
exactly one column via a sparse flipped-mask popcount
(:func:`~repro.kernels.packed.flip_score_delta`).

Everything here is exact: integer kernels produce the same integers, and the
float scatter-add reproduces the sequential addition order, so classifiers
riding these kernels emit bit-identical models and histories (see
``tests/integration/test_training_parity.py``).
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from repro.kernels.dispatch import get_kernel, register_kernel, run_sharded_sum
from repro.kernels.packed import (
    PackedHypervectors,
    flip_score_delta,
    pack_flip_mask,
    packed_dot_scores,
    popcount,
    try_pack_bipolar,
)

_WORD_BITS = 64


# ------------------------------------------------------------ training set
class PackedTrainingSet:
    """Encode-once view of a training split: packed words + int8 samples.

    Built once per training set and reused across every retraining iteration
    *and* across strategies (the experiment loops share one instance), this
    bundles the two representations the packed training path needs:

    ``packed``
        ``(n, ⌈D/64⌉)`` uint64 words for the epoch scorer.
    ``samples``
        The ``(n, D)`` bipolar samples as contiguous int8 — the accumulator
        updates multiply these rows by a float coefficient, which yields the
        exact same float64 values as the seed's ``astype(np.float64)`` copy
        at an eighth of the memory.
    """

    def __init__(self, packed: PackedHypervectors, samples: np.ndarray):
        samples = np.asarray(samples)
        if samples.ndim != 2:
            raise ValueError(f"samples must be 2-D, got shape {samples.shape}")
        if samples.shape[0] != len(packed) or samples.shape[1] != packed.dimension:
            raise ValueError(
                f"samples shape {samples.shape} does not match packed "
                f"({len(packed)}, {packed.dimension})"
            )
        self.packed = packed
        self.samples = samples

    @property
    def num_samples(self) -> int:
        return self.samples.shape[0]

    @property
    def dimension(self) -> int:
        return self.packed.dimension

    @classmethod
    def from_dense(cls, hypervectors: np.ndarray) -> "PackedTrainingSet":
        """Pack a dense bipolar ``(n, D)`` matrix (any ±1-valued dtype)."""
        prepared = cls.try_from_dense(hypervectors)
        if prepared is None:
            raise ValueError("PackedTrainingSet expects entries in {+1, -1}")
        return prepared

    @classmethod
    def try_from_dense(cls, hypervectors: np.ndarray) -> Optional["PackedTrainingSet"]:
        """Like :meth:`from_dense` but returns ``None`` for non-bipolar input.

        The bipolar probe (:func:`~repro.kernels.packed.try_pack_bipolar`)
        is a cheap elementwise compare, so testing arbitrary input before
        choosing the packed or dense training path costs one read pass.
        """
        hypervectors = np.atleast_2d(np.asarray(hypervectors))
        packed = try_pack_bipolar(hypervectors)
        if packed is None:
            return None
        samples = np.ascontiguousarray(hypervectors, dtype=np.int8)
        return cls(packed=packed, samples=samples)

    def require_matches(self, hypervectors: np.ndarray) -> "PackedTrainingSet":
        """Validate that this packed copy describes *hypervectors*.

        The shared guard behind every ``fit(packed_train=…)`` entry point;
        returns ``self`` so call sites can chain.  Besides the shape, the
        first row is spot-checked for equal content, which catches the
        easy-to-make mistake of pairing the packed copy of one split with
        the dense matrix of another (same ``(n, D)``, different data) at
        O(D) cost; full-content verification stays the caller's bargain.
        """
        if (
            self.num_samples != hypervectors.shape[0]
            or self.dimension != hypervectors.shape[1]
        ):
            raise ValueError(
                f"packed_train shape ({self.num_samples}, {self.dimension}) "
                f"does not match hypervectors {hypervectors.shape}"
            )
        if not bool(np.all(self.samples[0] == hypervectors[0])):
            raise ValueError(
                "packed_train content does not match hypervectors "
                "(first row differs); was it built from a different split?"
            )
        return self


# ---------------------------------------------------------- epoch scoring
def score_epoch(
    packed_samples: PackedHypervectors, packed_classes: PackedHypervectors
) -> Tuple[np.ndarray, np.ndarray]:
    """Score the whole training set against fixed packed class hypervectors.

    Returns ``(scores, predicted)`` where ``scores`` is the ``(n, K)`` int64
    dot similarity (equal to the dense ``binary @ sample`` values exactly)
    and ``predicted`` its row argmax — the two quantities one retraining pass
    consumes.  One call replaces the sequential loop's per-sample
    ``(K, D)`` float cast + matvec and rides the (sharded, blocked)
    ``packed.bit_differences`` kernel.
    """
    scores = packed_dot_scores(packed_samples, packed_classes)
    return scores, np.argmax(scores, axis=1)


# ------------------------------------------------------- centroid bundling
@register_kernel("train.bundle_counts")
def _bundle_counts_numpy(
    words: np.ndarray, dimension: int, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Per-class set-bit counts ``(K, D)`` from packed words.

    Rows are unpacked in label-sorted order and segment-summed with one
    ``np.add.reduceat`` call; classes absent from ``labels`` get a zero row
    (``reduceat`` would otherwise repeat a neighbouring segment).
    """
    bits = _unpack_bits(words, dimension)
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    segment_starts = np.flatnonzero(np.diff(sorted_labels)) + 1
    starts = np.concatenate([[0], segment_starts])
    present = sorted_labels[starts]
    sums = np.add.reduceat(bits[order], starts, axis=0, dtype=np.int64)
    counts = np.zeros((num_classes, dimension), dtype=np.int64)
    counts[present] = sums
    return counts


@register_kernel("train.bundle_counts", backend="threaded")
def _bundle_counts_threaded(
    words: np.ndarray, dimension: int, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Shard the sample rows; integer partial counts sum exactly."""
    return run_sharded_sum(
        lambda start, stop: _bundle_counts_numpy(
            words[start:stop], dimension, labels[start:stop], num_classes
        ),
        words.shape[0],
    )


def unpack_bit_rows(words: np.ndarray, dimension: int) -> np.ndarray:
    """Packed uint64 words -> ``(rows, dimension)`` 0/1 uint8 matrix.

    The expansion behind the bundling kernels, exposed for callers that
    bundle *overlapping* row subsets of the same packed matrix (the
    ensemble's bootstrap initialisation): expanding a group of rows once and
    summing uint8 gathers per subset moves an eighth of the memory the dense
    ``astype(int64)`` path does, while producing the same bit counts.
    """
    return _unpack_bits(words, dimension)


def _unpack_bits(words: np.ndarray, dimension: int) -> np.ndarray:
    """Packed uint64 words -> ``(rows, dimension)`` 0/1 uint8 matrix."""
    if sys.byteorder == "little":
        bits = np.unpackbits(
            np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
        )
    else:  # pragma: no cover - big-endian hosts
        shifts = np.arange(_WORD_BITS, dtype=np.uint64)
        bits = ((words[:, :, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        bits = bits.reshape(words.shape[0], -1)
    return bits[:, :dimension]


def bundle_packed(
    packed: PackedHypervectors, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Class-wise centroid accumulators (Eq. 2) computed over packed words.

    Returns the ``(num_classes, D)`` int64 sum of bipolar sample rows per
    class — exactly what the dense rule ``np.add.at(acc, labels, samples)``
    produces (``sum = 2 * set_bits - class_size``), including zero rows for
    classes absent from ``labels``, so the downstream ``sgn`` sees identical
    integers and draws identical tie-breaks.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != len(packed):
        raise ValueError(
            f"labels shape {labels.shape} does not match {len(packed)} packed rows"
        )
    if num_classes < 1 or (labels.size and int(labels.max()) >= num_classes):
        raise ValueError(f"labels must lie in [0, {num_classes})")
    counts = get_kernel("train.bundle_counts")(
        packed.words, packed.dimension, labels, num_classes
    )
    class_sizes = np.bincount(labels, minlength=num_classes).astype(np.int64)
    return 2 * counts - class_sizes[:, None]


# ------------------------------------------------------ accumulator updates
@register_kernel("train.scatter_add")
def _scatter_add_numpy(
    accumulators: np.ndarray,
    class_indices: np.ndarray,
    coefficients: np.ndarray,
    samples: np.ndarray,
    sample_rows: np.ndarray,
) -> None:
    """Apply ``accumulators[c] += coeff * samples[row]`` updates *in order*.

    Float addition is not associative, so the update order is part of the
    contract: updates land left-to-right exactly like the sequential
    retraining loop, which keeps every rounding — and therefore every
    later ``sgn(0)`` tie — bit-identical.  This is also why the kernel has
    no threaded override: sharding the update axis would reorder additions
    into the same accumulator row.  (A batched ``np.add.at`` preserves order
    too but routes through ufunc.at's generic inner loop, which measures ~10x
    slower than this row loop at D=4000.)
    """
    for position in range(class_indices.shape[0]):
        accumulators[class_indices[position]] += (
            coefficients[position] * samples[sample_rows[position]]
        )


def apply_class_updates(
    accumulators: np.ndarray,
    class_indices: np.ndarray,
    coefficients: np.ndarray,
    samples: np.ndarray,
    sample_rows: np.ndarray,
) -> None:
    """Ordered scatter-add of per-sample updates into the class accumulators.

    ``class_indices``, ``coefficients`` and ``sample_rows`` are parallel
    arrays describing one epoch's updates in the exact order the sequential
    loop would apply them; ``samples`` is the bipolar training matrix the
    rows index into.  Modifies ``accumulators`` in place.
    """
    if not (class_indices.shape[0] == coefficients.shape[0] == sample_rows.shape[0]):
        raise ValueError(
            "class_indices, coefficients and sample_rows must have equal length"
        )
    get_kernel("train.scatter_add")(
        accumulators, class_indices, coefficients, samples, sample_rows
    )


# ------------------------------------------------------ incremental scoring
class EnsembleScoreboard:
    """Incrementally-maintained packed dot scores of samples vs a model bank.

    The SearcHD-style ensemble trains *sequentially*: every visited sample is
    scored against all ``K * N`` binary sub-models, and a misclassification
    flips a sparse random subset of one (or two) sub-models' bits.  The seed
    loop re-ran a full dense ``(K * N, D)`` matmul per sample; this structure
    exploits the two facts that make that rescan redundant:

    * between updates the model bank is *fixed*, so one blocked XOR+popcount
      (:func:`~repro.kernels.packed.packed_dot_scores`) of the whole packed
      training set at the start of a pass yields every score the pass reads;
    * an update touches *one* sub-model, so only that column of the score
      matrix changes — and the change is a popcount over the flipped-bit
      mask against each sample (:func:`~repro.kernels.packed.flip_score_delta`),
      sparse in ``flip_fraction * disagreeing_bits``, not a rescan.

    All arithmetic is integer-exact, so the invariant
    ``scores == packed_dot_scores(samples, bank)`` holds after any sequence
    of :meth:`flip_bits` calls and the visit-time score rows equal the seed
    loop's dense per-sample products bit for bit.

    Parameters
    ----------
    packed_samples:
        The packed training set rows (fixed for the scoreboard's lifetime).
    bank_words:
        ``(models, ceil(D/64))`` uint64 packed model bank, mutated in place
        by :meth:`flip_bits` (bit 1 means ``+1``, as in ``pack_bipolar``).
    dimension:
        The unpacked hypervector dimension ``D``.
    """

    def __init__(
        self,
        packed_samples: PackedHypervectors,
        bank_words: np.ndarray,
        dimension: int,
    ):
        bank_words = np.ascontiguousarray(bank_words, dtype=np.uint64)
        if bank_words.ndim != 2 or bank_words.shape[1] != packed_samples.words.shape[1]:
            raise ValueError(
                f"bank_words shape {bank_words.shape} does not match packed "
                f"samples with {packed_samples.words.shape[1]} words per row"
            )
        if dimension != packed_samples.dimension:
            raise ValueError(
                f"dimension mismatch: {dimension} vs {packed_samples.dimension}"
            )
        self._packed_samples = packed_samples
        self.bank_words = bank_words
        self.dimension = dimension
        self.scores: np.ndarray = np.empty(0)
        self.refresh()

    @property
    def num_models(self) -> int:
        return self.bank_words.shape[0]

    def refresh(self) -> None:
        """Recompute the full ``(samples, models)`` score matrix.

        One blocked XOR+popcount over the packed words — the score-once half
        of the trainer, run at construction.  The incremental deltas are
        exact integers, so the matrix never drifts and training passes keep
        reusing it across pass boundaries; ``refresh`` exists for callers
        that mutate ``bank_words`` outside :meth:`flip_bits`.
        """
        self.scores = packed_dot_scores(
            self._packed_samples,
            PackedHypervectors(self.bank_words, self.dimension),
        )

    def flip_bits(self, model_index: int, positions: np.ndarray) -> None:
        """Flip *positions* of one sub-model and patch its score column.

        ``positions`` are unique bit indices in ``[0, D)`` (the stochastic
        update's chosen disagreeing/agreeing bits).  The packed row is
        updated with one XOR and the score column with the sparse
        flipped-mask delta — no other column changes, because no other
        sub-model changed.
        """
        mask = pack_flip_mask(positions, self.dimension)
        self.bank_words[model_index] ^= mask
        self.scores[:, model_index] += flip_score_delta(
            self._packed_samples.words, self.bank_words[model_index], mask
        )


# ------------------------------------------------------------ flip fraction
def flip_fraction_packed(
    new_packed: PackedHypervectors, old_packed: PackedHypervectors
) -> float:
    """Fraction of class-hypervector bits that flipped, on packed words.

    Equals ``np.mean(new_dense != old_dense)`` exactly: both operands pad
    the last word with zero bits, so the XOR+popcount counts only real
    positions, and the single integer division matches the dense mean.
    Drives the retraining convergence test (``update_fraction < epsilon``).
    """
    if new_packed.dimension != old_packed.dimension or len(new_packed) != len(old_packed):
        raise ValueError(
            f"packed shapes differ: ({len(new_packed)}, {new_packed.dimension}) vs "
            f"({len(old_packed)}, {old_packed.dimension})"
        )
    differing = int(popcount(new_packed.words ^ old_packed.words).sum())
    return differing / float(len(new_packed) * new_packed.dimension)


__all__ = [
    "EnsembleScoreboard",
    "PackedTrainingSet",
    "apply_class_updates",
    "bundle_packed",
    "flip_fraction_packed",
    "score_epoch",
    "unpack_bit_rows",
]
