"""repro.loadgen — client-side load generation for soak-testing the server.

The serving benchmarks measure the engine from the inside; this subpackage
measures it the way a *caller* experiences it, with reproducible traffic:

* :mod:`repro.loadgen.sampler` — :class:`RequestSampler` draws request
  feature rows from any registered dataset with a seed-stable stream (the
  same seed always produces the same request sequence, byte for byte —
  verified by a digest carried in every report);
* :mod:`repro.loadgen.traffic` — the two classic traffic models:
  :class:`OpenLoop` (Poisson arrivals at a target rate, latency includes
  queueing — the honest soak-test model) and :class:`ClosedLoop`
  (``concurrency`` outstanding requests, the throughput-ceiling model);
* :mod:`repro.loadgen.runner` — :func:`run_load_test` drives a target
  through warm-up and measure phases and collects exact latency
  percentiles; targets are :class:`InProcessTarget` (a ``ServeApp``, no
  network) or :class:`HTTPTarget` (a live ``repro serve`` endpoint);
* :mod:`repro.loadgen.report` — JSON report building/validation/formatting,
  output-compatible with the files under ``benchmarks/results/``.

``python -m repro loadgen`` is the CLI front-end; ``--quick`` is the CI
smoke mode (in-process target, fixed seed, report well-formedness asserted).
"""

from repro.loadgen.report import (
    build_report,
    format_report,
    validate_fleet_report,
    validate_report,
    validate_resilience_report,
    validate_slo_report,
    write_report,
)
from repro.loadgen.runner import (
    HTTPTarget,
    InProcessTarget,
    RetryPolicy,
    TargetError,
    run_load_test,
)
from repro.loadgen.sampler import RequestSampler
from repro.loadgen.traffic import ClosedLoop, OpenLoop

__all__ = [
    "ClosedLoop",
    "HTTPTarget",
    "InProcessTarget",
    "OpenLoop",
    "RequestSampler",
    "RetryPolicy",
    "TargetError",
    "build_report",
    "format_report",
    "run_load_test",
    "validate_fleet_report",
    "validate_report",
    "validate_resilience_report",
    "validate_slo_report",
    "write_report",
]
