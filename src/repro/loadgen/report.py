"""Load-test reports: build, validate, format, persist.

One report shape serves every consumer: the CLI prints it as a table, the CI
smoke job validates it, the soak harness dumps it as JSON next to the other
artefacts under ``benchmarks/results/``.  The report embeds the sampler's
stream digest, so two runs with the same seed can be proven to have replayed
byte-identical traffic (the acceptance criterion for determinism).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

REPORT_VERSION = 1

#: The latency summary percentiles every report carries.
PERCENTILES = (50.0, 95.0, 99.0)


def server_metrics_delta(before: dict, after: dict) -> dict:
    """Counter deltas (and after-the-run gauges) between two ``/v1/metrics``
    snapshots taken around the measure phase.

    The counters say what the *server* did for this load — requests answered,
    samples scored, cache hits, coalesced batches, worker busy seconds —
    which the client-side latency numbers cannot distinguish (e.g. a 100%
    cache-hit soak and a real scoring soak look identical from outside).
    """

    def totals(snapshot: dict) -> dict:
        out = {
            "requests": 0,
            "samples": 0,
            "errors": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "batches": 0,
        }
        for model in snapshot.get("models", {}).values():
            out["requests"] += model.get("requests", 0)
            out["samples"] += model.get("samples", 0)
            out["errors"] += model.get("errors", 0)
            cache = model.get("cache", {})
            out["cache_hits"] += cache.get("hits", 0)
            out["cache_misses"] += cache.get("misses", 0)
            out["batches"] += model.get("batches", 0)
        return out

    def worker_totals(snapshot: dict) -> dict:
        out = {"worker_requests": 0, "worker_busy_seconds": 0.0, "respawns": 0}
        for info in snapshot.get("cluster", {}).values():
            fleet = info.get("workers", {}).get("fleet", {})
            out["worker_requests"] += fleet.get("requests", 0)
            out["worker_busy_seconds"] += fleet.get("busy_seconds", 0.0)
            out["respawns"] += info.get("respawns", 0)
            for name, count in (info.get("failures") or {}).items():
                out[name] = out.get(name, 0) + count
        return out

    def fleet_totals(snapshot: dict) -> dict:
        fleet = snapshot.get("fleet") or {}
        return {
            "bank_evictions": fleet.get("evictions", 0),
            "bank_restores": fleet.get("restores", 0)
            + fleet.get("bank_restores", 0),
            "cold_loads": fleet.get("cold_loads", 0),
        }

    def tenant_totals(snapshot: dict) -> dict:
        out = {"tenant_rate_limited": 0, "tenant_quota_exceeded": 0}
        tenants = (snapshot.get("tenancy") or {}).get("tenants", {})
        for state in tenants.values():
            out["tenant_rate_limited"] += state.get("rate_limited", 0)
            out["tenant_quota_exceeded"] += state.get("quota_exceeded", 0)
        return out

    first, last = totals(before), totals(after)
    delta = {key: last[key] - first[key] for key in last}
    first_w, last_w = worker_totals(before), worker_totals(after)
    delta.update({key: last_w[key] - first_w.get(key, 0) for key in last_w})
    if "fleet" in after:
        first_f, last_f = fleet_totals(before), fleet_totals(after)
        delta.update({key: last_f[key] - first_f[key] for key in last_f})
        fleet_after = after["fleet"]
        delta["fleet_after"] = {
            "resident_banks": fleet_after.get("resident_banks", 0),
            "peak_resident_banks": fleet_after.get("peak_resident_banks", 0),
            "max_resident": fleet_after.get("max_resident"),
            "dispatchers": fleet_after.get("dispatchers", 0),
        }
    if "tenancy" in after:
        first_t, last_t = tenant_totals(before), tenant_totals(after)
        delta.update({key: last_t[key] - first_t[key] for key in last_t})
    gauges = {}
    for name, scheduler in after.get("schedulers", {}).items():
        gauges[name] = {"queue_depth": scheduler.get("queue_depth", 0)}
    if gauges:
        delta["queue_depth_after"] = gauges
    return delta


def build_report(
    target: dict,
    traffic: dict,
    sampler,
    num_requests: int,
    warmup_requests: int,
    warmup_errors: int,
    latencies: List[float],
    errors: int,
    duration_seconds: float,
    server_metrics: Optional[dict] = None,
    errors_by_status: Optional[dict] = None,
    errors_by_code: Optional[dict] = None,
    untyped_errors: int = 0,
    deadline_violations: int = 0,
    fault_plan: Optional[dict] = None,
    retries: int = 0,
    retries_by_status: Optional[dict] = None,
    retry_policy: Optional[dict] = None,
    slo: Optional[dict] = None,
    exemplars: Optional[List[dict]] = None,
) -> dict:
    """Assemble the JSON-ready report dictionary from one measure phase."""
    latency_array = np.asarray(latencies, dtype=np.float64)
    completed = int(latency_array.size)
    summary = {"count": completed, "mean_ms": 0.0, "max_ms": 0.0}
    for percentile in PERCENTILES:
        summary[f"p{percentile:.0f}_ms"] = 0.0
    if completed:
        summary["mean_ms"] = float(latency_array.mean() * 1e3)
        summary["max_ms"] = float(latency_array.max() * 1e3)
        for percentile in PERCENTILES:
            summary[f"p{percentile:.0f}_ms"] = float(
                np.percentile(latency_array, percentile) * 1e3
            )
    report = {
        "report_version": REPORT_VERSION,
        "config": {
            "target": target,
            "traffic": traffic,
            "dataset": sampler.dataset,
            "profile": sampler.profile,
            "split": sampler.split,
            "seed": sampler.seed,
            "num_requests": int(num_requests),
            "warmup_requests": int(warmup_requests),
        },
        "stream_digest": sampler.digest(warmup_requests + num_requests),
        "results": {
            "completed": completed,
            "errors": int(errors),
            "warmup_errors": int(warmup_errors),
            "duration_seconds": float(duration_seconds),
            "throughput_rps": (
                completed / duration_seconds if duration_seconds > 0 else 0.0
            ),
            "latency_ms": summary,
        },
    }
    total = completed + int(errors)
    report["resilience"] = {
        # Availability is the fraction of measured requests that got a
        # successful answer; every failure that counts against it must be a
        # typed 429/503/504, never a hang or an untyped transport error.
        "availability": completed / total if total else 0.0,
        "errors_by_status": dict(
            sorted((errors_by_status or {}).items(), key=lambda kv: kv[0])
        ),
        "errors_by_code": dict(
            sorted((errors_by_code or {}).items(), key=lambda kv: kv[0])
        ),
        "untyped_errors": int(untyped_errors),
        "deadline_violations": int(deadline_violations),
        "retries": int(retries),
        "retries_by_status": dict(
            sorted((retries_by_status or {}).items(), key=lambda kv: kv[0])
        ),
    }
    if fault_plan is not None:
        report["config"]["fault_plan"] = fault_plan
    if retry_policy is not None:
        report["config"]["retry_policy"] = retry_policy
    models = getattr(sampler, "models", None)
    if models is not None:
        report["config"]["models"] = len(models)
        report["config"]["zipf_s"] = sampler.zipf_s
    if server_metrics is not None:
        report["server_metrics_delta"] = server_metrics
    if slo is not None:
        # The server's end-of-run SLO snapshot: per-tenant verdicts, budget
        # remaining, burn rates.  Cumulative (not a delta) — the budget is a
        # property of the whole serving window, not of this soak alone.
        report["slo"] = slo
    if exemplars is not None:
        report["exemplars"] = exemplars
    return report


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* is well-formed and non-degenerate.

    This is the CI smoke assertion: every expected key present, a non-zero
    throughput, monotone percentiles, and no failed requests.
    """
    for key in ("report_version", "config", "stream_digest", "results"):
        if key not in report:
            raise ValueError(f"report is missing the {key!r} block")
    results = report["results"]
    for key in ("completed", "errors", "duration_seconds", "throughput_rps"):
        if key not in results:
            raise ValueError(f"report results are missing {key!r}")
    if results["completed"] < 1:
        raise ValueError("report recorded no completed requests")
    if results["errors"]:
        raise ValueError(f"report recorded {results['errors']} failed requests")
    if not results["throughput_rps"] > 0:
        raise ValueError(f"throughput is {results['throughput_rps']!r}, expected > 0")
    latency = results.get("latency_ms", {})
    points = [latency.get(f"p{p:.0f}_ms") for p in PERCENTILES]
    if any(value is None for value in points):
        raise ValueError(f"latency summary is missing percentiles: {latency}")
    if not all(earlier <= later for earlier, later in zip(points, points[1:])):
        raise ValueError(f"latency percentiles are not monotone: {points}")
    if not len(report["stream_digest"]) == 64:
        raise ValueError("stream digest is not a sha256 hex string")


#: The only statuses a hardened server may answer a failed request with:
#: 429 (shed by admission control), 503 (transient cluster fault), 504
#: (deadline exceeded).  Anything else under chaos is a bug.
TYPED_FAILURE_STATUSES = frozenset({"429", "503", "504"})


def validate_resilience_report(report: dict, min_availability: float = 0.95) -> None:
    """Raise ``ValueError`` unless a chaos soak's report shows graceful
    degradation: availability at or above *min_availability*, zero untyped
    errors, zero successful responses outliving their deadline, and every
    failure carrying one of the typed overload/fault statuses.

    This is the CI chaos-smoke assertion — unlike :func:`validate_report`
    it tolerates (typed) errors, because a fault-injected run is *supposed*
    to shed and fail some requests; what it must never do is hang, crash
    untyped, or answer dead work.
    """
    resilience = report.get("resilience")
    if resilience is None:
        raise ValueError("report has no resilience block")
    availability = resilience.get("availability", 0.0)
    if availability < min_availability:
        raise ValueError(
            f"availability {availability:.3f} is below the "
            f"{min_availability:.2f} floor"
        )
    if resilience.get("untyped_errors", 0):
        raise ValueError(
            f"{resilience['untyped_errors']} untyped errors "
            "(transport failures or non-JSON bodies) — every failure must "
            "be a typed 429/503/504"
        )
    if resilience.get("deadline_violations", 0):
        raise ValueError(
            f"{resilience['deadline_violations']} successful responses "
            "outlived their deadline — the server answered dead work"
        )
    rogue = {
        status: count
        for status, count in resilience.get("errors_by_status", {}).items()
        if status not in TYPED_FAILURE_STATUSES and count
    }
    if rogue:
        raise ValueError(f"failures with non-overload statuses: {rogue}")
    if report.get("results", {}).get("completed", 0) < 1:
        raise ValueError("report recorded no completed requests")


#: Verdicts the SLO engine may hand a tenant.
SLO_VERDICTS = frozenset({"ok", "at_risk", "breached"})


def validate_slo_report(report: dict, require_exemplar: bool = False) -> None:
    """Raise ``ValueError`` unless the soak's SLO verdict block is well-formed:
    at least one tenant evaluated, every verdict one of
    ``ok``/``at_risk``/``breached``, budgets in ``[0, 1]``, burn rates
    non-negative, and latency percentiles monotone where present.

    With ``require_exemplar`` the report must also carry at least one trace
    exemplar (a traced soak whose histograms captured no ``trace_id`` means
    the exemplar plumbing is broken) — this is the CI SLO-smoke assertion.
    """
    slo = report.get("slo")
    if slo is None:
        raise ValueError("report has no slo block")
    tenants = slo.get("tenants") or {}
    if not tenants:
        raise ValueError("slo block evaluated no tenants")
    for name, tenant in tenants.items():
        verdict = tenant.get("verdict")
        if verdict not in SLO_VERDICTS:
            raise ValueError(f"tenant {name!r} has bad verdict {verdict!r}")
        budget = tenant.get("budget_remaining")
        if budget is None or not 0.0 <= budget <= 1.0:
            raise ValueError(
                f"tenant {name!r} budget_remaining {budget!r} outside [0, 1]"
            )
        if tenant.get("requests", 0) < 1:
            raise ValueError(f"tenant {name!r} was evaluated with no requests")
        for window in ("fast", "slow"):
            burn = tenant.get("windows", {}).get(window, {}).get("burn_rate")
            if burn is None or burn < 0:
                raise ValueError(
                    f"tenant {name!r} {window}-window burn rate {burn!r} "
                    "is missing or negative"
                )
        latency = tenant.get("latency") or {}
        points = [latency.get(f"p{p:.0f}_ms") for p in PERCENTILES]
        if all(value is not None for value in points) and not all(
            earlier <= later for earlier, later in zip(points, points[1:])
        ):
            raise ValueError(
                f"tenant {name!r} latency percentiles are not monotone: {points}"
            )
    if require_exemplar:
        exemplars = report.get("exemplars") or []
        if not exemplars:
            raise ValueError(
                "traced soak captured no latency exemplars — no histogram "
                "bucket recorded a trace_id"
            )
        for exemplar in exemplars:
            if not exemplar.get("trace_id"):
                raise ValueError(f"exemplar without a trace_id: {exemplar}")


def validate_fleet_report(
    report: dict, max_resident_banks: Optional[int] = None
) -> None:
    """Raise ``ValueError`` unless a multi-tenant soak actually exercised the
    fleet pager: cold loads happened, banks were evicted (the residency cap
    bit), and the post-run residency stayed at or under the cap.

    A capped Zipf soak that records zero evictions was either uncapped or
    never left the hot set — a vacuous pass either way — so this gate is
    what makes the CI fleet-smoke meaningful.
    """
    delta = report.get("server_metrics_delta")
    if delta is None:
        raise ValueError("report has no server_metrics_delta block")
    fleet_after = delta.get("fleet_after")
    if fleet_after is None:
        raise ValueError(
            "server metrics have no fleet block — the target is not a "
            "multi-process fleet"
        )
    if delta.get("cold_loads", 0) < 1:
        raise ValueError("fleet soak recorded no cold loads")
    if delta.get("bank_evictions", 0) < 1:
        raise ValueError(
            "fleet soak recorded no bank evictions — the residency cap "
            "never engaged (cap too high for the tenant count?)"
        )
    if max_resident_banks is not None:
        for gauge in ("resident_banks", "dispatchers"):
            value = fleet_after.get(gauge, 0)
            if value > max_resident_banks:
                raise ValueError(
                    f"{gauge} is {value}, above the residency cap "
                    f"{max_resident_banks}"
                )


def format_report(report: dict) -> str:
    """Human-readable summary table of one report."""
    from repro.eval.tables import format_table

    config = report["config"]
    results = report["results"]
    latency = results["latency_ms"]
    traffic = config["traffic"]
    load = (
        f"open @ {traffic['rate_rps']:g} rps"
        if traffic["mode"] == "open"
        else f"closed x{traffic['concurrency']}"
    )
    rows = [
        ["target", config["target"]["kind"]],
        ["traffic", load],
        ["dataset", f"{config['dataset']} ({config['profile']}/{config['split']})"],
        ["requests", f"{results['completed']} ok, {results['errors']} errors"],
        ["duration", f"{results['duration_seconds']:.2f} s"],
        ["throughput", f"{results['throughput_rps']:.1f} req/s"],
        ["latency p50", f"{latency['p50_ms']:.2f} ms"],
        ["latency p95", f"{latency['p95_ms']:.2f} ms"],
        ["latency p99", f"{latency['p99_ms']:.2f} ms"],
        ["latency max", f"{latency['max_ms']:.2f} ms"],
        ["stream digest", report["stream_digest"][:16] + "…"],
    ]
    resilience = report.get("resilience")
    if resilience is not None and (
        results["errors"] or config.get("fault_plan") is not None
    ):
        rows.append(["availability", f"{resilience['availability']:.2%}"])
        breakdown = ", ".join(
            f"{status}×{count}"
            for status, count in resilience["errors_by_status"].items()
        )
        rows.append(["error statuses", breakdown or "none"])
        codes = ", ".join(
            f"{code}×{count}"
            for code, count in resilience["errors_by_code"].items()
        )
        rows.append(["error codes", codes or "none"])
        rows.append(["untyped errors", str(resilience["untyped_errors"])])
        rows.append(
            ["deadline violations", str(resilience["deadline_violations"])]
        )
    if resilience is not None and resilience.get("retries"):
        breakdown = ", ".join(
            f"{status}×{count}"
            for status, count in resilience["retries_by_status"].items()
        )
        rows.append(["client retries", f"{resilience['retries']} ({breakdown})"])
    plan = config.get("fault_plan")
    if plan is not None:
        rows.append(
            ["fault plan", f"seed={plan['seed']} rules={len(plan['rules'])}"]
        )
    delta = report.get("server_metrics_delta")
    if delta is not None:
        lookups = delta["cache_hits"] + delta["cache_misses"]
        hit_rate = delta["cache_hits"] / lookups if lookups else 0.0
        rows.append(["server requests", f"+{delta['requests']}"])
        rows.append(["server samples", f"+{delta['samples']}"])
        rows.append(
            ["server cache", f"+{delta['cache_hits']} hits ({hit_rate:.0%})"]
        )
        rows.append(["server batches", f"+{delta['batches']}"])
        if delta.get("worker_requests"):
            rows.append(
                [
                    "worker shards",
                    f"+{delta['worker_requests']} "
                    f"({delta['worker_busy_seconds']:.2f} s busy)",
                ]
            )
        survived = {
            name: delta[name]
            for name in (
                "respawns",
                "hangs",
                "shard_retries",
                "transport_errors",
                "worker_faults",
                "deadline_skips",
            )
            if delta.get(name)
        }
        if survived:
            rows.append(
                [
                    "faults survived",
                    ", ".join(f"{name}+{count}" for name, count in survived.items()),
                ]
            )
        fleet_after = delta.get("fleet_after")
        if fleet_after is not None:
            cap = fleet_after.get("max_resident")
            rows.append(
                [
                    "fleet paging",
                    f"+{delta.get('cold_loads', 0)} cold loads, "
                    f"+{delta.get('bank_evictions', 0)} evictions, "
                    f"+{delta.get('bank_restores', 0)} restores",
                ]
            )
            rows.append(
                [
                    "fleet residency",
                    f"{fleet_after.get('resident_banks', 0)} resident "
                    f"(peak {fleet_after.get('peak_resident_banks', 0)}, "
                    f"cap {'∞' if cap is None else cap})",
                ]
            )
        shed = {
            name: delta[name]
            for name in ("tenant_rate_limited", "tenant_quota_exceeded")
            if delta.get(name)
        }
        if shed:
            rows.append(
                [
                    "tenant sheds",
                    ", ".join(f"{name}+{count}" for name, count in shed.items()),
                ]
            )
    slo = report.get("slo")
    if slo is not None:
        for name in sorted(slo.get("tenants", {})):
            tenant = slo["tenants"][name]
            windows = tenant.get("windows", {})
            rows.append(
                [
                    f"slo {name}",
                    f"{tenant.get('verdict', '?')} "
                    f"(budget {tenant.get('budget_remaining', 0):.3f}, "
                    f"burn {windows.get('fast', {}).get('burn_rate', 0):.1f}/"
                    f"{windows.get('slow', {}).get('burn_rate', 0):.1f})",
                ]
            )
    exemplars = report.get("exemplars")
    if exemplars:
        rows.append(
            [
                "trace exemplars",
                f"{len(exemplars)} (slowest {exemplars[0]['trace_id']} "
                f"@ {exemplars[0]['value_ms']:.2f} ms)",
            ]
        )
    title = f"Load test (seed={config['seed']})"
    return format_table(["metric", "value"], rows, title=title)


def write_report(path: Union[str, Path], report: dict) -> Path:
    """Write *report* as indented JSON (the ``benchmarks/results`` format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


__all__ = [
    "PERCENTILES",
    "REPORT_VERSION",
    "SLO_VERDICTS",
    "TYPED_FAILURE_STATUSES",
    "build_report",
    "format_report",
    "server_metrics_delta",
    "validate_fleet_report",
    "validate_report",
    "validate_resilience_report",
    "validate_slo_report",
    "write_report",
]
