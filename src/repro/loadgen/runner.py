"""The load generator: drive a target through warm-up and measure phases.

Targets abstract the wire: :class:`InProcessTarget` calls
``ServeApp.predict`` directly (full serving path — cache, micro-batcher,
cluster dispatcher — minus HTTP framing), :class:`HTTPTarget` POSTs to a
live ``repro serve`` endpoint over ``urllib`` (stdlib only).  Both raise
:class:`TargetError` on request failure so the runner can count errors
without aborting the soak.

:func:`run_load_test` is the phase driver: it replays the sampler's
seed-stable stream, discards the warm-up prefix, and measures the rest under
the chosen traffic model.  Latencies are kept exactly (one float per
request) and summarised with ``np.percentile`` — no histogram bucketing —
because a soak run is small enough to afford exactness.

Multi-tenant soaks ride the same machinery: when the sampler carries a
tenant list, each request is sent against its Zipf-assigned model name.  A
:class:`RetryPolicy` makes the client a well-behaved citizen of a shedding
server — typed 429/503 answers are retried after the server's
``Retry-After`` hint (falling back to capped exponential backoff), with
jitter derived deterministically from ``(seed, request index, attempt)`` so
the retry schedule is as reproducible as the traffic itself.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Union

import numpy as np

from repro.loadgen.report import build_report, server_metrics_delta
from repro.loadgen.sampler import RequestSampler
from repro.loadgen.traffic import ClosedLoop, OpenLoop

TrafficModel = Union[OpenLoop, ClosedLoop]


class TargetError(RuntimeError):
    """A request the target refused or failed (counted, not fatal).

    ``status`` carries the HTTP status code when the failure was a typed
    server answer; ``code`` carries the machine-readable error code from the
    response body.  Both stay ``None`` for transport-level failures (socket
    resets, malformed bodies) — the resilience report counts those as
    *untyped* errors, which a chaos soak requires to be zero.

    ``retry_after`` carries the server's back-off hint in seconds (from the
    ``Retry-After`` header or the in-process error object) when one was
    given — :class:`RetryPolicy` honours it over its own backoff.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class InProcessTarget:
    """Send requests straight into a :class:`~repro.serve.server.ServeApp`."""

    kind = "in-process"

    def __init__(
        self,
        app,
        model: Optional[str] = None,
        top_k: int = 1,
        deadline_ms: Optional[float] = None,
    ):
        self.app = app
        self.model = model
        self.top_k = int(top_k)
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)

    def send(self, features: np.ndarray, model: Optional[str] = None) -> dict:
        from repro.serve.server import RequestError

        payload = {"features": features.tolist(), "top_k": self.top_k}
        name = model if model is not None else self.model
        if name is not None:
            payload["model"] = name
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        try:
            return self.app.predict(payload)
        except RequestError as error:
            raise TargetError(
                f"{error.status}: {error}",
                status=error.status,
                code=error.code,
                retry_after=error.retry_after,
            )

    def metrics_snapshot(self) -> Optional[dict]:
        """The app's ``/v1/metrics`` snapshot (for before/after deltas)."""
        return self.app.metrics_snapshot()

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "model": self.model,
            "top_k": self.top_k,
            "deadline_ms": self.deadline_ms,
        }


class HTTPTarget:
    """POST requests to a live ``repro serve`` HTTP endpoint."""

    kind = "http"

    def __init__(
        self,
        url: str,
        model: Optional[str] = None,
        top_k: int = 1,
        timeout: float = 30.0,
        deadline_ms: Optional[float] = None,
    ):
        self.base_url = url.rstrip("/")
        self.url = self.base_url + "/v1/predict"
        self.model = model
        self.top_k = int(top_k)
        self.timeout = float(timeout)
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)

    def send(self, features: np.ndarray, model: Optional[str] = None) -> dict:
        payload = {"features": features.tolist(), "top_k": self.top_k}
        name = model if model is not None else self.model
        if name is not None:
            payload["model"] = name
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        request = urllib.request.Request(
            self.url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            # A typed server answer: pull the machine-readable ``code`` out
            # of the JSON error body (absent on non-JSON bodies) and the
            # ``Retry-After`` back-off hint out of the headers.
            code = None
            try:
                code = json.loads(error.read()).get("code")
            except Exception:
                pass
            retry_after = None
            try:
                header = error.headers.get("Retry-After")
                if header is not None:
                    retry_after = float(header)
            except (TypeError, ValueError):
                pass
            raise TargetError(
                f"{error.code}: {error.reason}",
                status=int(error.code),
                code=code,
                retry_after=retry_after,
            )
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
            raise TargetError(str(error))

    def metrics_snapshot(self) -> Optional[dict]:
        """Fetch ``GET /v1/metrics``; ``None`` when the endpoint is unreachable
        (a missing snapshot must never fail the soak itself)."""
        try:
            with urllib.request.urlopen(
                self.base_url + "/v1/metrics", timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            return None

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "url": self.url,
            "model": self.model,
            "top_k": self.top_k,
            "deadline_ms": self.deadline_ms,
        }


#: Client-side grace added to the deadline before a successful response is
#: counted as a *deadline violation*: the server enforces the deadline up to
#: the moment it starts writing the response, so serialisation + local
#: loopback delivery may land slightly after the instant itself.
DEADLINE_GRACE_SECONDS = 0.1

#: Statuses a retry policy may retry: shed (429) and transient-unavailable
#: (503) answers both say "come back" — 504 means the work is dead, 4xx
#: means the request is wrong, so neither is retried.
RETRYABLE_STATUSES = frozenset({429, 503})


class RetryPolicy:
    """Deterministic client-side retry of typed back-pressure answers.

    Retries 429/503 failures up to ``max_retries`` times, sleeping the
    server's ``Retry-After`` hint when one came back, else
    ``backoff_seconds * 2**attempt``; either is capped at
    ``max_backoff_seconds``.  The sleep is jittered by a factor in
    ``[0.5, 1.0)`` derived from ``sha256(seed, request index, attempt)`` —
    no randomness, so a soak's retry schedule replays exactly from its
    seed, which keeps multi-tenant chaos reports comparable run to run.
    """

    def __init__(
        self,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        max_backoff_seconds: float = 2.0,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_seconds <= 0:
            raise ValueError(f"backoff_seconds must be > 0, got {backoff_seconds}")
        if max_backoff_seconds < backoff_seconds:
            raise ValueError("max_backoff_seconds must be >= backoff_seconds")
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.max_backoff_seconds = float(max_backoff_seconds)
        self.seed = int(seed)

    def should_retry(self, error: TargetError, attempt: int) -> bool:
        return (
            attempt < self.max_retries
            and error.status is not None
            and error.status in RETRYABLE_STATUSES
        )

    def delay(self, error: TargetError, index: int, attempt: int) -> float:
        base = error.retry_after
        if base is None or base <= 0:
            base = self.backoff_seconds * 2**attempt
        base = min(float(base), self.max_backoff_seconds)
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:4], "big") / 2**32
        return base * (0.5 + 0.5 * jitter)

    def describe(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_seconds": self.backoff_seconds,
            "max_backoff_seconds": self.max_backoff_seconds,
        }


class _Phase:
    """Latency/error accumulator for one phase (thread-safe).

    Besides the raw latencies, the phase buckets every failure by HTTP
    status and by machine-readable error code — that breakdown is the heart
    of the resilience report (a chaos soak passes only when every failure is
    a *typed* 429/503/504, never a hang or a stack trace).
    """

    def __init__(self):
        self.latencies: List[float] = []
        self.errors = 0
        self.errors_by_status: dict = {}
        self.errors_by_code: dict = {}
        self.untyped_errors = 0
        self.deadline_violations = 0
        self.retries = 0
        self.retries_by_status: dict = {}
        self._lock = threading.Lock()

    def record(self, seconds: float, deadline_seconds: Optional[float] = None) -> None:
        with self._lock:
            self.latencies.append(seconds)
            if (
                deadline_seconds is not None
                and seconds > deadline_seconds + DEADLINE_GRACE_SECONDS
            ):
                self.deadline_violations += 1

    def record_deadline_violation(self) -> None:
        with self._lock:
            self.deadline_violations += 1

    def record_retry(self, status: Optional[int] = None) -> None:
        """Record one retried attempt (the final outcome is counted
        separately by :meth:`record` / :meth:`record_error`)."""
        with self._lock:
            self.retries += 1
            if status is not None:
                key = str(int(status))
                self.retries_by_status[key] = (
                    self.retries_by_status.get(key, 0) + 1
                )

    def record_error(
        self, status: Optional[int] = None, code: Optional[str] = None
    ) -> None:
        with self._lock:
            self.errors += 1
            if status is None:
                self.untyped_errors += 1
            else:
                key = str(int(status))
                self.errors_by_status[key] = self.errors_by_status.get(key, 0) + 1
            if code is not None:
                self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1


def _send_attempts(
    target,
    features: np.ndarray,
    phase: _Phase,
    index: int = 0,
    model: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> Optional[float]:
    """Send one request (with client-side retries); returns the final
    attempt's duration in seconds, or ``None`` when it ultimately failed.

    Only the last attempt's duration feeds the deadline-violation check —
    the server's deadline clock restarts with each retry, so the back-off
    sleeps must not be charged against it.
    """
    attempt = 0
    while True:
        attempt_started = time.perf_counter()
        try:
            if model is None:
                target.send(features)
            else:
                target.send(features, model=model)
        except TargetError as error:
            if retry is not None and retry.should_retry(error, attempt):
                phase.record_retry(error.status)
                time.sleep(retry.delay(error, index, attempt))
                attempt += 1
                continue
            phase.record_error(status=error.status, code=error.code)
            return None
        return time.perf_counter() - attempt_started


def _send_one(
    target,
    features: np.ndarray,
    phase: _Phase,
    index: int = 0,
    model: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> None:
    deadline_ms = getattr(target, "deadline_ms", None)
    deadline_seconds = None if deadline_ms is None else deadline_ms / 1e3
    started = time.perf_counter()
    last_attempt = _send_attempts(
        target, features, phase, index=index, model=model, retry=retry
    )
    if last_attempt is None:
        return
    # The recorded latency spans every attempt (what the caller felt); the
    # deadline check uses only the winning attempt.
    phase.record(time.perf_counter() - started)
    if (
        deadline_seconds is not None
        and last_attempt > deadline_seconds + DEADLINE_GRACE_SECONDS
    ):
        phase.record_deadline_violation()


def _run_closed(
    target,
    rows,
    concurrency: int,
    phase: _Phase,
    models=None,
    retry: Optional[RetryPolicy] = None,
) -> float:
    """Closed loop: *concurrency* clients drain the request list; returns wall seconds."""
    position = {"next": 0}
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                index = position["next"]
                if index >= len(rows):
                    return
                position["next"] = index + 1
            _send_one(
                target,
                rows[index],
                phase,
                index=index,
                model=None if models is None else models[index],
                retry=retry,
            )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, max(1, len(rows))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started


def _run_open(
    target,
    rows,
    traffic: OpenLoop,
    phase: _Phase,
    models=None,
    retry: Optional[RetryPolicy] = None,
) -> float:
    """Open loop: fire at the Poisson schedule; returns wall seconds.

    Dispatch threads are bounded by ``traffic.max_outstanding``; if the pool
    is saturated the schedule slips (recorded implicitly as added latency
    from the intended arrival time — the coordinated-omission-safe measure).
    """
    offsets = traffic.arrival_offsets(len(rows))
    base = time.perf_counter()

    deadline_ms = getattr(target, "deadline_ms", None)
    deadline_seconds = None if deadline_ms is None else deadline_ms / 1e3

    def fire(row, intended: float, index: int, model: Optional[str]):
        last_attempt = _send_attempts(
            target, row, phase, index=index, model=model, retry=retry
        )
        if last_attempt is None:
            return
        finished = time.perf_counter()
        # Latency from *intended arrival*, so schedule slip (server backlog)
        # is charged to the server, not silently forgiven.  The deadline
        # check uses the final attempt's send→response time — the server's
        # deadline clock starts when the request reaches it, not at the
        # intended arrival — so neither client-side slip nor retry back-off
        # can fake a violation.
        phase.record(finished - base - intended)
        if (
            deadline_seconds is not None
            and last_attempt > deadline_seconds + DEADLINE_GRACE_SECONDS
        ):
            phase.record_deadline_violation()

    with ThreadPoolExecutor(
        max_workers=traffic.max_outstanding, thread_name_prefix="loadgen"
    ) as pool:
        futures = []
        for index, (row, offset) in enumerate(zip(rows, offsets)):
            delay = base + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            model = None if models is None else models[index]
            futures.append(pool.submit(fire, row, offset, index, model))
        for future in futures:
            future.result()
    return time.perf_counter() - base


def run_load_test(
    target,
    sampler: RequestSampler,
    traffic: TrafficModel,
    num_requests: int = 200,
    warmup_requests: int = 20,
    fault_plan=None,
    max_retries: int = 0,
    retry_backoff_seconds: float = 0.05,
) -> dict:
    """Run warm-up then measure phases; return a JSON-ready report.

    The sampler stream covers ``warmup_requests + num_requests`` rows; the
    warm-up prefix exercises the target (cache fill, LUT page-in, worker
    spin-up) but contributes nothing to the statistics.  Closed-loop warm-up
    runs at the same concurrency as the measure phase; open-loop warm-up
    runs closed at the outstanding-request cap (warming at the Poisson rate
    would just prolong the test).

    When the sampler carries a tenant list each request is routed to its
    Zipf-assigned model.  ``max_retries > 0`` enables client-side retries of
    typed 429/503 responses (see :class:`RetryPolicy`); retried requests
    count once in the latency statistics but the per-status retry tallies
    land in the report.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if warmup_requests < 0:
        raise ValueError(f"warmup_requests must be >= 0, got {warmup_requests}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    total = warmup_requests + num_requests
    rows = [row for _, row in sampler.stream(total)]
    warmup_rows, measure_rows = rows[:warmup_requests], rows[warmup_requests:]
    models = sampler.model_names(total)
    warmup_models = None if models is None else models[:warmup_requests]
    measure_models = None if models is None else models[warmup_requests:]
    retry = None
    if max_retries > 0:
        retry = RetryPolicy(
            max_retries=max_retries,
            backoff_seconds=retry_backoff_seconds,
            seed=sampler.seed,
        )

    warmup_phase = _Phase()
    if warmup_rows:
        warmup_concurrency = (
            traffic.concurrency
            if isinstance(traffic, ClosedLoop)
            else traffic.max_outstanding
        )
        _run_closed(
            target,
            warmup_rows,
            warmup_concurrency,
            warmup_phase,
            models=warmup_models,
            retry=retry,
        )

    # Server-side view: snapshot the target's metrics around the measure
    # phase so the report can say what the *server* saw (cache hits, batch
    # coalescing, worker busy time) — not just what the clients felt.
    metrics_before = _safe_metrics(target)

    measure_phase = _Phase()
    if isinstance(traffic, ClosedLoop):
        duration = _run_closed(
            target,
            measure_rows,
            traffic.concurrency,
            measure_phase,
            models=measure_models,
            retry=retry,
        )
    else:
        duration = _run_open(
            target,
            measure_rows,
            traffic,
            measure_phase,
            models=measure_models,
            retry=retry,
        )

    metrics_after = _safe_metrics(target)
    server_metrics = None
    if metrics_before is not None and metrics_after is not None:
        server_metrics = server_metrics_delta(metrics_before, metrics_after)

    slo = exemplars = None
    if metrics_after is not None:
        slo = metrics_after.get("slo")
        exemplars = _collect_exemplars(metrics_after)

    return build_report(
        target=target.describe(),
        traffic=traffic.describe(),
        sampler=sampler,
        num_requests=num_requests,
        warmup_requests=warmup_requests,
        warmup_errors=warmup_phase.errors,
        latencies=measure_phase.latencies,
        errors=measure_phase.errors,
        duration_seconds=duration,
        server_metrics=server_metrics,
        errors_by_status=measure_phase.errors_by_status,
        errors_by_code=measure_phase.errors_by_code,
        untyped_errors=measure_phase.untyped_errors,
        deadline_violations=measure_phase.deadline_violations,
        fault_plan=None if fault_plan is None else fault_plan.describe(),
        retries=measure_phase.retries,
        retries_by_status=measure_phase.retries_by_status,
        retry_policy=None if retry is None else retry.describe(),
        slo=slo,
        exemplars=exemplars,
    )


def _collect_exemplars(snapshot: dict) -> Optional[list]:
    """Latency-histogram trace exemplars from a ``/v1/metrics`` snapshot,
    slowest first — the report's proof that the exemplar plumbing linked
    slow buckets back to trace IDs during the soak."""
    exemplars = []
    for name, model in snapshot.get("models", {}).items():
        for bucket in model.get("latency", {}).get("buckets", []):
            exemplar = bucket.get("exemplar")
            if exemplar is not None:
                exemplars.append(
                    {
                        "model": name,
                        "le": bucket.get("le"),
                        "trace_id": exemplar.get("trace_id"),
                        "value_ms": float(exemplar.get("value", 0.0)) * 1e3,
                    }
                )
    if not exemplars:
        return None
    exemplars.sort(key=lambda row: row["value_ms"], reverse=True)
    return exemplars


def _safe_metrics(target) -> Optional[dict]:
    snapshot = getattr(target, "metrics_snapshot", None)
    if snapshot is None:
        return None
    try:
        return snapshot()
    except Exception:  # pragma: no cover - target without a serving app
        return None


__all__ = [
    "HTTPTarget",
    "InProcessTarget",
    "RetryPolicy",
    "TargetError",
    "run_load_test",
]
