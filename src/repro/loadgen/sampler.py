"""Deterministic request sampling from registered datasets.

A soak test is only debuggable if the traffic is reproducible: the same seed
must produce the same request sequence on every machine, every run.
:class:`RequestSampler` guarantees that by deriving the whole index stream
from the seed *statelessly* — ``indices(n)`` is a pure function of
``(seed, n, rows)``, not of how many requests were drawn before — and by
riding the dataset registry's own seeded generators for the feature rows.
``digest()`` condenses stream + payload bytes into one hex string so reports
can prove (and tests can assert) seed stability.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


class RequestSampler:
    """A seed-stable stream of single-request feature rows.

    Parameters
    ----------
    dataset:
        A registered dataset name (see ``repro.datasets.registry``); the
        requests are drawn from its *test* split by default, which is the
        split a deployed model would actually see.
    profile:
        Dataset size profile (``tiny`` / ``small`` / ``full``).
    split:
        ``"test"`` (default) or ``"train"``.
    seed:
        Seeds both the synthetic dataset generator and the index stream.
    models:
        Optional tenant (model-name) list for multi-tenant soaks: each
        request is additionally assigned a tenant, Zipf-distributed so the
        first names are hot and the tail is cold — the traffic shape that
        actually exercises a fleet's bank paging.  ``None`` (default)
        leaves requests tenant-less.
    zipf_s:
        Zipf exponent for the tenant distribution; larger is more skewed
        (weight of rank ``r`` is proportional to ``r**-s``).
    """

    def __init__(
        self,
        dataset: str = "ucihar",
        profile: str = "tiny",
        split: str = "test",
        seed: int = 0,
        models: Optional[Sequence[str]] = None,
        zipf_s: float = 1.1,
    ):
        if split not in ("test", "train"):
            raise ValueError(f"split must be 'test' or 'train', got {split!r}")
        from repro.datasets.registry import get_dataset

        data = get_dataset(dataset, profile=profile, seed=seed)
        features = data.test_features if split == "test" else data.train_features
        self.dataset = data.name
        self.profile = profile
        self.split = split
        self.seed = int(seed)
        self._init_models(models, zipf_s)
        self.features = np.ascontiguousarray(features, dtype=np.float64)
        self.train_features = np.ascontiguousarray(
            data.train_features, dtype=np.float64
        )
        self.train_labels = np.asarray(data.train_labels)

    @classmethod
    def from_arrays(
        cls,
        features: np.ndarray,
        seed: int = 0,
        models: Optional[Sequence[str]] = None,
        zipf_s: float = 1.1,
    ) -> "RequestSampler":
        """Build a sampler over explicit feature rows (tests, custom corpora)."""
        sampler = cls.__new__(cls)
        sampler.dataset = "arrays"
        sampler.profile = "custom"
        sampler.split = "custom"
        sampler.seed = int(seed)
        sampler._init_models(models, zipf_s)
        sampler.features = np.ascontiguousarray(
            np.atleast_2d(features), dtype=np.float64
        )
        sampler.train_features = sampler.features
        sampler.train_labels = np.zeros(len(sampler.features), dtype=np.int64)
        return sampler

    def _init_models(
        self, models: Optional[Sequence[str]], zipf_s: float
    ) -> None:
        if models is not None and not models:
            raise ValueError("models must be a non-empty sequence or None")
        if zipf_s <= 0:
            raise ValueError(f"zipf_s must be > 0, got {zipf_s}")
        self.models: Optional[List[str]] = (
            None if models is None else [str(name) for name in models]
        )
        self.zipf_s = float(zipf_s)

    # ----------------------------------------------------------------- stream
    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    def indices(self, num_requests: int) -> np.ndarray:
        """The first *num_requests* sampled row indices (pure in the seed)."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {num_requests}")
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, self.features.shape[0], size=int(num_requests))

    def stream(self, num_requests: int) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(request_index, feature_row)`` pairs, seed-stably."""
        for position, row_index in enumerate(self.indices(num_requests)):
            yield position, self.features[row_index]

    def model_indices(self, num_requests: int) -> Optional[np.ndarray]:
        """Zipf-distributed tenant index per request, pure in the seed.

        A separate generator (derived from ``seed`` but independent of the
        row stream) assigns each request a tenant rank, so adding ``models``
        to an existing soak configuration changes *which tenant* each
        request hits without perturbing *what* it sends.  ``None`` when the
        sampler has no tenant list.
        """
        if self.models is None:
            return None
        if num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {num_requests}")
        ranks = np.arange(1, len(self.models) + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        weights /= weights.sum()
        rng = np.random.default_rng([self.seed, 0x21F])
        return rng.choice(len(self.models), size=int(num_requests), p=weights)

    def model_names(self, num_requests: int) -> Optional[List[str]]:
        """The tenant name per request (``None`` without a tenant list)."""
        indices = self.model_indices(num_requests)
        if indices is None:
            return None
        return [self.models[index] for index in indices]

    def digest(self, num_requests: Optional[int] = None) -> str:
        """Hex digest of the request stream (indices + payload bytes).

        Two samplers with the same configuration produce the same digest on
        any platform; reports embed it so a regressed or non-deterministic
        stream is caught by comparing strings.  A tenant list folds the
        per-request tenant assignment in too.
        """
        hasher = hashlib.sha256()
        hasher.update(
            f"{self.dataset}/{self.profile}/{self.split}/{self.seed}".encode()
        )
        if self.models is not None:
            hasher.update(f"|{','.join(self.models)}|{self.zipf_s}".encode())
        if num_requests is not None:
            indices = self.indices(num_requests)
            hasher.update(indices.tobytes())
            hasher.update(np.ascontiguousarray(self.features[indices]).tobytes())
            model_indices = self.model_indices(num_requests)
            if model_indices is not None:
                hasher.update(model_indices.tobytes())
        else:
            hasher.update(self.features.tobytes())
        return hasher.hexdigest()


__all__ = ["RequestSampler"]
