"""Traffic models: open-loop Poisson arrivals and closed-loop concurrency.

The distinction matters for what a soak test can claim:

* **closed loop** keeps ``concurrency`` requests outstanding — each client
  waits for its response before sending the next.  Throughput converges to
  the server's ceiling, but latency is flattered because the load *backs
  off* exactly when the server slows down (coordinated omission).
* **open loop** fires requests at the arrival times of a Poisson process
  regardless of responses, like independent users would.  Latency then
  includes the queueing delay a real caller experiences when the server
  falls behind, which is the number that matters at p99.

Both models are seed-deterministic: the open-loop arrival schedule is a pure
function of ``(rate, seed, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OpenLoop:
    """Poisson arrivals at *rate_rps* requests/second (seed-deterministic)."""

    rate_rps: float
    seed: int = 0
    #: Cap on concurrently outstanding requests; beyond it the generator
    #: blocks (and reports the backlog) instead of spawning unbounded threads.
    max_outstanding: int = 64

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )

    def arrival_offsets(self, num_requests: int) -> np.ndarray:
        """Seconds from test start to each arrival (non-decreasing)."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {num_requests}")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(scale=1.0 / self.rate_rps, size=int(num_requests))
        return np.cumsum(gaps)

    def describe(self) -> dict:
        return {"mode": "open", "rate_rps": self.rate_rps, "seed": self.seed}


@dataclass(frozen=True)
class ClosedLoop:
    """*concurrency* clients, each sending its next request on response."""

    concurrency: int = 4

    def __post_init__(self):
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")

    def describe(self) -> dict:
        return {"mode": "closed", "concurrency": self.concurrency}


__all__ = ["ClosedLoop", "OpenLoop"]
