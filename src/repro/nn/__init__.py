"""NumPy neural-network substrate.

The paper trains its single-layer BNN with PyTorch; this package provides the
equivalent machinery from scratch so the reproduction has no deep-learning
dependency: parameterised layers (:class:`Linear`, :class:`BinaryLinear` with
latent weights and a straight-through estimator, :class:`Dropout`), the
softmax cross-entropy loss, first-order optimisers (:class:`SGD`,
:class:`Momentum`, :class:`Adam`), learning-rate schedules, and weight
initialisers.

Only what the LeHDC model needs is implemented, but the pieces are generic:
the tests use them to train small multi-class linear models end-to-end and
check gradients numerically.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import BinaryLinear, Dropout, Linear, Sequential
from repro.nn.losses import (
    SoftmaxCrossEntropy,
    cross_entropy_from_logits,
    one_hot,
    softmax,
)
from repro.nn.optim import SGD, Adam, Momentum, Optimizer, clip_gradient_norm
from repro.nn.schedules import ConstantSchedule, ReduceOnLossIncrease, StepDecay
from repro.nn.init import normal_init, scaled_uniform_init, sign_init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "BinaryLinear",
    "Dropout",
    "Sequential",
    "softmax",
    "one_hot",
    "cross_entropy_from_logits",
    "SoftmaxCrossEntropy",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "clip_gradient_norm",
    "ConstantSchedule",
    "StepDecay",
    "ReduceOnLossIncrease",
    "normal_init",
    "scaled_uniform_init",
    "sign_init",
]
