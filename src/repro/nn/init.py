"""Weight initialisers.

LeHDC's latent class-hypervector matrix can be initialised three ways, all of
which appear in the BNN literature the paper draws on:

* :func:`scaled_uniform_init` - small uniform values (BinaryConnect-style),
  so early sign flips are cheap;
* :func:`normal_init` - Gaussian values, the common dense-layer default;
* :func:`sign_init` - start from an existing bipolar matrix, e.g. the
  baseline HDC centroids (Eq. 2), which warm-starts training from the
  classical HDC solution.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dispatch import float_dtype
from repro.utils.rng import SeedLike, ensure_rng


def scaled_uniform_init(
    shape, scale: float = 0.01, seed: SeedLike = None, dtype=None
) -> np.ndarray:
    """Uniform values in ``[-scale, +scale]``.

    *dtype* defaults to the kernel layer's float policy dtype
    (:func:`repro.kernels.dispatch.float_dtype`, ``float32`` by default).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = ensure_rng(seed)
    values = rng.uniform(-scale, scale, size=shape)
    return values.astype(float_dtype() if dtype is None else dtype, copy=False)


def normal_init(shape, std: float = 0.01, seed: SeedLike = None, dtype=None) -> np.ndarray:
    """Zero-mean Gaussian values with standard deviation *std*."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    rng = ensure_rng(seed)
    values = rng.normal(0.0, std, size=shape)
    return values.astype(float_dtype() if dtype is None else dtype, copy=False)


def sign_init(bipolar: np.ndarray, magnitude: float = 0.01, dtype=None) -> np.ndarray:
    """Latent weights whose signs equal *bipolar* with small magnitude.

    Binarising the returned matrix recovers *bipolar* exactly, so a LeHDC model
    initialised this way starts from the given class hypervectors (typically
    the baseline centroids) and improves from there.
    """
    if magnitude <= 0:
        raise ValueError(f"magnitude must be positive, got {magnitude}")
    bipolar = np.asarray(bipolar)
    if not np.all(np.isin(bipolar, (-1, 1))):
        raise ValueError("sign_init expects entries in {+1, -1}")
    target = float_dtype() if dtype is None else np.dtype(dtype)
    return bipolar.astype(target) * target.type(magnitude)


__all__ = ["scaled_uniform_init", "normal_init", "sign_init"]
