"""Layers: dense linear, binary linear with straight-through estimator, dropout.

:class:`BinaryLinear` is the heart of the LeHDC reproduction.  Following
Sec. 4 (and the BinaryConnect / Adam-for-BNN recipe the paper cites), it keeps
a *latent* real-valued weight matrix ``C_nb`` that accumulates small
gradients, while the forward pass uses its binarisation ``C = sgn(C_nb)``
(Eq. 8).  The backward pass uses the straight-through estimator: gradients
w.r.t. the binary weights are applied to the latent weights unchanged
(optionally masked where ``|C_nb|`` exceeds a clip threshold).

Dtype policy: all float compute goes through :mod:`repro.kernels.linear`.
Parameters are initialised in the policy dtype (``float32`` by default — the
latent weights of a BNN need nowhere near 53 bits of mantissa) and integer
inputs are cast to it once; arrays that are already floating point are never
silently up-cast, so a ``float32`` training step stays ``float32`` end to
end.  Pass ``dtype=np.float64`` to a layer (or set the policy) when full
precision is required, e.g. for finite-difference gradient checks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.kernels.linear import as_float, matmul, sign_bipolar
from repro.nn.init import scaled_uniform_init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


class Linear(Module):
    """Standard dense layer ``y = x W + b`` (bias optional).

    Used by the non-binary HDC equivalence (the "perceptron view" of
    Sec. 3.1) and by the numerical-gradient tests that validate the substrate.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init_scale: float = 0.01,
        seed: SeedLike = None,
        dtype=None,
    ):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.weight = Parameter(
            scaled_uniform_init(
                (self.in_features, self.out_features),
                scale=init_scale,
                seed=seed,
                dtype=dtype,
            ),
            name="linear.weight",
        )
        self.bias = (
            Parameter(
                np.zeros(self.out_features, dtype=self.weight.value.dtype),
                name="linear.bias",
            )
            if bias
            else None
        )
        self._cached_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = as_float(inputs)
        self._cached_input = inputs
        outputs = matmul(inputs, self.weight.value)
        if self.bias is not None:
            outputs = outputs + self.bias.value
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise RuntimeError("forward() must be called before backward()")
        grad_output = as_float(grad_output)
        self.weight.add_grad(matmul(self._cached_input.T, grad_output))
        if self.bias is not None:
            self.bias.add_grad(grad_output.sum(axis=0))
        return matmul(grad_output, self.weight.value.T)


class BinaryLinear(Module):
    """Binary-weight dense layer with latent weights and an STE backward pass.

    Parameters
    ----------
    in_features, out_features:
        Layer shape; for LeHDC these are ``D`` and the number of classes ``K``.
    latent_clip:
        If not ``None``, latent weights are clipped to ``[-latent_clip,
        +latent_clip]`` after every optimiser step (classic BinaryConnect
        behaviour) and gradients are masked outside the clip range.  ``None``
        disables clipping (the paper's formulation relies on weight decay to
        bound the latent weights instead); both modes are exposed so the
        ablation benchmark can compare them.
    init_scale:
        Magnitude of the random uniform latent-weight initialisation.
    seed:
        Seed or generator for the initialisation.
    dtype:
        Latent-weight dtype; defaults to the kernel layer's policy dtype.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        latent_clip: Optional[float] = 1.0,
        init_scale: float = 0.01,
        seed: SeedLike = None,
        dtype=None,
    ):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        if latent_clip is not None and latent_clip <= 0:
            raise ValueError(f"latent_clip must be positive or None, got {latent_clip}")
        self.latent_clip = latent_clip
        self.weight = Parameter(
            scaled_uniform_init(
                (self.in_features, self.out_features),
                scale=init_scale,
                seed=seed,
                dtype=dtype,
            ),
            name="binary_linear.latent_weight",
        )
        self._cached_input: Optional[np.ndarray] = None
        self._cached_binary: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- core
    @property
    def binary_weight(self) -> np.ndarray:
        """The binarised weights ``sgn(C_nb)`` (Eq. 8); zeros map to +1."""
        return sign_bipolar(self.weight.value)

    def set_latent_from_bipolar(self, bipolar: np.ndarray, magnitude: float = 0.01) -> None:
        """Warm-start the latent weights from an existing bipolar matrix.

        The matrix must have shape ``(in_features, out_features)``; its signs
        become the initial binary weights.  The latent dtype is preserved.
        """
        bipolar = np.asarray(bipolar)
        if bipolar.shape != self.weight.value.shape:
            raise ValueError(
                f"bipolar shape {bipolar.shape} does not match weight shape "
                f"{self.weight.value.shape}"
            )
        if not np.all(np.isin(bipolar, (-1.0, 1.0))):
            raise ValueError("expected entries in {+1, -1}")
        dtype = self.weight.value.dtype
        self.weight.value = bipolar.astype(dtype) * dtype.type(magnitude)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = as_float(inputs)
        self._cached_input = inputs
        self._cached_binary = self.binary_weight
        return matmul(inputs, self._cached_binary)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise RuntimeError("forward() must be called before backward()")
        grad_output = as_float(grad_output)
        grad_weight = matmul(self._cached_input.T, grad_output)
        if self.latent_clip is not None:
            # Straight-through estimator with saturation: once a latent weight
            # has left the clip range, further pushes in the same direction
            # are ignored, which stabilises training.
            inside = np.abs(self.weight.value) <= self.latent_clip
            grad_weight = grad_weight * inside
        self.weight.add_grad(grad_weight)
        # Gradient w.r.t. the input flows through the *binary* weights, which
        # is exactly what the chain rule gives for the forward computation.
        return matmul(grad_output, self._cached_binary.T)

    def clip_latent(self) -> None:
        """Clip latent weights into ``[-latent_clip, +latent_clip]`` (no-op if disabled)."""
        if self.latent_clip is not None:
            np.clip(
                self.weight.value,
                -self.latent_clip,
                self.latent_clip,
                out=self.weight.value,
            )


class Dropout(Module):
    """Inverted dropout on the layer input.

    The paper applies dropout to the (very wide) encoded hypervector during
    training to stop the class hypervectors from over-fitting (Sec. 4).  At
    evaluation time this layer is the identity.  The mask is materialised in
    the input's dtype so a float32 forward stays float32.
    """

    def __init__(self, rate: float, seed: SeedLike = None):
        super().__init__()
        self.rate = check_probability(rate, "rate", inclusive_one=False)
        self._rng = ensure_rng(seed)
        self._cached_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = as_float(inputs)
        if not self.training or self.rate == 0.0:
            self._cached_mask = None
            return inputs
        keep_probability = 1.0 - self.rate
        mask = self._rng.random(inputs.shape) < keep_probability
        self._cached_mask = mask.astype(inputs.dtype) / inputs.dtype.type(
            keep_probability
        )
        return inputs * self._cached_mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        if self._cached_mask is None:
            return grad_output
        return grad_output * self._cached_mask


class Sequential(Module):
    """A simple container chaining modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules: List[Module] = list(modules)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        outputs = inputs
        for module in self.modules:
            outputs = module.forward(outputs)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad


__all__ = ["Linear", "BinaryLinear", "Dropout", "Sequential"]
