"""Softmax, one-hot encoding, and the cross-entropy training loss (Eq. 9-10).

The loss used by LeHDC is softmax cross-entropy over the BNN outputs
``o = En(x) C`` with one-hot targets; the L2 weight-decay term of Eq. 10 is
handled by the optimiser (decoupled) or by the trainer adding ``lambda * C_nb``
to the gradient (coupled), so it does not appear here.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.linear import as_float


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis* (dtype-preserving for floats)."""
    logits = as_float(logits)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """One-hot encode integer *labels* into an ``(n, num_classes)`` float matrix.

    *dtype* defaults to the kernel layer's float policy dtype.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if np.any(labels < 0) or np.any(labels >= num_classes):
        raise ValueError(f"labels must be in [0, {num_classes})")
    if dtype is None:
        from repro.kernels.dispatch import float_dtype

        dtype = float_dtype()
    encoded = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cross_entropy_from_logits(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` raw scores.
    labels:
        ``(batch,)`` integer class labels.

    Returns
    -------
    loss:
        Scalar mean cross-entropy.
    grad:
        ``(batch, classes)`` gradient of the mean loss w.r.t. the logits,
        i.e. ``(softmax(logits) - onehot(labels)) / batch``.
    """
    logits = as_float(logits)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels length {labels.shape[0]} does not match batch {logits.shape[0]}"
        )
    batch, num_classes = logits.shape
    probabilities = softmax(logits, axis=1)
    # Clip to avoid log(0) on confidently wrong predictions.
    clipped = np.clip(probabilities[np.arange(batch), labels], 1e-12, 1.0)
    loss = float(-np.log(clipped).mean())
    # The one-hot targets follow the logits' dtype so the returned gradient
    # does not up-cast the backward pass.
    grad = (probabilities - one_hot(labels, num_classes, dtype=probabilities.dtype)) / batch
    return loss, grad


class SoftmaxCrossEntropy:
    """Object-style wrapper around :func:`cross_entropy_from_logits`.

    Keeps the last forward's gradient so ``backward()`` can be called without
    re-passing the inputs, mirroring the layer API used in the trainer loop.
    """

    def __init__(self) -> None:
        self._cached_grad: np.ndarray = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Compute the mean loss and cache its gradient."""
        loss, grad = cross_entropy_from_logits(logits, labels)
        self._cached_grad = grad
        return loss

    def backward(self) -> np.ndarray:
        """Return the cached gradient of the last :meth:`forward` call."""
        if self._cached_grad is None:
            raise RuntimeError("forward() must be called before backward()")
        return self._cached_grad

    __call__ = forward


__all__ = ["softmax", "one_hot", "cross_entropy_from_logits", "SoftmaxCrossEntropy"]
