"""Parameter container and module base class.

A :class:`Parameter` couples a value array with its gradient accumulator.  A
:class:`Module` is anything with parameters, a ``forward`` and a ``backward``;
modules can be nested and expose all parameters of their children through
:meth:`Module.parameters`, which is the list optimisers consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.kernels.linear import as_float


class Parameter:
    """A trainable array plus its gradient.

    Attributes
    ----------
    value:
        The current parameter value.  Floating input keeps its dtype;
        anything else is cast to the kernel layer's policy dtype
        (:func:`repro.kernels.dispatch.float_dtype`, ``float32`` by default).
    grad:
        The gradient accumulated by the most recent backward pass, or ``None``
        if no backward pass has run since the last :meth:`zero_grad`.
    name:
        Optional human-readable name used in error messages and debugging.
    """

    def __init__(self, value: np.ndarray, name: str = "parameter"):
        self.value = as_float(value)
        self.grad: Optional[np.ndarray] = None
        self.name = name

    @property
    def shape(self):
        """Shape of the underlying value array."""
        return self.value.shape

    def zero_grad(self) -> None:
        """Forget the accumulated gradient."""
        self.grad = None

    def add_grad(self, grad: np.ndarray) -> None:
        """Accumulate *grad* in the parameter's dtype (summing if present)."""
        grad = np.asarray(grad, dtype=self.value.dtype)
        if grad.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.value.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register parameters as attributes of type :class:`Parameter`
    (or register child modules as attributes of type :class:`Module`) and
    implement :meth:`forward` and :meth:`backward`.  Training/eval mode is
    tracked so layers like dropout can switch behaviour.
    """

    def __init__(self) -> None:
        self.training = True

    # -------------------------------------------------------------- params
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, depth-first."""
        found: List[Parameter] = []
        for attribute in vars(self).values():
            if isinstance(attribute, Parameter):
                found.append(attribute)
            elif isinstance(attribute, Module):
                found.extend(attribute.parameters())
            elif isinstance(attribute, (list, tuple)):
                for item in attribute:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        found.append(item)
        return found

    def named_parameters(self) -> Dict[str, Parameter]:
        """Parameters keyed by their ``name`` attribute (for checkpoints/tests)."""
        return {parameter.name: parameter for parameter in self.parameters()}

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ---------------------------------------------------------------- mode
    def train(self) -> "Module":
        """Switch this module and its children to training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch this module and its children to evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for attribute in vars(self).values():
            if isinstance(attribute, Module):
                attribute._set_mode(training)
            elif isinstance(attribute, (list, tuple)):
                for item in attribute:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # ------------------------------------------------------------- compute
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the module output for *inputs*."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate *grad_output* back, accumulating parameter gradients.

        Returns the gradient with respect to the module input.
        """
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)


__all__ = ["Parameter", "Module"]
