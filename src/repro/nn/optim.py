"""First-order optimisers: SGD, SGD with momentum, and Adam.

The paper selects Adam because it outperforms SGD-based algorithms on BNN
optimisation (Sec. 4, citing Liu et al. 2021); SGD and momentum are provided
as ablation comparators.  Weight decay is implemented in its *decoupled* form
(applied directly to the parameter value, AdamW-style) and in the classical
*coupled* form (added to the gradient), selectable per optimiser, because
Eq. 10 writes the L2 penalty as part of the loss (coupled) while most BNN
code-bases apply it decoupled; the ablation bench compares the two.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


def clip_gradient_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most *max_norm*.

    Returns the pre-clipping norm (useful for logging).  Parameters whose
    gradient is ``None`` are skipped.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad *= scale
    return total


class Optimizer:
    """Base optimiser: holds the parameter list, learning rate, weight decay.

    All optimiser state (momentum/Adam moments) is allocated with
    ``np.zeros_like`` and every update mixes only Python scalars into the
    arrays, so the step runs entirely in each parameter's own dtype — a
    ``float32`` parameter (the kernel layer's default policy) is never
    silently up-cast to ``float64`` during training.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = True,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.decoupled_weight_decay = bool(decoupled_weight_decay)
        self.step_count = 0

    # ------------------------------------------------------------------ api
    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        self.step_count += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay and not self.decoupled_weight_decay:
                grad = grad + self.weight_decay * parameter.value
            update = self._compute_update(parameter, grad)
            parameter.value -= update
            if self.weight_decay and self.decoupled_weight_decay:
                parameter.value -= (
                    self.learning_rate * self.weight_decay * parameter.value
                )

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def set_learning_rate(self, learning_rate: float) -> None:
        """Change the learning rate (used by LR schedules)."""
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    def _compute_update(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _compute_update(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        return self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = True,
    ):
        super().__init__(
            parameters, learning_rate, weight_decay, decoupled_weight_decay
        )
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def _compute_update(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        key = id(parameter)
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(parameter.value)
        velocity = self.momentum * velocity + grad
        self._velocity[key] = velocity
        return self.learning_rate * velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction.

    This is the optimiser LeHDC uses to accumulate small gradients on the
    latent (non-binary) class hypervectors.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = True,
    ):
        super().__init__(
            parameters, learning_rate, weight_decay, decoupled_weight_decay
        )
        for name, value in (("beta1", beta1), ("beta2", beta2)):
            if not (0.0 <= value < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}
        self._per_parameter_step: Dict[int, int] = {}

    def _compute_update(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        key = id(parameter)
        first = self._first_moment.get(key)
        second = self._second_moment.get(key)
        if first is None:
            first = np.zeros_like(parameter.value)
            second = np.zeros_like(parameter.value)
        step = self._per_parameter_step.get(key, 0) + 1
        first = self.beta1 * first + (1.0 - self.beta1) * grad
        second = self.beta2 * second + (1.0 - self.beta2) * (grad**2)
        self._first_moment[key] = first
        self._second_moment[key] = second
        self._per_parameter_step[key] = step
        first_hat = first / (1.0 - self.beta1**step)
        second_hat = second / (1.0 - self.beta2**step)
        return self.learning_rate * first_hat / (np.sqrt(second_hat) + self.epsilon)


__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "clip_gradient_norm"]
