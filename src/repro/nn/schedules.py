"""Learning-rate schedules.

The paper states "the learning rate will decay during the training, if the
training loss increasing is detected" (Sec. 5.2).  That behaviour is
:class:`ReduceOnLossIncrease`.  A constant schedule and a step decay are also
provided for ablations and for the comparison classifiers.
"""

from __future__ import annotations

from repro.nn.optim import Optimizer
from repro.utils.validation import check_positive_int


class ConstantSchedule:
    """Keeps the learning rate fixed; exists so trainers can treat schedules uniformly."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer

    def step(self, epoch_loss: float) -> float:
        """No-op; returns the current learning rate."""
        return self.optimizer.learning_rate


class StepDecay:
    """Multiply the learning rate by *factor* every *every* epochs."""

    def __init__(self, optimizer: Optimizer, every: int = 50, factor: float = 0.5):
        self.optimizer = optimizer
        self.every = check_positive_int(every, "every")
        if not (0.0 < factor < 1.0):
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.factor = factor
        self._epoch = 0

    def step(self, epoch_loss: float) -> float:
        """Advance one epoch; decay if the boundary is reached. Returns the new LR."""
        self._epoch += 1
        if self._epoch % self.every == 0:
            self.optimizer.set_learning_rate(self.optimizer.learning_rate * self.factor)
        return self.optimizer.learning_rate


class ReduceOnLossIncrease:
    """Decay the learning rate whenever the epoch training loss goes up.

    Parameters
    ----------
    optimizer:
        The optimiser whose learning rate is adjusted in place.
    factor:
        Multiplicative decay applied on a detected increase.
    patience:
        Number of consecutive increasing epochs tolerated before decaying.
    min_learning_rate:
        Floor below which the schedule stops decaying.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 1,
        min_learning_rate: float = 1e-6,
    ):
        if not (0.0 < factor < 1.0):
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if min_learning_rate <= 0:
            raise ValueError(
                f"min_learning_rate must be positive, got {min_learning_rate}"
            )
        self.optimizer = optimizer
        self.factor = factor
        self.patience = check_positive_int(patience, "patience")
        self.min_learning_rate = min_learning_rate
        self._best_loss = float("inf")
        self._bad_epochs = 0

    def step(self, epoch_loss: float) -> float:
        """Report the epoch loss; decay if it increased for *patience* epochs.

        Returns the (possibly updated) learning rate.
        """
        if epoch_loss < self._best_loss:
            self._best_loss = epoch_loss
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
            if self._bad_epochs >= self.patience:
                new_rate = max(
                    self.optimizer.learning_rate * self.factor, self.min_learning_rate
                )
                self.optimizer.set_learning_rate(new_rate)
                self._bad_epochs = 0
        return self.optimizer.learning_rate


__all__ = ["ConstantSchedule", "StepDecay", "ReduceOnLossIncrease"]
