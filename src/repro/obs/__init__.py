"""repro.obs — end-to-end observability for the serving/cluster stack.

Capabilities, each usable on its own and composed by the serving layer:

* :mod:`repro.obs.trace` — request-scoped tracing: every sampled request
  gets a trace ID and a span tree (validate → cache lookup → queue wait →
  dispatch → per-worker scoring → merge → respond) written as JSONL by a
  single writer; span context is a picklable tuple, so it rides the
  dispatcher's pipes and worker-side spans stitch back into the parent
  trace;
* :mod:`repro.obs.sketch` — a DDSketch-style mergeable quantile sketch with
  a bounded relative error and fixed memory; it backs every latency
  percentile in the stack and merges exactly across workers (the fleet
  p99 is the pooled stream's p99, never an average of per-worker p99s);
* :mod:`repro.obs.shm_metrics` — lock-free per-worker counter slabs (plus
  one sketch row each) in ``multiprocessing.shared_memory``, merged by the
  dispatcher into a fleet-wide utilisation/latency view without touching
  the request path;
* :mod:`repro.obs.slo` — declarative per-tenant SLOs (availability +
  latency objective) evaluated with multiwindow burn rates; structured
  alerts on the ``repro.serve.slo`` logger, verdicts in ``/v1/metrics``;
* :mod:`repro.obs.prometheus` — pure-function rendering of the
  ``/v1/metrics`` snapshot into Prometheus text exposition (served at
  ``GET /metrics``), with OpenMetrics trace exemplars on latency buckets;
* :mod:`repro.obs.summary` — trace-file analysis behind
  ``repro trace-summary`` (per-stage latency breakdowns, stitching checks,
  slowest-trace exemplars);
* :mod:`repro.obs.console` — the ``repro top`` live terminal dashboard
  over a serving endpoint's ``/v1/metrics``.

This package deliberately imports nothing from :mod:`repro.serve` or
:mod:`repro.cluster` — it is a leaf those layers build on.
"""

from repro.obs.console import build_view, render_view, run_console
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus, validate_exposition
from repro.obs.shm_metrics import (
    WorkerStatsSlab,
    merge_worker_stats,
    stats_summary,
    worker_summary,
)
from repro.obs.sketch import QuantileSketch, merge_rows, sketch_row_length
from repro.obs.slo import SLOConfig, SLOEngine, SLOSpec
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    parse_trace_file,
    set_tracer,
    span_record,
)
from repro.obs.summary import (
    format_trace_summary,
    slowest_exemplars,
    summarize_spans,
    summarize_trace_file,
)

__all__ = [
    "CONTENT_TYPE",
    "JsonlSink",
    "MemorySink",
    "QuantileSketch",
    "SLOConfig",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "SpanContext",
    "Tracer",
    "WorkerStatsSlab",
    "build_view",
    "configure_tracing",
    "format_trace_summary",
    "get_tracer",
    "merge_rows",
    "merge_worker_stats",
    "parse_trace_file",
    "render_prometheus",
    "render_view",
    "run_console",
    "set_tracer",
    "sketch_row_length",
    "slowest_exemplars",
    "span_record",
    "stats_summary",
    "summarize_spans",
    "summarize_trace_file",
    "validate_exposition",
    "worker_summary",
]
