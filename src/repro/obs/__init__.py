"""repro.obs — end-to-end observability for the serving/cluster stack.

Three capabilities, each usable on its own and composed by the serving
layer:

* :mod:`repro.obs.trace` — request-scoped tracing: every sampled request
  gets a trace ID and a span tree (validate → cache lookup → queue wait →
  dispatch → per-worker scoring → merge → respond) written as JSONL by a
  single writer; span context is a picklable tuple, so it rides the
  dispatcher's pipes and worker-side spans stitch back into the parent
  trace;
* :mod:`repro.obs.shm_metrics` — lock-free per-worker counter slabs in
  ``multiprocessing.shared_memory``, merged by the dispatcher into a
  fleet-wide utilisation/latency view without touching the request path;
* :mod:`repro.obs.prometheus` — pure-function rendering of the
  ``/v1/metrics`` snapshot into Prometheus text exposition (served at
  ``GET /metrics``);
* :mod:`repro.obs.summary` — trace-file analysis behind
  ``repro trace-summary`` (per-stage latency breakdowns, stitching checks).

This package deliberately imports nothing from :mod:`repro.serve` or
:mod:`repro.cluster` — it is a leaf those layers build on.
"""

from repro.obs.prometheus import CONTENT_TYPE, render_prometheus, validate_exposition
from repro.obs.shm_metrics import (
    STAGE_BOUNDS,
    WorkerStatsSlab,
    merge_worker_stats,
    stats_summary,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    parse_trace_file,
    set_tracer,
    span_record,
)
from repro.obs.summary import format_trace_summary, summarize_spans, summarize_trace_file

__all__ = [
    "CONTENT_TYPE",
    "STAGE_BOUNDS",
    "JsonlSink",
    "MemorySink",
    "Span",
    "SpanContext",
    "Tracer",
    "WorkerStatsSlab",
    "configure_tracing",
    "format_trace_summary",
    "get_tracer",
    "merge_worker_stats",
    "parse_trace_file",
    "render_prometheus",
    "set_tracer",
    "span_record",
    "stats_summary",
    "summarize_spans",
    "summarize_trace_file",
    "validate_exposition",
]
