"""repro.obs.console — the ``repro top`` live operations console.

A stdlib-only terminal dashboard over the serving tier: it polls ``GET
/v1/metrics`` on an interval and renders one screen per poll — per-tenant
traffic (QPS, p50/p99, queue depth), the SLO error-budget/burn-rate block,
worker-pool health (utilisation, respawns), fleet residency/paging, circuit
breakers, and the transport byte counters.  ``repro top --once --json``
emits a single machine-readable view instead, which is what the CI smoke
uses.

Everything here is pure over the ``/v1/metrics`` JSON snapshot:
:func:`build_view` turns one (plus optionally the previous poll, for QPS
deltas) into a flat view dict, and :func:`render_view` turns a view into
ANSI text.  The network and the terminal only appear in
:func:`fetch_snapshot` and :func:`run_console`, so tests drive the whole
console without a server or a tty.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional

#: Seconds between polls when ``--interval`` is not given.
DEFAULT_INTERVAL = 2.0

#: Cursor-home + clear-screen: repaint in place instead of scrolling.
_HOME_CLEAR = "\x1b[H\x1b[2J"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_RESET = "\x1b[0m"

_VERDICT_COLORS = {"ok": _GREEN, "at_risk": _YELLOW, "breached": _RED}


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/v1/metrics`` and return the parsed JSON snapshot."""
    target = url.rstrip("/") + "/v1/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _tenant_names(snapshot: dict) -> List[str]:
    names = set(snapshot.get("models", {}))
    names.update(snapshot.get("slo", {}).get("tenants", {}))
    return sorted(names)


def build_view(
    snapshot: dict,
    previous: Optional[dict] = None,
    elapsed: Optional[float] = None,
) -> dict:
    """Flatten one ``/v1/metrics`` snapshot into the console's view.

    ``previous``/``elapsed`` (the prior poll and the seconds between them)
    enable the QPS column — a single snapshot only carries cumulative
    counters, so rates need two.  Missing blocks (no cluster, no traffic
    yet) simply produce empty sections; the console renders what exists.
    """
    models = snapshot.get("models", {})
    slo_tenants = snapshot.get("slo", {}).get("tenants", {})
    schedulers = snapshot.get("schedulers", {})
    previous_models = (previous or {}).get("models", {})

    tenants = []
    for name in _tenant_names(snapshot):
        model = models.get(name, {})
        slo = slo_tenants.get(name, {})
        latency = model.get("latency", {})
        requests = int(model.get("requests", 0))
        qps = None
        if elapsed and elapsed > 0 and name in previous_models:
            delta = requests - int(previous_models[name].get("requests", 0))
            qps = max(0.0, delta / elapsed)
        windows = slo.get("windows", {})
        tenants.append(
            {
                "tenant": name,
                "requests": requests,
                "errors": int(model.get("errors", 0)),
                "qps": qps,
                "p50_ms": latency.get("p50_ms"),
                "p99_ms": latency.get("p99_ms"),
                "queue_depth": schedulers.get(name, {}).get("queue_depth", 0),
                "budget_remaining": slo.get("budget_remaining"),
                "burn_fast": windows.get("fast", {}).get("burn_rate"),
                "burn_slow": windows.get("slow", {}).get("burn_rate"),
                "verdict": slo.get("verdict"),
            }
        )

    workers = []
    transport_totals: Dict[str, int] = {}
    for name in sorted(snapshot.get("cluster", {})):
        info = snapshot["cluster"][name]
        fleet_stats = info.get("workers", {}).get("fleet", {})
        workers.append(
            {
                "dispatcher": name,
                "workers": info.get("num_workers"),
                "transport": info.get("transport"),
                "respawns": int(info.get("respawns", 0)),
                "utilization": fleet_stats.get("utilization"),
                "scoring_p50_ms": fleet_stats.get("scoring_p50_ms"),
                "scoring_p99_ms": fleet_stats.get("scoring_p99_ms"),
            }
        )
        totals = info.get("transport_stats", {}).get("totals", {})
        for key, value in totals.items():
            if isinstance(value, (int, float)):
                transport_totals[key] = transport_totals.get(key, 0) + int(value)

    fleet = snapshot.get("fleet")
    breakers = {}
    if fleet:
        breakers = {
            name: state.get("state")
            for name, state in fleet.get("breakers", {}).items()
        }

    return {
        "tenants": tenants,
        "workers": workers,
        "fleet": fleet,
        "breakers": breakers,
        "transport": transport_totals or None,
        "alert_burn_rate": snapshot.get("slo", {}).get("alert_burn_rate"),
    }


def _fmt(value, pattern: str = "{:.1f}", missing: str = "-") -> str:
    if value is None:
        return missing
    return pattern.format(value)


def render_view(view: dict, color: bool = True) -> str:
    """Render one view dict as an ANSI screen (plain text when ``color``
    is off, e.g. for piped output)."""

    def paint(text: str, style: str) -> str:
        return f"{style}{text}{_RESET}" if color else text

    lines = [paint("repro top — fleet SLO console", _BOLD)]

    lines.append("")
    lines.append(
        paint(
            f"{'TENANT':<16} {'QPS':>7} {'REQS':>8} {'ERRS':>6} {'P50MS':>8} "
            f"{'P99MS':>9} {'QUEUE':>5} {'BUDGET':>7} {'BURN(F/S)':>11} VERDICT",
            _DIM,
        )
    )
    if not view["tenants"]:
        lines.append("  (no traffic yet)")
    for row in view["tenants"]:
        verdict = row["verdict"] or "-"
        budget = row["budget_remaining"]
        burn = (
            f"{_fmt(row['burn_fast'])}/{_fmt(row['burn_slow'])}"
            if row["burn_fast"] is not None or row["burn_slow"] is not None
            else "-"
        )
        line = (
            f"{row['tenant']:<16} {_fmt(row['qps']):>7} {row['requests']:>8} "
            f"{row['errors']:>6} {_fmt(row['p50_ms'], '{:.2f}'):>8} "
            f"{_fmt(row['p99_ms'], '{:.2f}'):>9} {row['queue_depth']:>5} "
            f"{_fmt(budget, '{:.3f}'):>7} {burn:>11} "
        )
        lines.append(line + paint(verdict, _VERDICT_COLORS.get(verdict, _DIM)))

    if view["workers"]:
        lines.append("")
        lines.append(
            paint(
                f"{'DISPATCHER':<16} {'WORKERS':>7} {'TRANSPORT':>9} "
                f"{'UTIL':>6} {'RESPAWNS':>8} {'SCORE P50':>10} {'SCORE P99':>10}",
                _DIM,
            )
        )
        for row in view["workers"]:
            util = row["utilization"]
            lines.append(
                f"{row['dispatcher']:<16} {row['workers'] or '-':>7} "
                f"{row['transport'] or '-':>9} "
                f"{_fmt(util, '{:.0%}'):>6} {row['respawns']:>8} "
                f"{_fmt(row['scoring_p50_ms'], '{:.2f}'):>10} "
                f"{_fmt(row['scoring_p99_ms'], '{:.2f}'):>10}"
            )

    fleet = view.get("fleet")
    if fleet:
        lines.append("")
        cap = fleet.get("max_resident")
        resident = f"{fleet.get('resident_banks', 0)}"
        if cap:
            resident += f"/{cap}"
        lines.append(
            paint("FLEET  ", _DIM)
            + f"banks={resident} evictions={fleet.get('evictions', 0)} "
            f"restores={fleet.get('restores', 0)} "
            f"cold_loads={fleet.get('cold_loads', 0)} "
            f"dispatchers={fleet.get('dispatchers', 0)}"
        )
        if view["breakers"]:
            states = " ".join(
                f"{name}={state}" for name, state in sorted(view["breakers"].items())
            )
            open_breakers = any(
                state != "closed" for state in view["breakers"].values()
            )
            lines.append(
                paint("BREAKERS  ", _DIM)
                + paint(states, _RED if open_breakers else _GREEN)
            )

    transport = view.get("transport")
    if transport:
        lines.append(
            paint("TRANSPORT  ", _DIM)
            + f"frames={transport.get('frames_sent', 0)} "
            f"payload_mb={transport.get('payload_bytes', 0) / 1e6:.1f} "
            f"avoided_mb={transport.get('bytes_avoided', 0) / 1e6:.1f} "
            f"inline_fallbacks={transport.get('inline_fallbacks', 0)}"
        )

    if view.get("alert_burn_rate") is not None:
        lines.append("")
        lines.append(
            paint(f"alert burn-rate threshold: {view['alert_burn_rate']}x", _DIM)
        )
    return "\n".join(lines) + "\n"


def run_console(
    url: str,
    interval: float = DEFAULT_INTERVAL,
    once: bool = False,
    as_json: bool = False,
    stream=None,
    fetch: Callable[[str], dict] = fetch_snapshot,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    max_polls: Optional[int] = None,
) -> int:
    """Drive the console: poll, render, repeat.  Returns an exit code.

    ``--once`` renders a single poll (no QPS column — rates need two) and
    ``--json`` swaps the ANSI screen for the raw view dict.  ``fetch`` /
    ``sleep`` / ``clock`` / ``max_polls`` exist for the tests.
    """
    stream = stream if stream is not None else sys.stdout
    color = not as_json and getattr(stream, "isatty", lambda: False)()
    previous: Optional[dict] = None
    previous_at: Optional[float] = None
    polls = 0
    try:
        while True:
            try:
                snapshot = fetch(url)
            except (urllib.error.URLError, OSError, ValueError) as error:
                print(f"repro top: cannot poll {url}: {error}", file=sys.stderr)
                return 1
            now = clock()
            elapsed = None if previous_at is None else now - previous_at
            view = build_view(snapshot, previous=previous, elapsed=elapsed)
            if as_json:
                stream.write(json.dumps(view, indent=2, sort_keys=True) + "\n")
            else:
                prefix = "" if once else _HOME_CLEAR
                stream.write(prefix + render_view(view, color=color))
            stream.flush()
            polls += 1
            if once or (max_polls is not None and polls >= max_polls):
                return 0
            previous, previous_at = snapshot, now
            sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


__all__ = [
    "DEFAULT_INTERVAL",
    "build_view",
    "fetch_snapshot",
    "render_view",
    "run_console",
]
