"""Prometheus text-exposition rendering of the serving metrics snapshot.

:func:`render_prometheus` turns the JSON-ready dictionary served at
``GET /v1/metrics`` into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ served at
``GET /metrics`` — no client library, no registry object, just a pure
function over the snapshot, which keeps it trivially testable (the format is
pinned by a golden test) and free of extra state to keep consistent.

Conventions:

* counters end in ``_total``; latency histograms follow the native
  ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` labels
  (which is why :class:`~repro.serve.metrics.LatencyHistogram` snapshots
  carry their raw cumulative bucket counts);
* per-model series carry a ``model`` label, per-stage histograms add
  ``stage``, cluster-worker series carry ``dispatcher`` and ``worker``;
  transport byte/frame counters add ``transport`` and the ring gauges add
  ``ring`` (``request_slab`` / ``response_slab``);
* fleet-wide residency series are ``repro_fleet_*`` (resident banks,
  evictions, restores, cold loads, leases) and per-tenant admission
  counters are ``repro_tenant_*`` with a ``tenant`` label;
* per-tenant SLO series are ``repro_slo_error_budget_remaining`` and
  ``repro_slo_burn_rate`` (``window="fast"|"slow"``), from the ``slo``
  snapshot block;
* latency buckets that captured a traced request carry an OpenMetrics
  exemplar annotation (``... 12 # {trace_id="..."} 0.089 1700000000``) so
  a scrape can link a p99 spike to a span tree.  Exemplars are a pure
  suffix — scrapers speaking only the classic text format can ignore them,
  and :func:`validate_exposition` checks their syntax.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: OpenMetrics exemplar suffix: ``{label="value",...} value [timestamp]``.
_EXEMPLAR_RE = re.compile(
    r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}'
    r" -?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    r"(?: \d+(?:\.\d+)?(?:[eE][+-]?\d+)?)?$"
)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(**labels: object) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(str(value))}"' for key, value in labels.items())
    return "{" + body + "}"


def _number(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    """Accumulates exposition lines, emitting HELP/TYPE once per metric."""

    def __init__(self):
        self.lines: List[str] = []
        self._declared = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, _suffix: str = "", **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_number(value)}{_suffix}")


def _render_histogram(
    writer: _Writer,
    name: str,
    help_text: str,
    latency: Dict,
    **labels,
) -> None:
    """Emit one ``_bucket``/``_sum``/``_count`` triplet from a latency
    snapshot carrying cumulative ``buckets`` (skipped when absent).

    Buckets carrying an ``exemplar`` (most recent traced observation in
    that bucket's range) get an OpenMetrics exemplar suffix.
    """
    buckets = latency.get("buckets")
    if buckets is None:
        return
    writer.declare(name, "histogram", help_text)
    for entry in buckets:
        suffix = ""
        exemplar = entry.get("exemplar")
        if exemplar:
            suffix = (
                f' # {{trace_id="{_escape(str(exemplar["trace_id"]))}"}}'
                f' {_number(exemplar["value"])}'
                f' {_number(exemplar.get("timestamp", 0.0))}'
            )
        writer.sample(
            f"{name}_bucket", entry["count"], _suffix=suffix, **labels, le=entry["le"]
        )
    writer.sample(f"{name}_sum", latency.get("sum_seconds", 0.0), **labels)
    writer.sample(f"{name}_count", latency.get("count", 0), **labels)


def render_prometheus(snapshot: Dict) -> str:
    """Render a ``/v1/metrics`` snapshot as Prometheus text exposition."""
    writer = _Writer()

    for model, metrics in sorted(snapshot.get("models", {}).items()):
        writer.declare(
            "repro_requests_total", "counter", "Completed inference requests."
        )
        writer.sample("repro_requests_total", metrics["requests"], model=model)
        writer.declare("repro_samples_total", "counter", "Samples scored.")
        writer.sample("repro_samples_total", metrics["samples"], model=model)
        writer.declare("repro_errors_total", "counter", "Failed requests.")
        writer.sample("repro_errors_total", metrics["errors"], model=model)
        writer.declare(
            "repro_shed_total",
            "counter",
            "Requests rejected by admission control (HTTP 429).",
        )
        writer.sample("repro_shed_total", metrics.get("sheds", 0), model=model)
        writer.declare(
            "repro_deadline_exceeded_total",
            "counter",
            "Requests that missed their deadline (HTTP 504).",
        )
        writer.sample(
            "repro_deadline_exceeded_total",
            metrics.get("deadline_exceeded", 0),
            model=model,
        )

        cache = metrics.get("cache")
        if cache is not None:
            writer.declare(
                "repro_cache_hits_total", "counter", "Prediction-cache hits."
            )
            writer.sample("repro_cache_hits_total", cache["hits"], model=model)
            writer.declare(
                "repro_cache_misses_total", "counter", "Prediction-cache misses."
            )
            writer.sample("repro_cache_misses_total", cache["misses"], model=model)

        writer.declare(
            "repro_batches_total", "counter", "Coalesced micro-batches executed."
        )
        writer.sample("repro_batches_total", metrics.get("batches", 0), model=model)

        _render_histogram(
            writer,
            "repro_request_latency_seconds",
            "End-to-end request latency.",
            metrics.get("latency", {}),
            model=model,
        )
        for stage, latency in sorted(metrics.get("stages", {}).items()):
            _render_histogram(
                writer,
                "repro_stage_latency_seconds",
                "Per-stage latency (validate, queue_wait, dispatch, ...).",
                latency,
                model=model,
                stage=stage,
            )

    for model, scheduler in sorted(snapshot.get("schedulers", {}).items()):
        writer.declare(
            "repro_scheduler_queue_depth",
            "gauge",
            "Requests waiting in the micro-batch queue.",
        )
        writer.sample(
            "repro_scheduler_queue_depth", scheduler["queue_depth"], model=model
        )

    cache = snapshot.get("prediction_cache")
    if cache is not None:
        writer.declare(
            "repro_prediction_cache_entries", "gauge", "Resident LRU cache entries."
        )
        writer.sample("repro_prediction_cache_entries", cache["entries"])

    shm = snapshot.get("shared_memory")
    if shm is not None:
        writer.declare(
            "repro_shm_segments", "gauge", "Published shared-memory segments."
        )
        writer.sample("repro_shm_segments", shm["segments"])
        writer.declare(
            "repro_shm_resident_bytes",
            "gauge",
            "Bytes of packed model banks resident in shared memory.",
        )
        writer.sample("repro_shm_resident_bytes", shm["resident_bytes"])

    for dispatcher, info in sorted(snapshot.get("cluster", {}).items()):
        writer.declare(
            "repro_cluster_respawns_total", "counter", "Worker respawns after crashes."
        )
        writer.sample(
            "repro_cluster_respawns_total",
            info.get("respawns", 0),
            dispatcher=dispatcher,
        )
        failure_help = {
            "hangs": "Worker hangs detected by the request-timeout watchdog.",
            "shard_retries": "Shards retried once after a worker fault.",
            "transport_errors": "Transport-level faults (torn frames, drops).",
            "worker_faults": "Request-level faults reported by workers.",
            "deadline_skips": "Shards abandoned because their deadline expired.",
        }
        for field, count in sorted((info.get("failures") or {}).items()):
            name = f"repro_cluster_{field}_total"
            writer.declare(
                name, "counter", failure_help.get(field, "Cluster fault counter.")
            )
            writer.sample(name, count, dispatcher=dispatcher)
        uptime = float(info.get("uptime_seconds", 0.0))
        for index, worker in enumerate(info.get("workers", {}).get("per_worker", [])):
            writer.declare(
                "repro_worker_requests_total",
                "counter",
                "Shards answered by each cluster worker.",
            )
            writer.sample(
                "repro_worker_requests_total",
                worker["requests"],
                dispatcher=dispatcher,
                worker=index,
            )
            writer.declare(
                "repro_worker_busy_seconds_total",
                "counter",
                "Cumulative scoring time inside each worker.",
            )
            writer.sample(
                "repro_worker_busy_seconds_total",
                worker["busy_seconds"],
                dispatcher=dispatcher,
                worker=index,
            )
            writer.declare(
                "repro_worker_utilization",
                "gauge",
                "Worker busy fraction since the dispatcher started.",
            )
            writer.sample(
                "repro_worker_utilization",
                worker["busy_seconds"] / uptime if uptime > 0 else 0.0,
                dispatcher=dispatcher,
                worker=index,
            )
        transport_stats = info.get("transport_stats") or {}
        transport = transport_stats.get("transport", "pipe")
        for index, endpoint in enumerate(transport_stats.get("per_worker", [])):
            if endpoint is None:
                continue
            for field, help_text in (
                ("pipe_bytes", "Bytes moved through worker pipes (frames)."),
                ("shm_bytes", "Array bytes staged in shared-memory rings."),
                ("socket_bytes", "Bytes moved through transport sockets."),
                (
                    "bytes_avoided",
                    "Array bytes kept out of the pipes vs the pipe baseline.",
                ),
                ("inline_fallbacks", "Replies that outgrew their ring slab."),
            ):
                name = f"repro_transport_{field}_total"
                writer.declare(name, "counter", help_text)
                writer.sample(
                    name,
                    endpoint.get(field, 0),
                    dispatcher=dispatcher,
                    worker=index,
                    transport=transport,
                )
            writer.declare(
                "repro_transport_frames_total",
                "counter",
                "Control/request frames exchanged with each worker.",
            )
            writer.sample(
                "repro_transport_frames_total",
                endpoint.get("frames_sent", 0) + endpoint.get("frames_received", 0),
                dispatcher=dispatcher,
                worker=index,
                transport=transport,
            )
            for ring in ("request_slab", "response_slab"):
                slab = endpoint.get(ring)
                if slab is None:
                    continue
                writer.declare(
                    "repro_transport_ring_capacity_bytes",
                    "gauge",
                    "Current capacity of each worker's shared-memory ring.",
                )
                writer.sample(
                    "repro_transport_ring_capacity_bytes",
                    slab["capacity_bytes"],
                    dispatcher=dispatcher,
                    worker=index,
                    ring=ring,
                )
                writer.declare(
                    "repro_transport_ring_occupancy",
                    "gauge",
                    "Last payload's fraction of its ring's capacity.",
                )
                writer.sample(
                    "repro_transport_ring_occupancy",
                    slab["occupancy"],
                    dispatcher=dispatcher,
                    worker=index,
                    ring=ring,
                )

    fleet = snapshot.get("fleet")
    if fleet is not None:
        for name, kind, field, help_text in (
            (
                "repro_fleet_resident_banks",
                "gauge",
                "resident_banks",
                "Shared model banks currently resident.",
            ),
            (
                "repro_fleet_peak_resident_banks",
                "gauge",
                "peak_resident_banks",
                "High-water mark of resident shared banks.",
            ),
            (
                "repro_fleet_leases",
                "gauge",
                "leases",
                "Bank leases held by in-flight dispatches.",
            ),
            (
                "repro_fleet_dispatchers",
                "gauge",
                "dispatchers",
                "Live cluster dispatchers (worker pools).",
            ),
            (
                "repro_fleet_evictions_total",
                "counter",
                "evictions",
                "Bank segments paged out of shared memory.",
            ),
            (
                "repro_fleet_restores_total",
                "counter",
                "restores",
                "Paged-out banks re-materialised on demand.",
            ),
            (
                "repro_fleet_cold_loads_total",
                "counter",
                "cold_loads",
                "Dispatcher cold loads (evicted models rebuilt).",
            ),
        ):
            writer.declare(name, kind, help_text)
            writer.sample(name, fleet.get(field, 0))
        for model, breaker in sorted((fleet.get("breakers") or {}).items()):
            writer.declare(
                "repro_model_breaker_open",
                "gauge",
                "Cold-load circuit breaker (1 open, 0.5 half-open, 0 closed).",
            )
            state = {"open": 1.0, "half_open": 0.5}.get(breaker.get("state"), 0.0)
            writer.sample("repro_model_breaker_open", state, model=model)

    tenancy = snapshot.get("tenancy")
    if tenancy is not None:
        for tenant, stats in sorted((tenancy.get("tenants") or {}).items()):
            writer.declare(
                "repro_tenant_admitted_total",
                "counter",
                "Requests admitted past tenant quotas.",
            )
            writer.sample(
                "repro_tenant_admitted_total",
                stats.get("admitted", 0),
                tenant=tenant,
            )
            writer.declare(
                "repro_tenant_rate_limited_total",
                "counter",
                "Requests shed by the tenant token bucket (429).",
            )
            writer.sample(
                "repro_tenant_rate_limited_total",
                stats.get("rate_limited", 0),
                tenant=tenant,
            )
            writer.declare(
                "repro_tenant_quota_exceeded_total",
                "counter",
                "Requests shed at the tenant concurrency quota (429).",
            )
            writer.sample(
                "repro_tenant_quota_exceeded_total",
                stats.get("quota_exceeded", 0),
                tenant=tenant,
            )
            writer.declare(
                "repro_tenant_in_flight",
                "gauge",
                "Requests currently holding a tenant admission lease.",
            )
            writer.sample(
                "repro_tenant_in_flight", stats.get("in_flight", 0), tenant=tenant
            )

    slo = snapshot.get("slo")
    if slo is not None:
        for tenant, state in sorted((slo.get("tenants") or {}).items()):
            writer.declare(
                "repro_slo_error_budget_remaining",
                "gauge",
                "Fraction of the tenant's error budget left (1 = untouched).",
            )
            writer.sample(
                "repro_slo_error_budget_remaining",
                state.get("budget_remaining", 1.0),
                tenant=tenant,
            )
            windows = state.get("windows") or {}
            for window in ("fast", "slow"):
                burn = (windows.get(window) or {}).get("burn_rate")
                if burn is None:
                    continue
                writer.declare(
                    "repro_slo_burn_rate",
                    "gauge",
                    "Error-budget burn rate over the fast/slow window.",
                )
                writer.sample(
                    "repro_slo_burn_rate", burn, tenant=tenant, window=window
                )
            writer.declare(
                "repro_slo_alerting",
                "gauge",
                "Multiwindow burn-rate alert firing (1) or quiet (0).",
            )
            writer.sample(
                "repro_slo_alerting",
                1.0 if state.get("alerting") else 0.0,
                tenant=tenant,
            )

    return "\n".join(writer.lines) + "\n" if writer.lines else ""


def validate_exposition(text: str) -> None:
    """Raise ``ValueError`` unless *text* is plausibly valid exposition format.

    A light structural check used by tests and the CI smoke: every sample
    line parses as ``name{labels} value``, every samples' metric family was
    declared with ``# TYPE``, histogram bucket counts are cumulative, and
    OpenMetrics exemplar suffixes (`` # {trace_id="..."} value [ts]``) are
    well-formed and only attached to ``_bucket`` samples.
    """
    declared = set()
    bucket_runs: Dict[str, List[float]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            declared.add(line.split()[2])
            continue
        line, exemplar_sep, exemplar = line.partition(" # ")
        name, _, rest = line.partition("{") if "{" in line else line.partition(" ")
        family = name.split("{")[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix):
                base = family[: -len(suffix)]
        if family not in declared and base not in declared:
            raise ValueError(f"line {line_number}: {family!r} has no # TYPE")
        if exemplar_sep:
            if not family.endswith("_bucket"):
                raise ValueError(
                    f"line {line_number}: exemplar on non-bucket sample {family!r}"
                )
            if not _EXEMPLAR_RE.match(exemplar):
                raise ValueError(
                    f"line {line_number}: malformed exemplar {exemplar!r}"
                )
        try:
            float(line.rsplit(" ", 1)[1])
        except (IndexError, ValueError):
            raise ValueError(f"line {line_number}: unparseable sample {line!r}")
        if family.endswith("_bucket"):
            # The series key is everything except the ``le`` label, whether
            # or not other labels precede it.
            series = line.rsplit(" ", 1)[0]
            for separator in (',le="', '{le="'):
                if separator in series:
                    series = series.rsplit(separator, 1)[0]
                    break
            run = bucket_runs.setdefault(series, [])
            run.append(float(line.rsplit(" ", 1)[1]))
    for series, counts in bucket_runs.items():
        if counts != sorted(counts):
            raise ValueError(f"histogram buckets not cumulative for {series!r}")


__all__ = ["CONTENT_TYPE", "render_prometheus", "validate_exposition"]
