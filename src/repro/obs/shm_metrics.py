"""Cross-process worker metrics over tiny shared-memory slabs.

The dispatcher's in-process counters go blind the moment a shard crosses the
pipe into a ``repro.cluster`` worker.  Instead of shipping metrics messages
back (which would tax the request path), each worker *publishes* its counters
into a small fixed-layout shared-memory slab that the dispatcher maps and
reads whenever someone asks for ``/v1/metrics``:

* one slab per worker *slot*, created by the dispatcher and kept for the
  dispatcher's lifetime — a respawned worker inherits its slot's slab, so
  counters survive crashes and the fleet view never resets mid-soak;
* exactly one writer (the worker owning the slot) and one reader (the
  dispatcher), both lock-free: slots are monotonically increasing float64
  cells, so a torn read can at worst lag by one in-flight update — fine for
  metrics, and nothing on the scoring path ever blocks on a lock;
* recording is allocation-free: a slab update is a few in-place adds on a
  pre-built NumPy view.

Layout (all float64): ``requests, samples, errors, busy_seconds`` followed
by a :class:`~repro.obs.sketch.QuantileSketch` row tracking the scoring
latency distribution.  Because sketch rows merge exactly (bucket counts are
additive), :func:`merge_worker_stats` produces *true* fleet-wide scoring
percentiles — identical to a single sketch fed every worker's stream — and
:func:`stats_summary` headlines those, keeping per-worker numbers
(:func:`worker_summary`) as a breakdown rather than the story.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Sequence

import numpy as np

from repro.obs.sketch import QuantileSketch, merge_rows, sketch_row_length

_COUNTER_FIELDS = ("requests", "samples", "errors", "busy_seconds")
_SKETCH_CELLS = sketch_row_length()
_NUM_SLOTS = len(_COUNTER_FIELDS) + _SKETCH_CELLS


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without claiming cleanup ownership (same policy as
    :mod:`repro.cluster.shared`: only the creator unlinks)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: attachments are never tracked
        return shared_memory.SharedMemory(name=name)


class WorkerStatsSlab:
    """One worker slot's shared counter block.

    Create with :meth:`create` (parent side, owns the segment) or
    :meth:`attach` (worker side, borrows it).  The worker calls
    :meth:`record`; the parent calls :meth:`read`.
    """

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment = segment
        self._owner = owner
        self._slots = np.ndarray((_NUM_SLOTS,), dtype=np.float64, buffer=segment.buf)
        if owner:
            self._slots[:] = 0.0
        # The sketch records straight into the shared row — attaching keeps
        # whatever counts a previous worker incarnation left behind.
        self._sketch = QuantileSketch.attach_row(
            self._slots[len(_COUNTER_FIELDS) :]
        )

    @classmethod
    def create(cls) -> "WorkerStatsSlab":
        segment = shared_memory.SharedMemory(
            create=True, size=_NUM_SLOTS * np.dtype(np.float64).itemsize
        )
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "WorkerStatsSlab":
        return cls(_attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return self._slots.nbytes

    # -------------------------------------------------------------- recording
    def record(self, rows: int, seconds: float) -> None:
        """Record one answered shard of *rows* samples taking *seconds*."""
        slots = self._slots
        slots[0] += 1.0
        slots[1] += float(rows)
        slots[3] += float(seconds)
        if seconds > 0.0:
            self._sketch.record(seconds)

    def record_error(self) -> None:
        self._slots[2] += 1.0

    # ---------------------------------------------------------------- reading
    def read(self) -> Dict[str, object]:
        """Full snapshot of this slot (parent side).

        ``sketch_row`` is the flat scoring-latency sketch (JSON-ready list
        of floats) — :func:`merge_worker_stats` folds these into the fleet
        distribution; :func:`worker_summary` derives the per-worker
        breakdown without shipping the raw row to clients.
        """
        values = self._slots.copy()
        counters = dict(zip(_COUNTER_FIELDS, values[: len(_COUNTER_FIELDS)]))
        return {
            "requests": int(counters["requests"]),
            "samples": int(counters["samples"]),
            "errors": int(counters["errors"]),
            "busy_seconds": float(counters["busy_seconds"]),
            "sketch_row": values[len(_COUNTER_FIELDS) :].tolist(),
        }

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap (and, for the creating side, unlink) the segment."""
        self._sketch = None
        self._slots = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the slab
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "WorkerStatsSlab":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_worker_stats(stats: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Fleet totals over per-worker :meth:`WorkerStatsSlab.read` snapshots.

    Counter fields add; sketch rows merge exactly, so the merged row is the
    sketch of the pooled cross-worker scoring stream (not an average of
    per-worker summaries).
    """
    total = {
        "requests": 0,
        "samples": 0,
        "errors": 0,
        "busy_seconds": 0.0,
        "sketch_row": np.zeros(_SKETCH_CELLS, dtype=np.float64).tolist(),
    }
    rows: List[Sequence[float]] = [total["sketch_row"]]
    for entry in stats:
        total["requests"] += entry["requests"]
        total["samples"] += entry["samples"]
        total["errors"] += entry["errors"]
        total["busy_seconds"] += entry["busy_seconds"]
        rows.append(entry["sketch_row"])
    total["sketch_row"] = merge_rows(rows).tolist()
    return total


def _scoring_sketch(entry: Dict[str, object]) -> QuantileSketch:
    return QuantileSketch.from_row(entry["sketch_row"])


def worker_summary(entry: Dict[str, object]) -> Dict[str, object]:
    """JSON-ready per-worker breakdown of one :meth:`WorkerStatsSlab.read`
    snapshot (counters plus this worker's own scoring percentiles)."""
    sketch = _scoring_sketch(entry)
    return {
        "requests": entry["requests"],
        "samples": entry["samples"],
        "errors": entry["errors"],
        "busy_seconds": entry["busy_seconds"],
        "scoring_p50_ms": sketch.percentile(50) * 1e3,
        "scoring_p99_ms": sketch.percentile(99) * 1e3,
    }


def stats_summary(merged: Dict[str, object], uptime_seconds: float) -> Dict[str, object]:
    """Fleet headline from :func:`merge_worker_stats` output.

    The scoring percentiles come from the *merged* sketch — true pooled
    cross-worker percentiles with the sketch's relative-error bound, not a
    summary of per-worker summaries.
    """
    sketch = _scoring_sketch(merged)
    requests = merged["requests"]
    busy = merged["busy_seconds"]
    return {
        "requests": requests,
        "samples": merged["samples"],
        "errors": merged["errors"],
        "busy_seconds": busy,
        "utilization": busy / uptime_seconds if uptime_seconds > 0 else 0.0,
        "scoring_p50_ms": sketch.percentile(50) * 1e3,
        "scoring_p95_ms": sketch.percentile(95) * 1e3,
        "scoring_p99_ms": sketch.percentile(99) * 1e3,
        "mean_scoring_ms": (busy / requests * 1e3) if requests else 0.0,
        "relative_accuracy": sketch.relative_accuracy,
    }


__all__ = [
    "WorkerStatsSlab",
    "merge_worker_stats",
    "stats_summary",
    "worker_summary",
]
