"""Cross-process worker metrics over tiny shared-memory slabs.

The dispatcher's in-process counters go blind the moment a shard crosses the
pipe into a ``repro.cluster`` worker.  Instead of shipping metrics messages
back (which would tax the request path), each worker *publishes* its counters
into a small fixed-layout shared-memory slab that the dispatcher maps and
reads whenever someone asks for ``/v1/metrics``:

* one slab per worker *slot*, created by the dispatcher and kept for the
  dispatcher's lifetime — a respawned worker inherits its slot's slab, so
  counters survive crashes and the fleet view never resets mid-soak;
* exactly one writer (the worker owning the slot) and one reader (the
  dispatcher), both lock-free: slots are monotonically increasing float64
  cells, so a torn read can at worst lag by one in-flight update — fine for
  metrics, and nothing on the scoring path ever blocks on a lock;
* recording is allocation-free: a slab update is four in-place adds on a
  pre-built NumPy view.

Layout (all float64): ``requests, samples, errors, busy_seconds`` followed by
the scoring-latency histogram bucket counts (:data:`STAGE_BOUNDS` upper
bounds plus one overflow bucket).
"""

from __future__ import annotations

import bisect
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Histogram bucket upper bounds in seconds: log-spaced from 50 µs to 20 s
#: (the same bracketing the serving layer's latency histograms use).
STAGE_BOUNDS = tuple(
    round(base * scale, 9)
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (5.0, 10.0, 20.0)
)

_COUNTER_FIELDS = ("requests", "samples", "errors", "busy_seconds")
_NUM_SLOTS = len(_COUNTER_FIELDS) + len(STAGE_BOUNDS) + 1


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without claiming cleanup ownership (same policy as
    :mod:`repro.cluster.shared`: only the creator unlinks)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: attachments are never tracked
        return shared_memory.SharedMemory(name=name)


class WorkerStatsSlab:
    """One worker slot's shared counter block.

    Create with :meth:`create` (parent side, owns the segment) or
    :meth:`attach` (worker side, borrows it).  The worker calls
    :meth:`record`; the parent calls :meth:`read`.
    """

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment = segment
        self._owner = owner
        self._slots = np.ndarray((_NUM_SLOTS,), dtype=np.float64, buffer=segment.buf)
        if owner:
            self._slots[:] = 0.0

    @classmethod
    def create(cls) -> "WorkerStatsSlab":
        segment = shared_memory.SharedMemory(
            create=True, size=_NUM_SLOTS * np.dtype(np.float64).itemsize
        )
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "WorkerStatsSlab":
        return cls(_attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return self._slots.nbytes

    # -------------------------------------------------------------- recording
    def record(self, rows: int, seconds: float) -> None:
        """Record one answered shard of *rows* samples taking *seconds*."""
        slots = self._slots
        slots[0] += 1.0
        slots[1] += float(rows)
        slots[3] += float(seconds)
        index = bisect.bisect_left(STAGE_BOUNDS, seconds)
        slots[len(_COUNTER_FIELDS) + index] += 1.0

    def record_error(self) -> None:
        self._slots[2] += 1.0

    # ---------------------------------------------------------------- reading
    def read(self) -> Dict[str, object]:
        """JSON-ready snapshot of this slot's counters (parent side)."""
        values = self._slots.copy()
        counters = dict(zip(_COUNTER_FIELDS, values[: len(_COUNTER_FIELDS)]))
        buckets = values[len(_COUNTER_FIELDS) :]
        return {
            "requests": int(counters["requests"]),
            "samples": int(counters["samples"]),
            "errors": int(counters["errors"]),
            "busy_seconds": float(counters["busy_seconds"]),
            "scoring_buckets": [int(count) for count in buckets],
        }

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap (and, for the creating side, unlink) the segment."""
        self._slots = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the slab
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "WorkerStatsSlab":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_worker_stats(stats: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Fleet totals over per-worker :meth:`WorkerStatsSlab.read` snapshots."""
    total = {
        "requests": 0,
        "samples": 0,
        "errors": 0,
        "busy_seconds": 0.0,
        "scoring_buckets": [0] * (len(STAGE_BOUNDS) + 1),
    }
    for entry in stats:
        total["requests"] += entry["requests"]
        total["samples"] += entry["samples"]
        total["errors"] += entry["errors"]
        total["busy_seconds"] += entry["busy_seconds"]
        for index, count in enumerate(entry["scoring_buckets"]):
            total["scoring_buckets"][index] += count
    return total


def bucket_percentile(
    buckets: Sequence[int], p: float, bounds: Optional[Sequence[float]] = None
) -> float:
    """Approximate *p*-th percentile (seconds) from histogram bucket counts.

    Reports the upper bound of the bucket containing the percentile rank;
    the overflow bucket reports the last finite bound (an underestimate,
    flagged by the caller if it matters).  Returns 0.0 when empty.
    """
    bounds = STAGE_BOUNDS if bounds is None else tuple(bounds)
    total = sum(buckets)
    if total == 0:
        return 0.0
    rank = p / 100.0 * total
    cumulative = 0
    for index, count in enumerate(buckets):
        cumulative += count
        if cumulative >= rank and count:
            return bounds[min(index, len(bounds) - 1)]
    return bounds[-1]


def stats_summary(merged: Dict[str, object], uptime_seconds: float) -> Dict[str, object]:
    """Derive utilisation and latency percentiles from merged worker stats."""
    buckets: List[int] = merged["scoring_buckets"]
    requests = merged["requests"]
    busy = merged["busy_seconds"]
    return {
        "requests": requests,
        "samples": merged["samples"],
        "errors": merged["errors"],
        "busy_seconds": busy,
        "utilization": busy / uptime_seconds if uptime_seconds > 0 else 0.0,
        "scoring_p50_ms": bucket_percentile(buckets, 50) * 1e3,
        "scoring_p99_ms": bucket_percentile(buckets, 99) * 1e3,
        "mean_scoring_ms": (busy / requests * 1e3) if requests else 0.0,
    }


__all__ = [
    "STAGE_BOUNDS",
    "WorkerStatsSlab",
    "bucket_percentile",
    "merge_worker_stats",
    "stats_summary",
]
