"""Mergeable quantile sketches with a bounded relative error.

The serving layer needs percentiles in three places that a classic
fixed-bucket histogram serves badly:

* per-model request latency in :class:`repro.serve.metrics.LatencyHistogram`,
  where the old bucket-upper-bound estimate could be off by the full bucket
  width (the coarse 5/10/20-per-decade grid means up to 2x);
* per-worker scoring latency published through shared-memory slabs
  (:mod:`repro.obs.shm_metrics`), where per-worker summaries could not be
  combined into a true fleet percentile;
* per-tenant SLO latency objectives (:mod:`repro.obs.slo`), which need "is
  tenant X's p99 above 250 ms" answered cheaply and continuously.

:class:`QuantileSketch` is a DDSketch-style sketch (Masson, Rim & Lee,
VLDB'19): bucket boundaries are powers of ``gamma = (1 + a) / (1 - a)`` for a
relative accuracy ``a``, so *any* quantile estimate ``x̂`` of a true sample
value ``x`` within the tracked range satisfies ``|x̂ - x| <= a * x``.  Three
properties matter here:

* **mergeable** — bucket counts are additive, so merging sketches from N
  workers yields exactly the sketch of the pooled stream (merge is
  associative and commutative);
* **fixed memory** — the tracked value range is fixed up front, so the
  bucket array never grows and the whole sketch *is* a constant-length
  float64 row (``[count, sum, min, max, bucket_0, ...]``) that drops
  straight into a shared-memory worker slab: :meth:`attach_row` turns a
  slab slice into a live sketch recording in place, lock-free, with one
  writer per slot;
* **cheap** — recording is one log + one array increment; no samples are
  retained, so a week-long soak costs the same memory as the first request.

Values below ``min_value`` are exact-counted in an underflow bucket and
reported as the minimum observation; values above ``max_value`` are clamped
into the last bucket and reported as the maximum observation, so the error
bound formally holds on ``[min_value, max_value]`` (the defaults bracket
1 µs .. 20 000 s, far beyond any serving latency).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

#: Default relative accuracy: quantile estimates within 1% of a true sample.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Default tracked value range in seconds (1 µs .. 20 000 s).
DEFAULT_MIN_VALUE = 1e-6
DEFAULT_MAX_VALUE = 2e4

#: Header cells preceding the bucket counts in the flat row form.
_HEADER_FIELDS = ("count", "sum", "min", "max")
_HEADER = len(_HEADER_FIELDS)


def _num_buckets(relative_accuracy: float, min_value: float, max_value: float) -> int:
    gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
    # Bucket i (1-based) covers (min * gamma**(i-1), min * gamma**i];
    # bucket 0 is the underflow bucket covering (0, min_value].
    return int(math.ceil(math.log(max_value / min_value) / math.log(gamma))) + 1


def sketch_row_length(
    relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    min_value: float = DEFAULT_MIN_VALUE,
    max_value: float = DEFAULT_MAX_VALUE,
) -> int:
    """Cells in the flat float64 row of a sketch with these parameters."""
    return _HEADER + _num_buckets(relative_accuracy, min_value, max_value)


class QuantileSketch:
    """A mergeable log-bucket quantile sketch with relative-error guarantee.

    Parameters
    ----------
    relative_accuracy:
        ``a`` in ``(0, 1)``: every percentile estimate is within a factor
        ``(1 ± a)`` of some true sample value at that rank.
    min_value, max_value:
        The tracked range.  Observations below/above are clamped (the true
        min/max are still reported exactly via :attr:`min` / :attr:`max`).

    The sketch state lives in one float64 row ``[count, sum, min, max,
    bucket_0, ...]`` — a zero row is a valid empty sketch, so a freshly
    zeroed shared-memory slab slice attaches (:meth:`attach_row`) as an
    empty sketch and a respawned worker inherits its predecessor's counts.
    """

    __slots__ = ("_alpha", "_min_value", "_max_value", "_gamma", "_log_gamma", "_row")

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        _row: Optional[np.ndarray] = None,
    ):
        relative_accuracy = float(relative_accuracy)
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        min_value = float(min_value)
        max_value = float(max_value)
        if not 0.0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        self._alpha = relative_accuracy
        self._min_value = min_value
        self._max_value = max_value
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        length = sketch_row_length(relative_accuracy, min_value, max_value)
        if _row is None:
            self._row = np.zeros(length, dtype=np.float64)
        else:
            if _row.dtype != np.float64 or _row.shape != (length,):
                raise ValueError(
                    f"row must be float64 with {length} cells, got "
                    f"{_row.dtype}/{_row.shape}"
                )
            self._row = _row

    @classmethod
    def attach_row(
        cls,
        row: np.ndarray,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
    ) -> "QuantileSketch":
        """A sketch recording *in place* over *row* (e.g. a shm slab slice).

        The row is used as-is — existing counts are kept, which is exactly
        what a respawned worker inheriting its slot's slab wants.
        """
        return cls(relative_accuracy, min_value, max_value, _row=row)

    # ------------------------------------------------------------ properties
    @property
    def relative_accuracy(self) -> float:
        return self._alpha

    @property
    def count(self) -> int:
        return int(self._row[0])

    @property
    def sum(self) -> float:
        return float(self._row[1])

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return float(self._row[2])

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return float(self._row[3])

    @property
    def mean(self) -> float:
        count = self._row[0]
        return float(self._row[1] / count) if count else 0.0

    def row_length(self) -> int:
        return self._row.shape[0]

    # ------------------------------------------------------------- recording
    def _bucket_index(self, value: float) -> int:
        if value <= self._min_value:
            return 0
        index = int(math.ceil(math.log(value / self._min_value) / self._log_gamma))
        return min(index, self.row_length() - _HEADER - 1)

    def record(self, value: float) -> None:
        """Record one observation (must be positive; latencies always are)."""
        value = float(value)
        if not value > 0.0 or not math.isfinite(value):
            raise ValueError(f"value must be positive and finite, got {value}")
        row = self._row
        row[_HEADER + self._bucket_index(value)] += 1.0
        # Update min/max before count: a concurrent lock-free reader that
        # sees the new count then also sees consistent extremes.
        if row[0] == 0.0:
            row[2] = value
            row[3] = value
        else:
            if value < row[2]:
                row[2] = value
            if value > row[3]:
                row[3] = value
        row[1] += value
        row[0] += 1.0

    # ------------------------------------------------------------- quantiles
    def _bucket_estimate(self, index: int) -> float:
        """Representative value of bucket *index* (relative error <= a)."""
        if index == 0:
            return self._min_value
        # Bucket covers (min * gamma**(index-1), min * gamma**index]; the
        # estimate 2 * gamma**index / (gamma + 1) * min is within a factor
        # (1 ± a) of both endpoints.
        return self._min_value * (2.0 * self._gamma ** index / (self._gamma + 1.0))

    def percentile(self, p: float) -> float:
        """The *p*-th percentile estimate in the recorded unit (0.0 if empty).

        Uses the nearest-rank definition: the estimate corresponds to the
        ``ceil(p / 100 * count)``-th smallest observation and is within
        relative error :attr:`relative_accuracy` of that observation's true
        value (for observations inside the tracked range).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"p must be in [0, 100], got {p}")
        row = self._row
        count = float(row[0])
        if count <= 0:
            return 0.0
        rank = max(1.0, math.ceil(p / 100.0 * count))
        if rank >= count:
            return float(row[3])  # the top-ranked sample is the exact max
        cumulative = 0.0
        estimate = float(row[2])
        for index in range(self.row_length() - _HEADER):
            cumulative += row[_HEADER + index]
            if cumulative >= rank:
                estimate = self._bucket_estimate(index)
                break
        # Clamping to the observed extremes never hurts the bound (the true
        # ranked sample lies between them) and makes p0/p100 exact.
        return min(max(estimate, float(row[2])), float(row[3]))

    # --------------------------------------------------------------- merging
    def _check_compatible(self, other: "QuantileSketch") -> None:
        if (
            self._alpha != other._alpha
            or self._min_value != other._min_value
            or self._max_value != other._max_value
        ):
            raise ValueError("cannot merge sketches with different parameters")

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* into this sketch (*other* is unchanged).

        Merging is associative and commutative: any merge order over a set
        of sketches produces identical bucket counts (counts are integral,
        and float64 addition of integers is exact below 2**53).  The ``sum``
        cell is a float accumulation and may differ across orders by ULPs —
        it never feeds percentile estimates.
        """
        self._check_compatible(other)
        self._row[:] = merge_rows([self._row, other._row])

    # ----------------------------------------------------- flat float64 form
    def to_row(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy the flat ``[count, sum, min, max, buckets...]`` row out."""
        if out is None:
            return self._row.copy()
        if out.shape != self._row.shape:
            raise ValueError(
                f"row must have {self.row_length()} cells, got {out.shape}"
            )
        out[:] = self._row
        return out

    @classmethod
    def from_row(
        cls,
        row: Sequence[float],
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
    ) -> "QuantileSketch":
        """Rebuild a sketch from a :meth:`to_row` row (copying the counts)."""
        copy = np.array(row, dtype=np.float64)
        return cls(relative_accuracy, min_value, max_value, _row=copy)

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> Dict[str, object]:
        return {
            "relative_accuracy": self._alpha,
            "min_value": self._min_value,
            "max_value": self._max_value,
            "row": self._row.tolist(),
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        rebuilt = QuantileSketch.from_row(
            state["row"],
            relative_accuracy=state["relative_accuracy"],
            min_value=state["min_value"],
            max_value=state["max_value"],
        )
        for slot in self.__slots__:
            setattr(self, slot, getattr(rebuilt, slot))

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary in milliseconds (matching serving metrics)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": self.max * 1e3,
            "relative_accuracy": self._alpha,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self.count}, a={self._alpha}, "
            f"cells={self.row_length()})"
        )


def merge_rows(rows: Iterable[Sequence[float]]) -> np.ndarray:
    """Merge :meth:`QuantileSketch.to_row` rows without rebuilding sketches.

    Bucket counts, counts and sums add; min/max combine ignoring empty rows
    (whose 0.0 min would otherwise poison the merged minimum).  The result
    is a valid row for :meth:`QuantileSketch.from_row` with matching
    parameters.
    """
    merged: Optional[np.ndarray] = None
    min_seen = math.inf
    max_seen = -math.inf
    for row in rows:
        row = np.asarray(row, dtype=np.float64)
        if merged is None:
            merged = row.copy()
        else:
            if row.shape != merged.shape:
                raise ValueError("cannot merge rows of different lengths")
            merged[0] += row[0]
            merged[1] += row[1]
            merged[_HEADER:] += row[_HEADER:]
        if row[0] > 0:
            min_seen = min(min_seen, float(row[2]))
            max_seen = max(max_seen, float(row[3]))
    if merged is None:
        raise ValueError("need at least one row to merge")
    merged[2] = min_seen if math.isfinite(min_seen) else 0.0
    merged[3] = max_seen if math.isfinite(max_seen) else 0.0
    return merged


__all__ = [
    "DEFAULT_MAX_VALUE",
    "DEFAULT_MIN_VALUE",
    "DEFAULT_RELATIVE_ACCURACY",
    "QuantileSketch",
    "merge_rows",
    "sketch_row_length",
]
