"""Per-tenant SLO evaluation: error budgets, multi-window burn rates, alerts.

An SLO here is the standard two-part serving objective:

* an **availability target** (e.g. 99.9% of requests succeed), whose
  complement is the tenant's *error budget*;
* a **latency objective** (e.g. p99 <= 250 ms): a request slower than the
  threshold spends error budget exactly like a failed one, so "slow is the
  new down" falls out of the accounting instead of needing a second system.

Burn rate is the speed at which budget is being spent: a burn rate of 1
means the tenant exactly exhausts its budget over the SLO period; 14.4 means
a 30-day budget gone in two days.  Following the multiwindow, multi-burn-rate
alerting recipe (Google SRE workbook, ch. 5), the engine evaluates each
tenant over a **fast** (~5 min) and a **slow** (~1 h) rolling window on
monotonic time and fires only when *both* burn — the fast window makes
alerts responsive, the slow window stops a single bad second from paging.
Alert transitions (firing/resolved) are logged once, structured, on the
``repro.serve.slo`` logger.

Specs are declarative: a JSON file (``repro serve --slo-config slo.json``)
with a fleet-wide ``default`` and per-tenant overrides::

    {
      "default": {"availability": 0.999, "latency_ms": 250, "latency_percentile": 99},
      "tenants": {"model-0": {"availability": 0.99, "latency_ms": 100}}
    }

Tenant entries may be partial — unset fields inherit the default.  The
engine itself is clock-injectable and serving-agnostic: the serving layer
calls :meth:`SLOEngine.record` per request and :meth:`SLOEngine.snapshot`
from ``/v1/metrics``.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.sketch import QuantileSketch

logger = logging.getLogger("repro.serve.slo")

#: Fast/slow rolling-window lengths in seconds (~5 min / ~1 h).
FAST_WINDOW_SECONDS = 300.0
SLOW_WINDOW_SECONDS = 3600.0

#: Default page threshold: both windows burning >= 14.4x exhausts a 30-day
#: budget in under 2.1 days (the classic first-tier page condition).
DEFAULT_ALERT_BURN_RATE = 14.4


@dataclass(frozen=True)
class SLOSpec:
    """One tenant's objective: availability target + latency threshold."""

    availability: float = 0.999
    latency_ms: float = 250.0
    latency_percentile: float = 99.0

    def __post_init__(self):
        if not 0.0 < self.availability < 1.0:
            raise ValueError(
                f"availability must be in (0, 1), got {self.availability}"
            )
        if not self.latency_ms > 0.0:
            raise ValueError(f"latency_ms must be positive, got {self.latency_ms}")
        if not 0.0 < self.latency_percentile <= 100.0:
            raise ValueError(
                f"latency_percentile must be in (0, 100], got "
                f"{self.latency_percentile}"
            )

    @property
    def error_budget(self) -> float:
        """Allowed bad-event fraction (1 - availability)."""
        return 1.0 - self.availability

    def merged(self, overrides: Dict[str, object]) -> "SLOSpec":
        """A spec with *overrides* applied over this one (partial dicts ok)."""
        unknown = set(overrides) - {"availability", "latency_ms", "latency_percentile"}
        if unknown:
            raise ValueError(f"unknown SLO spec fields: {sorted(unknown)}")
        return SLOSpec(
            availability=float(overrides.get("availability", self.availability)),
            latency_ms=float(overrides.get("latency_ms", self.latency_ms)),
            latency_percentile=float(
                overrides.get("latency_percentile", self.latency_percentile)
            ),
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "availability": self.availability,
            "latency_ms": self.latency_ms,
            "latency_percentile": self.latency_percentile,
        }


class SLOConfig:
    """A fleet default spec plus per-tenant overrides."""

    def __init__(
        self,
        default: Optional[SLOSpec] = None,
        tenants: Optional[Dict[str, SLOSpec]] = None,
    ):
        self.default = default or SLOSpec()
        self.tenants = dict(tenants or {})

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SLOConfig":
        if not isinstance(payload, dict):
            raise ValueError("SLO config must be a JSON object")
        unknown = set(payload) - {"default", "tenants"}
        if unknown:
            raise ValueError(f"unknown SLO config keys: {sorted(unknown)}")
        default = SLOSpec().merged(payload.get("default", {}))
        tenants_raw = payload.get("tenants", {})
        if not isinstance(tenants_raw, dict):
            raise ValueError("'tenants' must map tenant name -> spec object")
        tenants = {
            str(name): default.merged(spec) for name, spec in tenants_raw.items()
        }
        return cls(default=default, tenants=tenants)

    @classmethod
    def from_file(cls, path: "str | Path") -> "SLOConfig":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON in SLO config {path}: {error}") from None
        return cls.from_dict(payload)

    def for_tenant(self, name: str) -> SLOSpec:
        return self.tenants.get(name, self.default)

    def to_dict(self) -> Dict[str, object]:
        return {
            "default": self.default.to_dict(),
            "tenants": {name: spec.to_dict() for name, spec in self.tenants.items()},
        }


class _RollingWindow:
    """Good/bad counters over a rolling window of per-bucket cells.

    The ring is indexed by absolute bucket id modulo its size; a cell is
    lazily reset when a new bucket id claims its slot, so neither recording
    nor reading ever scans more than the ring.  Works on any monotonically
    non-decreasing clock.
    """

    def __init__(self, window_seconds: float, num_buckets: int = 60):
        self.window_seconds = float(window_seconds)
        self._bucket_seconds = self.window_seconds / num_buckets
        self._good = [0] * num_buckets
        self._bad = [0] * num_buckets
        self._ids = [-1] * num_buckets

    def _slot(self, now: float) -> int:
        bucket_id = int(now // self._bucket_seconds)
        slot = bucket_id % len(self._ids)
        if self._ids[slot] != bucket_id:
            self._ids[slot] = bucket_id
            self._good[slot] = 0
            self._bad[slot] = 0
        return slot

    def record(self, good: bool, now: float) -> None:
        slot = self._slot(now)
        if good:
            self._good[slot] += 1
        else:
            self._bad[slot] += 1

    def totals(self, now: float) -> Tuple[int, int]:
        """(good, bad) over the window ending at *now*."""
        current = int(now // self._bucket_seconds)
        good = bad = 0
        for slot, bucket_id in enumerate(self._ids):
            if bucket_id >= 0 and current - bucket_id < len(self._ids):
                good += self._good[slot]
                bad += self._bad[slot]
        return good, bad


class _TenantSLO:
    """Rolling + lifetime SLI state for one tenant."""

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.fast = _RollingWindow(FAST_WINDOW_SECONDS)
        self.slow = _RollingWindow(SLOW_WINDOW_SECONDS)
        self.requests = 0
        self.bad_requests = 0
        self.failures = 0
        self.latency = QuantileSketch()
        self.alerting = False

    def record(self, ok: bool, latency_s: float, now: float) -> bool:
        """Record one request; returns whether the event was *good*."""
        slow_request = latency_s * 1e3 > self.spec.latency_ms
        good = ok and not slow_request
        self.requests += 1
        if not ok:
            self.failures += 1
        if not good:
            self.bad_requests += 1
        if latency_s > 0.0:
            self.latency.record(latency_s)
        self.fast.record(good, now)
        self.slow.record(good, now)
        return good

    @staticmethod
    def _burn(good: int, bad: int, budget: float) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def budget_remaining(self) -> float:
        """Lifetime error-budget fraction left (1.0 = untouched, 0.0 = blown).

        Clamped to [0, 1]: a tenant ten times over budget is just as
        breached as one barely over, and downstream consumers (reports,
        dashboards) treat this as a fraction.
        """
        if self.requests == 0:
            return 1.0
        consumed = (self.bad_requests / self.requests) / self.spec.error_budget
        return min(1.0, max(0.0, 1.0 - consumed))

    def evaluate(self, now: float, alert_burn_rate: float) -> Dict[str, object]:
        budget = self.spec.error_budget
        fast_good, fast_bad = self.fast.totals(now)
        slow_good, slow_bad = self.slow.totals(now)
        fast_burn = self._burn(fast_good, fast_bad, budget)
        slow_burn = self._burn(slow_good, slow_bad, budget)
        remaining = self.budget_remaining()
        alerting = fast_burn >= alert_burn_rate and slow_burn >= alert_burn_rate
        latency_at_objective_ms = (
            self.latency.percentile(self.spec.latency_percentile) * 1e3
        )
        if remaining <= 0.0:
            verdict = "breached"
        elif alerting:
            verdict = "at_risk"
        else:
            verdict = "ok"
        return {
            "spec": self.spec.to_dict(),
            "requests": self.requests,
            "bad_requests": self.bad_requests,
            "failures": self.failures,
            "budget_remaining": remaining,
            "windows": {
                "fast": {
                    "seconds": self.fast.window_seconds,
                    "good": fast_good,
                    "bad": fast_bad,
                    "burn_rate": fast_burn,
                },
                "slow": {
                    "seconds": self.slow.window_seconds,
                    "good": slow_good,
                    "bad": slow_bad,
                    "burn_rate": slow_burn,
                },
            },
            "latency": {
                "count": self.latency.count,
                "p50_ms": self.latency.percentile(50) * 1e3,
                "p95_ms": self.latency.percentile(95) * 1e3,
                "p99_ms": self.latency.percentile(99) * 1e3,
                "objective_ms": latency_at_objective_ms,
                "objective_met": (
                    latency_at_objective_ms <= self.spec.latency_ms
                    if self.latency.count
                    else True
                ),
            },
            "alerting": alerting,
            "verdict": verdict,
        }


class SLOEngine:
    """Evaluates every tenant's SLO and logs alert transitions.

    Thread-safe: the serving layer records from request threads while the
    metrics endpoint snapshots concurrently.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        alert_burn_rate: float = DEFAULT_ALERT_BURN_RATE,
    ):
        if not alert_burn_rate > 0.0:
            raise ValueError(f"alert_burn_rate must be positive, got {alert_burn_rate}")
        self.config = config or SLOConfig()
        self.alert_burn_rate = float(alert_burn_rate)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantSLO] = {}

    def _tenant(self, name: str) -> _TenantSLO:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = _TenantSLO(self.config.for_tenant(name))
        return tenant

    def record(self, tenant: str, ok: bool, latency_s: float) -> None:
        """Record one request outcome for *tenant* and re-check its alert.

        ``ok`` is availability (did the request succeed); a successful
        request slower than the tenant's latency threshold still spends
        error budget.
        """
        now = self._clock()
        with self._lock:
            state = self._tenant(tenant)
            state.record(ok, float(latency_s), now)
            self._check_alert(tenant, state, now)

    def _check_alert(self, name: str, state: _TenantSLO, now: float) -> None:
        budget = state.spec.error_budget
        fast_burn = state._burn(*state.fast.totals(now), budget)
        slow_burn = state._burn(*state.slow.totals(now), budget)
        alerting = (
            fast_burn >= self.alert_burn_rate and slow_burn >= self.alert_burn_rate
        )
        if alerting == state.alerting:
            return
        state.alerting = alerting
        level = logging.WARNING if alerting else logging.INFO
        logger.log(
            level,
            "slo_alert tenant=%s state=%s burn_fast=%.2f burn_slow=%.2f "
            "budget_remaining=%.4f threshold=%.1f",
            name,
            "firing" if alerting else "resolved",
            fast_burn,
            slow_burn,
            state.budget_remaining(),
            self.alert_burn_rate,
        )

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready SLO state for ``/v1/metrics`` (the ``slo`` block)."""
        now = self._clock()
        with self._lock:
            tenants = {
                name: state.evaluate(now, self.alert_burn_rate)
                for name, state in sorted(self._tenants.items())
            }
        return {
            "alert_burn_rate": self.alert_burn_rate,
            "default_spec": self.config.default.to_dict(),
            "tenants": tenants,
        }


__all__ = [
    "DEFAULT_ALERT_BURN_RATE",
    "FAST_WINDOW_SECONDS",
    "SLOW_WINDOW_SECONDS",
    "SLOConfig",
    "SLOEngine",
    "SLOSpec",
]
