"""Trace-file analysis: per-stage latency breakdowns for ``repro trace-summary``.

A trace file is small (one line per span, written only for sampled requests),
so the summary works on exact durations — no histogram bucketing — and can
afford per-trace stitching checks: how many traces are complete trees, and
which stage dominates the critical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.trace import parse_trace_file

#: Canonical stage ordering for display; unknown stages sort after these.
STAGE_ORDER = (
    "request",
    "validate",
    "cache_lookup",
    "queue_wait",
    "batch_execute",
    "dispatch",
    "worker:score",
    "merge",
    "respond",
)


def summarize_spans(spans: Sequence[Dict]) -> Dict[str, object]:
    """Aggregate span records into per-stage statistics.

    Returns ``{"traces": N, "stages": {name: {count, mean_ms, p50_ms,
    p95_ms, p99_ms, max_ms, total_ms}}, "orphans": M}`` where *orphans*
    counts spans whose ``parent`` id never appears in the file (beyond
    roots) — a stitching failure indicator.
    """
    by_stage: Dict[str, List[float]] = {}
    span_ids = set()
    traces = set()
    for span in spans:
        by_stage.setdefault(span["name"], []).append(float(span["dur_ms"]))
        span_ids.add(span["span"])
        traces.add(span["trace"])
    orphans = sum(
        1 for span in spans if span.get("parent") and span["parent"] not in span_ids
    )
    stages = {}
    for name, durations in by_stage.items():
        values = np.asarray(durations, dtype=np.float64)
        stages[name] = {
            "count": int(values.size),
            "mean_ms": float(values.mean()),
            "p50_ms": float(np.percentile(values, 50)),
            "p95_ms": float(np.percentile(values, 95)),
            "p99_ms": float(np.percentile(values, 99)),
            "max_ms": float(values.max()),
            "total_ms": float(values.sum()),
        }
    return {"traces": len(traces), "spans": len(spans), "orphans": orphans, "stages": stages}


def summarize_trace_file(path) -> Dict[str, object]:
    """Parse *path* (JSONL trace file) and summarise it."""
    return summarize_spans(parse_trace_file(path))


def slowest_exemplars(
    spans: Sequence[Dict], k: int = 5, stage: str = "request"
) -> List[Dict[str, object]]:
    """The *k* slowest *stage* spans, slowest first — the trace-file side of
    the exemplar story: the metrics exemplars point at the worst recent
    ``trace_id``; this answers "which traces were worst over the whole file".
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rows = sorted(
        (span for span in spans if span["name"] == stage),
        key=lambda span: float(span["dur_ms"]),
        reverse=True,
    )
    return [
        {
            "trace_id": span["trace"],
            "dur_ms": float(span["dur_ms"]),
            "model": (span.get("attrs") or {}).get("model"),
        }
        for span in rows[:k]
    ]


def format_exemplars(exemplars: Sequence[Dict], stage: str = "request") -> str:
    """Render :func:`slowest_exemplars` output as a table."""
    from repro.eval.tables import format_table

    rows = [
        [
            row["trace_id"],
            row["model"] or "-",
            f"{row['dur_ms']:.3f}",
        ]
        for row in exemplars
    ]
    return format_table(
        ["trace id", "model", "dur ms"],
        rows,
        title=f"Slowest {stage!r} spans (trace exemplars)",
    )


def _stage_sort_key(name: str):
    try:
        return (0, STAGE_ORDER.index(name))
    except ValueError:
        return (1, name)


def format_trace_summary(summary: Dict[str, object], title: Optional[str] = None) -> str:
    """Render a per-stage latency table from :func:`summarize_spans` output."""
    from repro.eval.tables import format_table

    rows = []
    for name in sorted(summary["stages"], key=_stage_sort_key):
        stage = summary["stages"][name]
        rows.append(
            [
                name,
                str(stage["count"]),
                f"{stage['mean_ms']:.3f}",
                f"{stage['p50_ms']:.3f}",
                f"{stage['p95_ms']:.3f}",
                f"{stage['p99_ms']:.3f}",
                f"{stage['max_ms']:.3f}",
            ]
        )
    header = ["stage", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"]
    caption = title or (
        f"Trace summary: {summary['traces']} traces, {summary['spans']} spans"
        + (f", {summary['orphans']} orphan spans" if summary["orphans"] else "")
    )
    return format_table(header, rows, title=caption)


__all__ = [
    "STAGE_ORDER",
    "format_exemplars",
    "format_trace_summary",
    "slowest_exemplars",
    "summarize_spans",
    "summarize_trace_file",
]
