"""Request-scoped tracing: spans, context propagation, and the JSONL sink.

One request through the serving stack crosses threads (HTTP handler →
micro-batch collector → scheduler executor) and processes (dispatcher →
cluster workers).  This module gives every request a *trace*: a tree of
timed spans that survives both hops.

Design constraints, in priority order:

1. **The unsampled path must cost nothing.**  When tracing is disabled or a
   request is not sampled, :meth:`Tracer.start_span` returns one shared
   no-op span — no allocation, no clock reads, no lock.  That is what lets
   the serving benchmarks run with tracing compiled in.
2. **One writer.**  Worker processes never open the trace file.  Their spans
   travel back over the reply pipe as plain dictionaries (see
   :func:`span_record`) and the dispatcher stitches them into the parent
   trace via :meth:`Tracer.emit_record` — so the JSONL file is written by
   exactly one process and needs only a thread lock.
3. **Explicit parents beat ambient magic across boundaries.**  Within a
   thread, spans nest through a thread-local stack; across threads and
   pipes, a picklable :class:`SpanContext` is handed over explicitly.

Trace-file schema (one JSON object per line)::

    {"v": 1, "trace": "<16 hex>", "span": "<16 hex>", "parent": "<16 hex>"|null,
     "name": "<stage>", "ts": <epoch seconds>, "dur_ms": <float>,
     "pid": <int>, "attrs": {...}}

Configuration: ``configure_tracing(path, sample_rate)`` programmatically, or
the ``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE`` environment variables for the
CLI entry points.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import uuid
from collections import deque
from typing import Dict, List, NamedTuple, Optional

SCHEMA_VERSION = 1


class SpanContext(NamedTuple):
    """The picklable address of a span: enough to parent a child anywhere."""

    trace_id: str
    span_id: str


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class _NullSpan:
    """The shared do-nothing span handed out on every unsampled path."""

    __slots__ = ()

    trace_id = None
    span_id = None
    context = None
    sampled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SuppressedSpan(_NullSpan):
    """The no-op span for a request whose root lost the sampling coin.

    Unlike :data:`NULL_SPAN` it still participates in the thread-local
    nesting discipline (a depth counter, not a stack — nothing to allocate),
    so spans opened *inside* an unsampled request are suppressed too instead
    of flipping fresh root coins and polluting the file with orphan traces.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self) -> "_SuppressedSpan":
        local = self._tracer._local
        local.suppressed = getattr(local, "suppressed", 0) + 1
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer._local.suppressed -= 1
        return False


class Span:
    """A recording span; use as a context manager (emitted on exit)."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "start_time",
        "duration_s",
        "_start_perf",
        "_tracer",
    )

    sampled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[dict] = None,
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.start_time = time.time()
        self.duration_s = 0.0
        self._start_perf = time.perf_counter()

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, key: str, value) -> None:
        """Attach one attribute (must be JSON-serialisable)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.duration_s = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        self._tracer._emit(self)
        return False


def span_record(
    name: str,
    parent: SpanContext,
    start_time: float,
    duration_s: float,
    attrs: Optional[dict] = None,
    pid: Optional[int] = None,
) -> dict:
    """Build a finished-span dictionary without a :class:`Tracer`.

    This is the worker-process half of cross-process stitching: a cluster
    worker times its work, builds one of these, and ships it back over the
    reply pipe; the dispatcher writes it with :meth:`Tracer.emit_record`.
    """
    return {
        "v": SCHEMA_VERSION,
        "trace": parent.trace_id,
        "span": _new_id(),
        "parent": parent.span_id,
        "name": name,
        "ts": start_time,
        "dur_ms": duration_s * 1e3,
        "pid": os.getpid() if pid is None else int(pid),
        "attrs": dict(attrs) if attrs else {},
    }


class JsonlSink:
    """Append-only JSONL trace writer (thread-safe; one process only)."""

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            # Spans are written once per request, not per sample — flushing
            # keeps the file tail-able and crash-complete at negligible cost.
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()


class MemorySink:
    """In-memory sink collecting span records (tests, trace assertions).

    Retention is bounded: only the most recent ``max_records`` spans are
    kept, so a long-lived tracer pointed at a MemorySink cannot grow without
    limit.  ``dropped`` counts what aged out.
    """

    #: Default retention: plenty for tests, bounded for soaks.
    DEFAULT_MAX_RECORDS = 10_000

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS):
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = int(max_records)
        self.dropped = 0
        self._records: "deque[dict]" = deque(maxlen=self.max_records)
        self._lock = threading.Lock()

    @property
    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def write(self, record: dict) -> None:
        with self._lock:
            if len(self._records) == self.max_records:
                self.dropped += 1
            self._records.append(record)

    def close(self) -> None:
        pass


class Tracer:
    """Creates spans, decides sampling, and owns the sink.

    Parameters
    ----------
    sink:
        Anything with ``write(record: dict)`` / ``close()``; ``None``
        disables tracing entirely (every span is the shared null span).
    sample_rate:
        Probability in ``[0, 1]`` that a *root* span — and therefore its
        whole trace — is recorded.  Children of a sampled parent are always
        recorded; children of an unsampled parent never are.
    seed:
        Optional seed for the sampling RNG (deterministic tests).
    """

    def __init__(self, sink=None, sample_rate: float = 1.0, seed: Optional[int] = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sink = sink
        self.sample_rate = float(sample_rate)
        self._rng = random.Random(seed)
        self._local = threading.local()
        self._suppressed_span = _SuppressedSpan(self)

    @property
    def enabled(self) -> bool:
        return self.sink is not None and self.sample_rate > 0.0

    # ------------------------------------------------------------------ spans
    def start_span(self, name: str, parent=None, attrs: Optional[dict] = None):
        """Open a span; use the result as a context manager.

        ``parent`` may be a :class:`SpanContext` (explicit cross-thread /
        cross-pipe parenting) or ``None``, in which case the span nests
        under the calling thread's current span — or starts a new trace
        (root), which is where the sampling decision is made.
        """
        if self.sink is None:
            return NULL_SPAN
        if parent is None:
            stack = getattr(self._local, "stack", None)
            if stack:
                current = stack[-1]
                return Span(self, name, current.trace_id, current.span_id, attrs)
            if getattr(self._local, "suppressed", 0):
                # Inside an unsampled request: stay suppressed rather than
                # minting an orphan root trace.
                return self._suppressed_span
            # Root span: the one place the sampling coin is flipped.
            if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
                return self._suppressed_span
            return Span(self, name, _new_id(), None, attrs)
        if isinstance(parent, SpanContext):
            return Span(self, name, parent.trace_id, parent.span_id, attrs)
        if parent is NULL_SPAN or parent is None:  # pragma: no cover - defensive
            return NULL_SPAN
        raise TypeError(f"parent must be a SpanContext or None, got {type(parent)!r}")

    def current_context(self) -> Optional[SpanContext]:
        """The calling thread's innermost open span context (or ``None``)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context
        return None

    def emit_span(
        self,
        name: str,
        parent: Optional[SpanContext],
        start_time: float,
        duration_s: float,
        attrs: Optional[dict] = None,
    ) -> None:
        """Record an already-timed span (e.g. queue wait measured after the
        fact); no-op unless *parent* is a sampled context."""
        if self.sink is None or parent is None:
            return
        self.sink.write(span_record(name, parent, start_time, duration_s, attrs))

    def emit_record(self, record: dict) -> None:
        """Write a pre-built span record (worker-side spans being stitched)."""
        if self.sink is not None and record:
            self.sink.write(record)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    # -------------------------------------------------------------- internals
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - unbalanced exits
            stack.remove(span)

    def _emit(self, span: Span) -> None:
        sink = self.sink
        if sink is None:  # pragma: no cover - sink closed mid-span
            return
        sink.write(
            {
                "v": SCHEMA_VERSION,
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": span.start_time,
                "dur_ms": span.duration_s * 1e3,
                "pid": os.getpid(),
                "attrs": span.attrs,
            }
        )


# --------------------------------------------------------------- global tracer
_GLOBAL_TRACER: Optional[Tracer] = None
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer.

    Resolved once: an explicit :func:`configure_tracing` /
    :func:`set_tracer` wins; otherwise ``REPRO_TRACE`` (trace-file path) and
    ``REPRO_TRACE_SAMPLE`` (sampling probability, default 1.0) are consulted;
    with neither, tracing is disabled.
    """
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        if _GLOBAL_TRACER is None:
            path = os.environ.get("REPRO_TRACE")
            rate = float(os.environ.get("REPRO_TRACE_SAMPLE", "1.0"))
            if path:
                _GLOBAL_TRACER = Tracer(JsonlSink(path), sample_rate=rate)
            else:
                _GLOBAL_TRACER = Tracer()
        return _GLOBAL_TRACER


def configure_tracing(path, sample_rate: float = 1.0) -> Tracer:
    """Install a JSONL-backed global tracer; returns it (caller may close)."""
    tracer = Tracer(JsonlSink(path), sample_rate=sample_rate)
    set_tracer(tracer)
    return tracer


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Replace the global tracer (``None`` re-enables env resolution)."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        _GLOBAL_TRACER = tracer


def parse_trace_file(path) -> List[Dict]:
    """Read a JSONL trace file into a list of span dictionaries.

    Raises ``ValueError`` on any malformed line — the CI smoke job leans on
    this being strict.
    """
    spans: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}")
            for key in ("trace", "span", "name", "ts", "dur_ms"):
                if key not in record:
                    raise ValueError(
                        f"{path}:{line_number}: span record is missing {key!r}"
                    )
            spans.append(record)
    return spans


__all__ = [
    "SCHEMA_VERSION",
    "JsonlSink",
    "MemorySink",
    "NULL_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "parse_trace_file",
    "set_tracer",
    "span_record",
]
