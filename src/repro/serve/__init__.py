"""repro.serve — packed-inference serving layer.

The paper's deployment story is that a trained HDC model is nothing but a set
of binary class hypervectors, so inference reduces to XOR + popcount over
bit-packed words.  This subpackage turns that observation into an actual
serving stack:

* :mod:`repro.serve.engine` — :class:`PackedInferenceEngine` compiles a fitted
  :class:`~repro.classifiers.pipeline.HDCPipeline` into the packed
  representation once, precomputes the encoder's item-memory lookup tables,
  and answers predictions over the XOR+popcount path;
* :mod:`repro.serve.batching` — :class:`BatchScheduler` coalesces concurrent
  single-sample requests into NumPy micro-batches;
* :mod:`repro.serve.registry` — :class:`ModelRegistry` versions, hot-swaps and
  LRU-caches resident engines;
* :mod:`repro.serve.metrics` — per-model request counters and latency
  histograms;
* :mod:`repro.serve.server` — a stdlib-only JSON-over-HTTP front-end
  (``POST /v1/predict`` and friends) with a version-keyed LRU prediction
  cache and optional multiprocess execution through
  :mod:`repro.cluster` (``ServeApp(num_processes=N)``: shared-memory model
  residency, sharded batches, crash-respawning workers);
* :mod:`repro.serve.bench` — the serving throughput benchmark shared by
  ``python -m repro bench-serve`` and ``benchmarks/bench_serving_throughput.py``.
"""

from repro.serve.batching import BatchScheduler
from repro.serve.engine import PackedInferenceEngine
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, ModelMetrics
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeApp, create_server

__all__ = [
    "PackedInferenceEngine",
    "BatchScheduler",
    "ModelRegistry",
    "MetricsRegistry",
    "ModelMetrics",
    "LatencyHistogram",
    "ServeApp",
    "create_server",
]
