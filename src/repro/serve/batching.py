"""Micro-batching: coalesce single-sample requests into NumPy batches.

A packed engine answers a 64-sample batch in barely more time than a single
sample — the per-call cost is dominated by Python/NumPy dispatch, not by the
XOR+popcount arithmetic.  :class:`BatchScheduler` exploits that: concurrent
callers submit one sample each, a collector thread gathers whatever arrives
within ``max_wait_ms`` (up to ``max_batch_size``), and a worker pool runs the
engine once per coalesced batch.

The design is deliberately simple and stdlib-only:

* ``submit`` enqueues a request and returns a ``concurrent.futures.Future``;
* ``predict`` / ``top_k`` are the synchronous conveniences (submit + wait);
* one collector thread owns the queue; ``num_workers`` pool threads execute
  engine calls, so collection never blocks behind a slow batch.

The engine may be passed directly or as a zero-argument callable resolved per
batch — the latter is how the server stays correct across registry hot-swaps.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.cluster.errors import DeadlineExceededError
from repro.obs.trace import SpanContext, Tracer, get_tracer
from repro.serve.engine import PackedInferenceEngine
from repro.serve.metrics import ModelMetrics

EngineSource = Union[PackedInferenceEngine, Callable[[], PackedInferenceEngine]]


class SchedulerOverloadedError(RuntimeError):
    """The bounded request queue is full — shed this request.

    Raised by :meth:`BatchScheduler.submit` *before* enqueueing, so an
    overloaded scheduler fails fast instead of building an unbounded backlog
    whose tail latency outlives any client.  The HTTP layer maps it to
    429 + ``Retry-After``.
    """


class _Request:
    __slots__ = (
        "features",
        "top_k",
        "future",
        "trace",
        "deadline",
        "enqueued",
        "enqueued_wall",
    )

    def __init__(
        self,
        features: np.ndarray,
        top_k: int,
        future: Future,
        trace: Optional[SpanContext] = None,
        deadline: Optional[float] = None,
    ):
        self.features = features
        self.top_k = top_k
        self.future = future
        self.trace = trace
        #: absolute ``time.monotonic()`` instant after which the caller no
        #: longer wants the answer; ``None`` means no deadline.
        self.deadline = deadline
        #: perf-counter enqueue time; consumed (set to None) once the
        #: queue-wait has been recorded, so retry re-runs never double-count.
        self.enqueued = time.perf_counter()
        self.enqueued_wall = time.time()


class BatchScheduler:
    """Queue single-sample requests and run them as coalesced batches.

    Parameters
    ----------
    engine:
        A :class:`PackedInferenceEngine`, or a zero-argument callable
        returning one (resolved once per batch; enables hot-swapping).
    max_batch_size:
        Upper bound on samples per coalesced batch.
    max_wait_ms:
        How long the collector waits for more requests after the first one
        before flushing a partial batch.
    num_workers:
        Pool threads executing engine calls.
    max_queue_depth:
        Admission bound: when this many requests are already waiting,
        :meth:`submit` raises :class:`SchedulerOverloadedError` instead of
        enqueueing (``None``, the default, keeps the queue unbounded).
    metrics:
        Optional :class:`ModelMetrics` receiving batch sizes, latencies, and
        the ``queue_wait`` / ``batch_execute`` stage histograms.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When a submitted request
        carries a span context, the scheduler emits its ``queue_wait`` span
        and wraps the engine call in a ``batch_execute`` span (parented to
        the first traced request of the coalesced batch), so dispatcher- and
        worker-side spans stitch into the caller's trace.  Defaults to the
        process-wide tracer (disabled unless configured).
    """

    def __init__(
        self,
        engine: EngineSource,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        num_workers: int = 1,
        max_queue_depth: Optional[int] = None,
        metrics: Optional[ModelMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self._resolve_engine = engine if callable(engine) else (lambda: engine)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.max_queue_depth = (
            None if max_queue_depth is None else int(max_queue_depth)
        )
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="serve-batch"
        )
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else get_tracer()
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-collector", daemon=True
        )
        self._collector.start()

    # ----------------------------------------------------------------- public
    def submit(
        self,
        features: np.ndarray,
        top_k: int = 1,
        trace: Optional[SpanContext] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Enqueue one sample; the future resolves to ``(labels, scores)``.

        ``labels`` and ``scores`` are 1-D arrays of length ``top_k`` (best
        class first).  ``trace`` is the caller's span context (its request
        crosses into the collector thread here, so ambient nesting cannot
        follow it).  ``deadline`` is an absolute ``time.monotonic()`` instant:
        a request still queued (or mid-batch) past it fails with
        :class:`~repro.cluster.errors.DeadlineExceededError` instead of being
        scored.  Raises ``RuntimeError`` after :meth:`stop` and
        :class:`SchedulerOverloadedError` when the bounded queue is full.
        """
        if self._closed:
            raise RuntimeError("BatchScheduler is stopped")
        if (
            self.max_queue_depth is not None
            and self._queue.qsize() >= self.max_queue_depth
        ):
            raise SchedulerOverloadedError(
                f"request queue is full ({self.max_queue_depth} waiting)"
            )
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValueError(
                f"submit takes a single 1-D feature vector, got shape {features.shape}"
            )
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        future: Future = Future()
        self._queue.put(
            _Request(features, int(top_k), future, trace=trace, deadline=deadline)
        )
        return future

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be collected into a batch."""
        return self._queue.qsize()

    def predict(self, features: np.ndarray, timeout: Optional[float] = None) -> int:
        """Synchronous single-sample prediction through the micro-batcher."""
        labels, _ = self.submit(features, top_k=1).result(timeout=timeout)
        return int(labels[0])

    def top_k(
        self,
        features: np.ndarray,
        k: int = 5,
        timeout: Optional[float] = None,
        trace: Optional[SpanContext] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous single-sample top-k through the micro-batcher."""
        future = self.submit(features, top_k=k, trace=trace, deadline=deadline)
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 5.0) -> None:
        """Drain the queue, stop the collector, and shut the worker pool.

        Requests already collected are executed; anything still queued when
        the collector exits (including requests racing a concurrent
        ``submit``) has its future failed rather than left hanging.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._collector.join(timeout=timeout)
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not None:
                leftover.future.set_exception(
                    RuntimeError("BatchScheduler stopped before the request ran")
                )
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- internals
    def _collect_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                return
            batch = [request]
            deadline = time.monotonic() + self.max_wait_seconds
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    # Shutdown requested: run what we have, then exit.
                    self._executor.submit(self._run_batch, batch)
                    return
                batch.append(item)
            self._executor.submit(self._run_batch, batch)

    def _run_batch(self, batch: List[_Request]) -> None:
        started = time.perf_counter()
        # Queue wait ends when the executor picks the batch up.  Recorded
        # exactly once per request (``enqueued`` is consumed), so the
        # per-request retry path below cannot double-count.
        batch_parent: Optional[SpanContext] = None
        for request in batch:
            if request.enqueued is None:
                continue
            waited = started - request.enqueued
            if self._metrics is not None:
                self._metrics.record_stage("queue_wait", waited)
            if request.trace is not None:
                self._tracer.emit_span(
                    "queue_wait", request.trace, request.enqueued_wall, waited
                )
                if batch_parent is None:
                    batch_parent = request.trace
            request.enqueued = None
        if batch_parent is None:
            # Retry path or untraced batch: keep nesting under the first
            # traced request so dispatcher spans still stitch somewhere.
            batch_parent = next(
                (request.trace for request in batch if request.trace is not None), None
            )
        # Shed requests whose deadline already passed while they queued —
        # scoring them would be dead work the caller has stopped waiting for.
        now = time.monotonic()
        expired = [
            request
            for request in batch
            if request.deadline is not None and now >= request.deadline
        ]
        if expired:
            for request in expired:
                request.future.set_exception(
                    DeadlineExceededError("request deadline expired in queue")
                )
            batch = [request for request in batch if request not in expired]
            if not batch:
                return
        span = (
            self._tracer.start_span(
                "batch_execute",
                parent=batch_parent,
                attrs={"batch_size": len(batch)},
            )
            if batch_parent is not None
            else None
        )
        try:
            engine = self._resolve_engine()
            features = np.stack([request.features for request in batch])
            k = max(request.top_k for request in batch)
            kwargs = {}
            if getattr(engine, "accepts_deadline", False):
                # Propagate the batch's loosest deadline into the op control
                # frame — workers skip shards only when *every* rider is
                # already dead, so one tight-deadline request can never expire
                # its batchmates.
                deadlines = [request.deadline for request in batch]
                if all(value is not None for value in deadlines):
                    kwargs["deadline"] = max(deadlines)
            if span is not None:
                with span:
                    labels, scores = engine.top_k(features, k=k, **kwargs)
            else:
                labels, scores = engine.top_k(features, k=k, **kwargs)
        except BaseException as error:
            # One malformed request (e.g. wrong feature width) must not poison
            # the whole coalesced batch: re-run each request individually so
            # only the offending callers see the error.
            if len(batch) > 1:
                for request in batch:
                    self._run_batch([request])
                return
            if self._metrics is not None:
                self._metrics.record_error()
            batch[0].future.set_exception(error)
            return
        elapsed = time.perf_counter() - started
        if self._metrics is not None:
            self._metrics.record_batch(len(batch))
            # The batch's traced parent (if any) becomes the latency
            # exemplar, linking the slow histogram bucket to a full trace.
            self._metrics.record_request(
                len(batch),
                elapsed,
                trace_id=batch_parent.trace_id if batch_parent is not None else None,
            )
            self._metrics.record_stage("batch_execute", elapsed)
        finished = time.monotonic()
        for row, request in enumerate(batch):
            if request.deadline is not None and finished >= request.deadline:
                # The answer exists but arrived late; a deadline is a
                # *promise* ("zero requests outlive their deadline"), so the
                # caller gets 504, not a stale success.
                request.future.set_exception(
                    DeadlineExceededError("request deadline expired mid-batch")
                )
                continue
            k_i = min(request.top_k, labels.shape[1])
            request.future.set_result((labels[row, :k_i], scores[row, :k_i]))


__all__ = ["BatchScheduler", "SchedulerOverloadedError"]
