"""Serving throughput benchmark shared by the CLI and the benchmark harness.

Measures the four corners of the serving design space on one trained model —
{single-sample, micro-batched} × {dense pipeline, packed engine} — plus the
concurrent :class:`~repro.serve.batching.BatchScheduler` path that the HTTP
server actually runs.  The headline number the ISSUE acceptance criteria care
about is ``batched-packed / single-dense``: micro-batched packed inference
must beat naive per-request dense serving by a wide margin.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import RecordEncoder
from repro.serve.batching import BatchScheduler
from repro.serve.engine import PackedInferenceEngine
from repro.serve.metrics import ModelMetrics


def _throughput(run, num_samples: int, repeats: int = 3) -> float:
    """Best-of-*repeats* samples/second for callable *run* (one full pass)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return num_samples / best if best > 0 else float("inf")


def run_serving_benchmark(
    dimension: int = 4000,
    num_features: int = 64,
    num_classes: int = 10,
    num_samples: int = 256,
    batch_size: int = 64,
    max_wait_ms: float = 5.0,
    concurrency: int = 8,
    seed: int = 0,
    include_scheduler: bool = True,
) -> Dict[str, object]:
    """Train a small model and measure serving throughput across modes.

    Returns a dictionary with the per-mode samples/second (``rates``), the
    speedups relative to single-sample dense serving (``speedups``), the
    scheduler's observed batch-size distribution, and the model/bench
    configuration — ready for table formatting or JSON dumping.
    """
    train_features, train_labels, test_features, _ = make_gaussian_classes(
        num_classes=num_classes,
        num_features=num_features,
        train_size=max(40 * num_classes, 200),
        test_size=num_samples,
        class_sep=2.5,
        seed=seed,
    )
    encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed
    )
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=seed))
    pipeline.fit(train_features, train_labels)
    engine = PackedInferenceEngine(pipeline, name="bench")
    engine.warmup()

    # The "dense" rows are the *naive deployment* baseline the speedups are
    # measured against: per-request dense scoring over an encoder held in its
    # factored (unfused, seed-equivalent per-feature loop) form.  Since the
    # kernel-layer refactor the default HDCPipeline is packed-native and rides
    # the same fused kernels as the engine, so benchmarking it would compare
    # the engine against itself; a twin encoder (same seed → identical item
    # memories and predictions) with the LUT budget at zero preserves the
    # original baseline semantics.
    dense_encoder = RecordEncoder(
        dimension=dimension, num_levels=16, tie_break="positive", seed=seed
    )
    dense_encoder.fit(train_features)
    dense_encoder.lut_budget_bytes = 0  # keep the factored per-feature form
    dense_pipeline = HDCPipeline(
        dense_encoder, pipeline.classifier, prefer_packed=False
    )
    dense_pipeline._fitted = True

    queries = test_features[:num_samples]

    def single_dense():
        for row in queries:
            dense_pipeline.predict(row)

    def single_packed():
        for row in queries:
            engine.predict(row)

    def batched_dense():
        for start in range(0, num_samples, batch_size):
            dense_pipeline.predict(queries[start : start + batch_size])

    def batched_packed():
        for start in range(0, num_samples, batch_size):
            engine.predict(queries[start : start + batch_size])

    rates: Dict[str, float] = {
        "single-dense": _throughput(single_dense, num_samples),
        "single-packed": _throughput(single_packed, num_samples),
        "batched-dense": _throughput(batched_dense, num_samples),
        "batched-packed": _throughput(batched_packed, num_samples),
    }

    batch_distribution: Dict[int, int] = {}
    if include_scheduler:
        metrics = ModelMetrics()
        with BatchScheduler(
            engine,
            max_batch_size=batch_size,
            max_wait_ms=max_wait_ms,
            metrics=metrics,
        ) as scheduler:

            def scheduler_run():
                with ThreadPoolExecutor(max_workers=concurrency) as pool:
                    futures = [
                        pool.submit(scheduler.predict, row) for row in queries
                    ]
                    for future in futures:
                        future.result()

            rates["scheduler-packed"] = _throughput(
                scheduler_run, num_samples, repeats=1
            )
            batch_distribution = metrics.batch_size_distribution

    baseline_rate = rates["single-dense"]
    speedups = {mode: rate / baseline_rate for mode, rate in rates.items()}
    return {
        "config": {
            "dimension": dimension,
            "num_features": num_features,
            "num_classes": num_classes,
            "num_samples": num_samples,
            "batch_size": batch_size,
            "concurrency": concurrency,
        },
        "rates": rates,
        "speedups": speedups,
        "batch_size_distribution": batch_distribution,
    }


def format_benchmark_rows(result: Dict[str, object]) -> List[List[str]]:
    """Rows ``[mode, samples/s, speedup]`` for ``repro.eval.tables.format_table``."""
    rates: Dict[str, float] = result["rates"]  # type: ignore[assignment]
    speedups: Dict[str, float] = result["speedups"]  # type: ignore[assignment]
    return [
        [mode, f"{rates[mode]:.0f}", f"{speedups[mode]:.1f}x"]
        for mode in rates
    ]


__all__ = ["run_serving_benchmark", "format_benchmark_rows"]
