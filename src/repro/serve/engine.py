"""The packed inference engine: a fitted pipeline compiled for serving.

Training produces an :class:`~repro.classifiers.pipeline.HDCPipeline`; serving
wants something flatter.  :class:`PackedInferenceEngine` does the one-time
compilation at load time:

* the classifier's ``(K, D)`` bipolar class hypervectors are bit-packed into
  ``(K, ceil(D/64))`` uint64 words (:mod:`repro.hdc.packing`), so each query
  is answered with XOR + popcount — the zero-overhead path the paper claims;
* the encoder's position/level item memories are fused into a bound lookup
  table (record encoder) or pre-permuted level codebooks (n-gram encoder), so
  encoding a request is pure gather + accumulate with no per-request binds;
* classifiers whose scoring is *not* the shared Hamming/dot rule (non-binary
  centroids, the multi-model ensemble) transparently fall back to a dense
  path that defers to the classifier's own ``decision_scores``.

The engine is safe to share across threads — which is exactly how the
batching scheduler and HTTP server use it.  The only mutable state it touches
is the encoder's RNG (consumed for ``sgn(0)`` tie-breaks when the encoder was
configured with ``tie_break="random"``); those draws are serialised behind an
internal lock because ``np.random.Generator`` is not thread-safe.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.classifiers.base import HDCClassifierBase, top_k_from_scores
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.hdc.packing import PackedHypervectors, pack_bipolar, pack_bits
from repro.utils.validation import check_matrix

#: Largest bound-LUT the record-encoder path will materialise, in bytes
#: (``num_features * num_levels * D`` int8 entries).  Above this the engine
#: keeps the factored item memories and binds on the fly.
DEFAULT_LUT_BUDGET_BYTES = 128 * 1024 * 1024


def _uses_shared_scoring(classifier: HDCClassifierBase) -> bool:
    """True when *classifier* scores with the base dot-similarity rule.

    Strategies that override ``decision_scores`` (non-binary centroids with
    cosine scoring, the multi-model ensemble) cannot be reproduced by XOR +
    popcount over the majority-vote class hypervectors, so they take the
    dense fallback.
    """
    return type(classifier).decision_scores is HDCClassifierBase.decision_scores


class _RecordAccumulator:
    """Pre-sign accumulation for :class:`RecordEncoder` with a fused LUT.

    ``lut[i, l] = position[i] * level[l]`` collapses the bind into a gather:
    a batch accumulates as one fancy-indexed gather over the flattened
    ``(N * L, D)`` table followed by a single C-level reduction, chunked over
    features so the int8 scratch stays within ``_SCRATCH_BYTES`` and the
    per-chunk partial sums fit int16 (a chunk contributes at most ±chunk per
    dimension).  When the LUT itself would exceed the byte budget the
    factored form is kept (one gather + one multiply per feature), with the
    int32 casts hoisted out of the request path.
    """

    _SCRATCH_BYTES = 32 * 1024 * 1024

    def __init__(self, encoder: RecordEncoder, lut_budget_bytes: int):
        positions = encoder.position_memory.vectors
        levels = encoder.level_memory.vectors
        num_features, dimension = positions.shape
        num_levels = levels.shape[0]
        lut_bytes = num_features * num_levels * dimension
        if lut_bytes <= lut_budget_bytes:
            lut = positions[:, None, :].astype(np.int8) * levels[None, :, :]
            self._flat_lut = lut.reshape(num_features * num_levels, dimension)
            self._row_offsets = (
                np.arange(num_features, dtype=np.int64) * num_levels
            )
            self._positions = None
            self._levels = None
            self.table_bytes = self._flat_lut.nbytes
        else:
            self._flat_lut = None
            self._row_offsets = None
            self._positions = positions.astype(np.int32)
            self._levels = levels.astype(np.int32)
            self.table_bytes = self._positions.nbytes + self._levels.nbytes
        self._dimension = dimension

    def __call__(self, level_indices: np.ndarray) -> np.ndarray:
        batch, num_features = level_indices.shape
        accumulated = np.zeros((batch, self._dimension), dtype=np.int32)
        if self._flat_lut is not None:
            chunk = max(1, self._SCRATCH_BYTES // max(1, batch * self._dimension))
            chunk = min(chunk, 32767)  # int16 partial-sum headroom
            rows = level_indices + self._row_offsets
            for start in range(0, num_features, chunk):
                gathered = self._flat_lut[rows[:, start : start + chunk]]
                accumulated += gathered.sum(axis=1, dtype=np.int16)
            return accumulated
        for feature_index in range(num_features):
            accumulated += (
                self._positions[feature_index]
                * self._levels[level_indices[:, feature_index]]
            )
        return accumulated


class _NGramAccumulator:
    """Pre-sign accumulation for :class:`NGramEncoder` with hoisted codebooks.

    The encoder re-permutes the level codebook on every ``encode`` call; here
    the ``ngram`` permuted copies are built once at engine-load time.
    """

    def __init__(self, encoder: NGramEncoder):
        level_vectors = encoder.level_memory.vectors.astype(np.int32)
        self._ngram = encoder.ngram
        self._codebooks = [
            np.roll(level_vectors, offset, axis=1) for offset in range(self._ngram)
        ]
        self._dimension = level_vectors.shape[1]
        self.table_bytes = sum(book.nbytes for book in self._codebooks)

    def __call__(self, level_indices: np.ndarray) -> np.ndarray:
        batch, num_features = level_indices.shape
        accumulated = np.zeros((batch, self._dimension), dtype=np.int32)
        for start in range(num_features - self._ngram + 1):
            gram = self._codebooks[0][level_indices[:, start]].copy()
            for offset in range(1, self._ngram):
                gram *= self._codebooks[offset][level_indices[:, start + offset]]
            accumulated += gram
        return accumulated


class PackedInferenceEngine:
    """A fitted :class:`HDCPipeline` compiled for high-throughput inference.

    Parameters
    ----------
    pipeline:
        A fitted pipeline (trained in-process or loaded via
        :func:`repro.io.load_model`).
    name:
        Display name used in registry listings and metrics.
    mode:
        ``"auto"`` (default) picks the packed XOR+popcount path whenever the
        classifier uses the shared dot-similarity scoring and the dense
        fallback otherwise; ``"packed"`` / ``"dense"`` force a path
        (forcing ``"packed"`` on an incompatible classifier raises).
    metadata:
        Optional JSON-serialisable dictionary carried through to
        :meth:`info` (the registry stores the saved-model metadata here).
    lut_budget_bytes:
        Byte cap for the record encoder's fused bind LUT.
    """

    def __init__(
        self,
        pipeline: HDCPipeline,
        name: str = "model",
        mode: str = "auto",
        metadata: Optional[dict] = None,
        lut_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES,
    ):
        if mode not in ("auto", "packed", "dense"):
            raise ValueError(f"mode must be 'auto', 'packed' or 'dense', got {mode!r}")
        if not getattr(pipeline, "_fitted", False):
            raise ValueError("the pipeline must be fitted before it can be served")
        classifier = pipeline.classifier
        if classifier.class_hypervectors_ is None:
            raise ValueError("the pipeline's classifier has no class hypervectors")

        self.name = str(name)
        self.pipeline = pipeline
        self.encoder = pipeline.encoder
        self.classifier = classifier
        self.metadata = dict(metadata or {})
        self.dimension = int(classifier.class_hypervectors_.shape[1])
        self.num_classes = int(classifier.class_hypervectors_.shape[0])

        shared_scoring = _uses_shared_scoring(classifier)
        if mode == "auto":
            mode = "packed" if shared_scoring else "dense"
        elif mode == "packed" and not shared_scoring:
            raise ValueError(
                f"classifier {type(classifier).__name__} overrides decision_scores; "
                "its scoring cannot be reproduced by the packed path "
                "(use mode='auto' or mode='dense')"
            )
        self.mode = mode

        self._packed_classes: Optional[PackedHypervectors] = None
        if mode == "packed":
            self._packed_classes = pack_bipolar(classifier.class_hypervectors_)
        # np.random.Generator is not thread-safe; tie-break draws (the only
        # RNG consumption on the request path) are serialised behind this.
        self._rng_lock = threading.Lock()

        if isinstance(self.encoder, NGramEncoder):
            self._accumulate = _NGramAccumulator(self.encoder)
        elif isinstance(self.encoder, RecordEncoder):
            self._accumulate = _RecordAccumulator(self.encoder, lut_budget_bytes)
        else:  # pragma: no cover - future encoders fall back to encoder.encode
            self._accumulate = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_file(
        cls, path: Union[str, Path], name: Optional[str] = None, **kwargs
    ) -> "PackedInferenceEngine":
        """Load a model saved with :func:`repro.io.save_model` and compile it."""
        from repro.io import load_model, read_model_metadata

        path = Path(path)
        metadata = read_model_metadata(path)
        pipeline = load_model(path)
        return cls(
            pipeline,
            name=name or path.stem,
            metadata=metadata,
            **kwargs,
        )

    # ---------------------------------------------------------------- encoding
    def _raw_accumulation(self, features: np.ndarray) -> np.ndarray:
        """The encoder's pre-sign integer accumulation via the fused tables."""
        level_indices = self.encoder._quantizer.transform(features)
        return self._accumulate(level_indices)

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode raw features to bipolar hypervectors via the fused tables.

        Bit-identical to ``self.encoder.encode`` (the pre-sign accumulation is
        always identical; the ``sgn(0)`` tie-break follows the encoder's
        configuration, so deterministic — ``tie_break="positive"`` — encoders
        match exactly).
        """
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.encoder.num_features
        )
        if self._accumulate is None:  # pragma: no cover - future encoders
            with self._rng_lock:
                return self.encoder.encode(features)
        raw = self._raw_accumulation(features)
        with self._rng_lock:
            return sign_with_ties(
                raw, rng=self.encoder.rng, tie_break=self.encoder.tie_break
            ).astype(BIPOLAR_DTYPE)

    def _encode_packed(self, features: np.ndarray) -> PackedHypervectors:
        """Encode straight to packed words, skipping the dense intermediate.

        The sign of the raw accumulation *is* the packed bit, so the int8
        hypervector matrix never needs to exist: bits are derived from the
        int32 accumulation and packed with the C-speed ``np.packbits`` kernel.
        Tie bits replicate :func:`sign_with_ties` (same RNG draws, same
        mapping), keeping this path bit-identical to ``pack(encode(x))``.
        """
        features = check_matrix(
            features, "features", dtype=np.float64, n_columns=self.encoder.num_features
        )
        if self._accumulate is None:  # pragma: no cover - future encoders
            with self._rng_lock:
                return pack_bipolar(self.encoder.encode(features))
        raw = self._raw_accumulation(features)
        bits = raw > 0
        zeros = raw == 0
        if np.any(zeros):
            if self.encoder.tie_break == "positive":
                bits |= zeros
            else:
                with self._rng_lock:
                    draws = self.encoder.rng.integers(
                        0, 2, size=int(zeros.sum()), dtype=np.int8
                    )
                bits[zeros] = draws == 1
        return pack_bits(bits, self.dimension)

    # --------------------------------------------------------------- inference
    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """``(n, K)`` class scores; higher is more similar.

        Packed mode returns the integer dot similarity ``D - 2 * hamming_bits``
        computed entirely over packed words; dense mode defers to the
        classifier's own scoring rule.
        """
        if self.mode == "packed":
            packed_queries = self._encode_packed(features)
            differences = packed_queries.bit_differences(self._packed_classes)
            return (self.dimension - 2 * differences).astype(np.int64)
        return self.classifier.decision_scores(self.encode(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict integer class labels for a batch of raw feature rows."""
        return np.argmax(self.decision_scores(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax class probabilities over cosine-normalised scores.

        Packed scores are divided by ``D`` (mapping the integer dot similarity
        onto cosine similarity in ``[-1, 1]``) so binary and dense models
        yield comparable distributions; the softmax temperature of 0.1 keeps
        the output informative rather than saturated.
        """
        scores = np.asarray(self.decision_scores(features), dtype=np.float64)
        if self.mode == "packed":
            scores = scores / float(self.dimension)
        scaled = scores / 0.1
        scaled -= scaled.max(axis=1, keepdims=True)
        exponentials = np.exp(scaled)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def top_k(self, features: np.ndarray, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` best classes per sample, best first.

        Returns ``(labels, scores)``, both ``(n, k)``; ``k`` is clipped to the
        number of classes.
        """
        return top_k_from_scores(self.decision_scores(features), k)

    # ------------------------------------------------------------------- misc
    def warmup(self) -> None:
        """Run one dummy prediction so first-request latency excludes JIT-ish
        costs (NumPy buffer allocation, LUT page-in)."""
        dummy = np.zeros((1, self.encoder.num_features), dtype=np.float64)
        self.predict(dummy)

    @property
    def packed_storage_bytes(self) -> int:
        """Bytes of packed class-hypervector storage (0 in dense mode)."""
        return self._packed_classes.storage_bytes if self._packed_classes else 0

    def info(self) -> dict:
        """JSON-ready description used by ``GET /v1/models``."""
        return {
            "name": self.name,
            "mode": self.mode,
            "dimension": self.dimension,
            "num_classes": self.num_classes,
            "num_features": self.encoder.num_features,
            "encoder": type(self.encoder).__name__,
            "classifier": type(self.classifier).__name__,
            "packed_storage_bytes": self.packed_storage_bytes,
            "table_bytes": getattr(self._accumulate, "table_bytes", 0),
            "metadata": self.metadata,
        }


__all__ = ["PackedInferenceEngine", "DEFAULT_LUT_BUDGET_BYTES"]
