"""The packed inference engine: a fitted pipeline compiled for serving.

Training produces an :class:`~repro.classifiers.pipeline.HDCPipeline`; serving
wants something flatter.  :class:`PackedInferenceEngine` does the one-time
compilation at load time:

* the classifier's packed inference bank is compiled up front — the
  ``(K, ceil(D/64))`` packed class hypervectors for shared-rule classifiers,
  the flat ``(K * N, ceil(D/64))`` model bank for the SearcHD-style ensemble
  (scored by XOR + popcount then max over each class's sub-models) — so each
  query is answered with XOR + popcount, the zero-overhead path the paper
  claims;
* the encoder's fused accumulator (bound position×level LUT for the record
  encoder, pre-permuted codebooks for the n-gram encoder) is compiled once,
  so encoding a request is pure gather + accumulate with no per-request binds;
* classifiers whose scoring has no packed twin (non-binary cosine centroids)
  transparently fall back to a dense path that defers to the classifier's
  own ``decision_scores``.

All of the bit-level machinery lives in :mod:`repro.kernels` — this module
owns only serving concerns: compilation policy (packed vs dense), metadata,
and thread-safety.  The engine is safe to share across threads — which is
exactly how the batching scheduler and HTTP server use it.  The only mutable
state it touches is the encoder's RNG (consumed for ``sgn(0)`` tie-breaks
when the encoder was configured with ``tie_break="random"``); those draws are
serialised behind an internal lock because ``np.random.Generator`` is not
thread-safe.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.classifiers.base import top_k_from_scores
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.hypervector import BIPOLAR_DTYPE, sign_with_ties
from repro.kernels.encode import DEFAULT_LUT_BUDGET_BYTES, build_accumulator
from repro.kernels.packed import (
    PackedHypervectors,
    pack_bipolar,
    pack_bits,
    sign_fuse_bits,
)
from repro.utils.validation import check_matrix


class PackedInferenceEngine:
    """A fitted :class:`HDCPipeline` compiled for high-throughput inference.

    Parameters
    ----------
    pipeline:
        A fitted pipeline (trained in-process or loaded via
        :func:`repro.io.load_model`).
    name:
        Display name used in registry listings and metrics.
    mode:
        ``"auto"`` (default) picks the packed XOR+popcount path whenever the
        classifier uses the shared dot-similarity scoring and the dense
        fallback otherwise; ``"packed"`` / ``"dense"`` force a path
        (forcing ``"packed"`` on an incompatible classifier raises).
    metadata:
        Optional JSON-serialisable dictionary carried through to
        :meth:`info` (the registry stores the saved-model metadata here).
    lut_budget_bytes:
        Byte cap for the record encoder's fused bind LUT.
    packed_bank:
        Optional externally held packed inference bank (for example a
        zero-copy view over a ``repro.cluster`` shared-memory segment).  When
        given, the classifier adopts it as its resident scoring words instead
        of packing a private copy; requires the packed scoring path and a
        bank whose shape matches the fitted model.
    """

    def __init__(
        self,
        pipeline: HDCPipeline,
        name: str = "model",
        mode: str = "auto",
        metadata: Optional[dict] = None,
        lut_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES,
        packed_bank: Optional[PackedHypervectors] = None,
    ):
        if mode not in ("auto", "packed", "dense"):
            raise ValueError(f"mode must be 'auto', 'packed' or 'dense', got {mode!r}")
        if not getattr(pipeline, "_fitted", False):
            raise ValueError("the pipeline must be fitted before it can be served")
        classifier = pipeline.classifier
        if classifier.class_hypervectors_ is None:
            raise ValueError("the pipeline's classifier has no class hypervectors")

        self.name = str(name)
        self.pipeline = pipeline
        self.encoder = pipeline.encoder
        self.classifier = classifier
        self.metadata = dict(metadata or {})
        self.dimension = int(classifier.class_hypervectors_.shape[1])
        self.num_classes = int(classifier.class_hypervectors_.shape[0])

        shared_scoring = classifier.supports_packed_scoring()
        if mode == "auto":
            mode = "packed" if shared_scoring else "dense"
        elif mode == "packed" and not shared_scoring:
            raise ValueError(
                f"classifier {type(classifier).__name__} overrides decision_scores; "
                "its scoring cannot be reproduced by the packed path "
                "(use mode='auto' or mode='dense')"
            )
        self.mode = mode

        # The words the packed scoring rule keeps resident: the packed class
        # hypervectors for shared-rule classifiers, the flat K*N model bank
        # for ensembles.  Building it here both pre-warms the classifier's
        # cache (scoring after this point is read-only, hence thread-safe)
        # and makes first-request latency exclude the pack.
        self._packed_classes: Optional[PackedHypervectors] = None
        if mode == "packed":
            if packed_bank is not None:
                classifier.adopt_packed_bank(packed_bank)
            self._packed_classes = classifier.packed_inference_bank()
        elif packed_bank is not None:
            raise ValueError(
                "packed_bank was given but the engine resolved to the dense "
                "path; an external bank requires packed scoring"
            )
        # np.random.Generator is not thread-safe; tie-break draws (the only
        # RNG consumption on the request path) are serialised behind this.
        self._rng_lock = threading.Lock()

        # Compile the fused accumulator now so first-request latency excludes
        # the LUT bind and concurrent first requests cannot race compilation.
        # A non-default budget builds an engine-local accumulator: the shared
        # encoder's own budget/tables are never mutated (the training-side
        # owner of the pipeline keeps its fused path and memory profile).
        if lut_budget_bytes == self.encoder.lut_budget_bytes:
            try:
                self._accumulator = self.encoder._get_accumulator()
            except NotImplementedError:  # pragma: no cover - future encoders
                self._accumulator = None
        else:
            self._accumulator = build_accumulator(
                self.encoder, lut_budget_bytes=lut_budget_bytes
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_file(
        cls, path: Union[str, Path], name: Optional[str] = None, **kwargs
    ) -> "PackedInferenceEngine":
        """Load a model saved with :func:`repro.io.save_model` and compile it."""
        from repro.io import load_model, read_model_metadata

        path = Path(path)
        metadata = read_model_metadata(path)
        pipeline = load_model(path)
        return cls(
            pipeline,
            name=name or path.stem,
            metadata=metadata,
            **kwargs,
        )

    # ---------------------------------------------------------------- encoding
    def _validate(self, features: np.ndarray) -> np.ndarray:
        """Request validation, done exactly once per public entry point."""
        return check_matrix(
            features, "features", dtype=np.float64, n_columns=self.encoder.num_features
        )

    def _raw_accumulation(self, features: np.ndarray) -> np.ndarray:
        """Pre-sign accumulation over the engine's compiled tables.

        *features* must already be validated.  Thread-safe: touches only the
        immutable quantiser and accumulator tables, no RNG.
        """
        return self._accumulator(self.encoder._quantizer.transform(features))

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode raw features to bipolar hypervectors via the fused kernels.

        Bit-identical to ``self.encoder.encode`` (the pre-sign accumulation is
        always identical; the ``sgn(0)`` tie-break follows the encoder's
        configuration, so deterministic — ``tie_break="positive"`` — encoders
        match exactly).
        """
        return self._encode_validated(self._validate(features))

    def _encode_validated(self, features: np.ndarray) -> np.ndarray:
        if self._accumulator is None:  # pragma: no cover - future encoders
            with self._rng_lock:
                return self.encoder.encode(features)
        raw = self._raw_accumulation(features)
        with self._rng_lock:
            return sign_with_ties(
                raw, rng=self.encoder.rng, tie_break=self.encoder.tie_break
            ).astype(BIPOLAR_DTYPE)

    def _encode_packed(self, features: np.ndarray) -> PackedHypervectors:
        """Encode straight to packed words, skipping the dense intermediate.

        *features* must already be validated.  The accumulation half is
        lock-free (immutable compiled tables); for ``tie_break="random"``
        encoders the sign fusion runs under the RNG lock so the ``sgn(0)``
        draw stream stays well-ordered across threads, while deterministic
        encoders never touch the lock at all.
        """
        if self._accumulator is None:  # pragma: no cover - future encoders
            with self._rng_lock:
                return pack_bipolar(self.encoder.encode(features))
        raw = self._raw_accumulation(features)
        if self.encoder.tie_break == "random":
            with self._rng_lock:
                bits = sign_fuse_bits(raw, tie_break="random", rng=self.encoder.rng)
        else:
            bits = sign_fuse_bits(raw, tie_break="positive")
        return pack_bits(bits, self.dimension)

    # --------------------------------------------------------------- inference
    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """``(n, K)`` class scores; higher is more similar.

        Packed mode returns the integer dot similarity ``D - 2 * hamming_bits``
        computed entirely over packed words through the classifier's packed
        scoring rule (plain dot against the class hypervectors, or
        max-over-sub-models for the ensemble — both exactly equal to the
        dense scores); dense mode defers to the classifier's own rule.
        """
        features = self._validate(features)
        if self.mode == "packed":
            packed_queries = self._encode_packed(features)
            return self.classifier.decision_scores_packed(packed_queries)
        return self.classifier.decision_scores(self._encode_validated(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict integer class labels for a batch of raw feature rows."""
        return np.argmax(self.decision_scores(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax class probabilities over cosine-normalised scores.

        Packed scores are divided by ``D`` (mapping the integer dot similarity
        onto cosine similarity in ``[-1, 1]``) so binary and dense models
        yield comparable distributions; the softmax temperature of 0.1 keeps
        the output informative rather than saturated.
        """
        scores = np.asarray(self.decision_scores(features), dtype=np.float64)
        if self.mode == "packed":
            scores = scores / float(self.dimension)
        scaled = scores / 0.1
        scaled -= scaled.max(axis=1, keepdims=True)
        exponentials = np.exp(scaled)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def top_k(self, features: np.ndarray, k: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` best classes per sample, best first.

        Returns ``(labels, scores)``, both ``(n, k)``; ``k`` is clipped to the
        number of classes.
        """
        return top_k_from_scores(self.decision_scores(features), k)

    # ------------------------------------------------------------------- misc
    def warmup(self) -> None:
        """Run one dummy prediction so first-request latency excludes JIT-ish
        costs (NumPy buffer allocation, LUT page-in)."""
        dummy = np.zeros((1, self.encoder.num_features), dtype=np.float64)
        self.predict(dummy)

    @property
    def packed_bank(self) -> Optional[PackedHypervectors]:
        """The resident packed inference bank (``None`` in dense mode).

        This is what ``repro.cluster`` publishes into shared memory: the
        class hypervectors for shared-rule classifiers, the flat ``K * N``
        model bank for ensembles.
        """
        return self._packed_classes

    @property
    def packed_storage_bytes(self) -> int:
        """Bytes of resident packed model storage (0 in dense mode).

        For ensemble models this counts the whole ``K * N`` packed bank —
        the paper's linear-in-``N`` storage growth, as a serving metric.
        """
        return self._packed_classes.storage_bytes if self._packed_classes else 0

    def info(self) -> dict:
        """JSON-ready description used by ``GET /v1/models``."""
        return {
            "name": self.name,
            "mode": self.mode,
            "dimension": self.dimension,
            "num_classes": self.num_classes,
            "packed_rows": len(self._packed_classes) if self._packed_classes else 0,
            "num_features": self.encoder.num_features,
            "encoder": type(self.encoder).__name__,
            "classifier": type(self.classifier).__name__,
            "packed_storage_bytes": self.packed_storage_bytes,
            "table_bytes": getattr(self._accumulator, "table_bytes", 0),
            "metadata": self.metadata,
        }


__all__ = ["PackedInferenceEngine", "DEFAULT_LUT_BUDGET_BYTES"]
