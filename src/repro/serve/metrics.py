"""Serving metrics: per-model counters, latency histograms, batch-size stats.

Recording a latency is a handful of in-place updates under a lock, so the
metrics layer never competes with the inference kernels it is measuring.
Snapshots are plain dictionaries ready for ``json.dumps`` — that is what
``GET /v1/metrics`` returns — and the same objects are reused by the serving
benchmark to report percentiles.

Percentiles are answered by a mergeable
:class:`~repro.obs.sketch.QuantileSketch` (bounded relative error, fixed
memory — no retained sample lists), while the coarse fixed buckets are kept
for Prometheus exposition.  Traced requests leave an *exemplar* — the most
recent ``trace_id`` per latency bucket — so an operator can jump from a p99
regression straight to a span tree.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.obs.sketch import QuantileSketch

#: Default latency bucket upper bounds in seconds: log-spaced from 50 µs to
#: 20 s, which brackets everything from a packed single-sample lookup to a
#: cold full-batch encode on a slow machine.
_DEFAULT_BOUNDS = tuple(
    round(base * scale, 9)
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (5.0, 10.0, 20.0)
)

#: Public alias (the cross-process worker slabs bracket with the same bounds).
DEFAULT_LATENCY_BOUNDS = _DEFAULT_BOUNDS


class LatencyHistogram:
    """Latency distribution: sketch percentiles + fixed Prometheus buckets.

    Two views over the same observations, updated atomically:

    * a :class:`~repro.obs.sketch.QuantileSketch` answers percentile
      queries with a bounded relative error (1% by default) in fixed
      memory — no sample list is retained, so a week-long soak costs the
      same as the first request;
    * coarse fixed buckets (``bounds``, cumulative in snapshots) feed the
      Prometheus exposition, where the bucket grid *is* the contract.

    Traced observations additionally leave an exemplar — the most recent
    ``(trace_id, value, timestamp)`` per bucket — surfaced in snapshots and
    as OpenMetrics exemplar annotations.

    Parameters
    ----------
    bounds:
        Increasing bucket upper bounds in seconds.  Observations above the
        last bound land in an overflow bucket whose reported value is the
        largest observation seen.
    """

    def __init__(self, bounds: Sequence[float] = _DEFAULT_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bounds must be strictly increasing")
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._sketch = QuantileSketch()
        self._exemplars: Dict[int, Dict[str, object]] = {}
        self._lock = threading.Lock()

    def record(self, seconds: float, trace_id: Optional[str] = None) -> None:
        """Record one observation (in seconds), optionally with its trace."""
        seconds = float(seconds)
        index = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            if seconds > 0.0:
                self._sketch.record(seconds)
            if trace_id:
                self._exemplars[index] = {
                    "trace_id": trace_id,
                    "value": seconds,
                    "timestamp": time.time(),
                }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Mean observed latency in seconds (0.0 when empty)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile in seconds, from the quantile sketch.

        The estimate is within the sketch's relative accuracy (1% by
        default) of the exact nearest-rank sample value.  Returns 0.0 when
        nothing has been recorded.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"p must be in [0, 100], got {p}")
        with self._lock:
            return self._sketch.percentile(p) if self._sketch.count else 0.0

    def slow_exemplars(self, k: int = 5) -> List[Dict[str, object]]:
        """Up to *k* captured exemplars, slowest buckets first."""
        with self._lock:
            exemplars = sorted(
                self._exemplars.values(), key=lambda e: e["value"], reverse=True
            )
        return [dict(exemplar) for exemplar in exemplars[:k]]

    def snapshot(self) -> Dict[str, object]:
        """Summary dictionary with millisecond-denominated statistics.

        Taken under the lock in one piece, so concurrent :meth:`record`
        calls can never produce a torn view (e.g. a count that disagrees
        with the bucket totals or a stale ``max_ms``).  ``buckets`` carries
        the *cumulative* per-bound counts in Prometheus histogram form
        (final bucket ``le="+Inf"``); buckets whose range captured a traced
        request carry its most recent exemplar.  Percentiles come from the
        sketch (relative error <= ``relative_accuracy``).
        """
        with self._lock:
            buckets = []
            cumulative = 0
            for index, (bound, bucket_count) in enumerate(
                zip(self._bounds, self._counts)
            ):
                cumulative += bucket_count
                entry: Dict[str, object] = {"le": bound, "count": cumulative}
                exemplar = self._exemplars.get(index)
                if exemplar is not None:
                    entry["exemplar"] = dict(exemplar)
                buckets.append(entry)
            overflow: Dict[str, object] = {"le": "+Inf", "count": self._count}
            exemplar = self._exemplars.get(len(self._bounds))
            if exemplar is not None:
                overflow["exemplar"] = dict(exemplar)
            buckets.append(overflow)
            sketch = self._sketch
            return {
                "count": self._count,
                "mean_ms": (self._total / self._count if self._count else 0.0) * 1e3,
                "p50_ms": sketch.percentile(50) * 1e3,
                "p95_ms": sketch.percentile(95) * 1e3,
                "p99_ms": sketch.percentile(99) * 1e3,
                "max_ms": self._max * 1e3,
                "sum_seconds": self._total,
                "relative_accuracy": sketch.relative_accuracy,
                "buckets": buckets,
            }


class ModelMetrics:
    """Counters and histograms for one served model.

    Besides the end-to-end request latency, the model keeps one
    :class:`LatencyHistogram` per pipeline *stage* (``validate``,
    ``queue_wait``, ``dispatch``, ``merge``, ...) so ``/v1/metrics`` can
    answer "where does a request spend its time" without a trace file.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.samples = 0
        self.errors = 0
        self.sheds = 0
        self.deadline_exceeded = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.latency = LatencyHistogram()
        self._batch_sizes: Dict[int, int] = {}
        self._stages: Dict[str, LatencyHistogram] = {}

    def record_request(
        self, num_samples: int, seconds: float, trace_id: Optional[str] = None
    ) -> None:
        """Record one successful inference call over *num_samples* samples.

        Passing the request's ``trace_id`` (when sampled) lets the latency
        histogram capture it as an exemplar.
        """
        self.latency.record(seconds, trace_id=trace_id)
        with self._lock:
            self.requests += 1
            self.samples += int(num_samples)

    def record_batch(self, batch_size: int) -> None:
        """Record the size of one coalesced micro-batch."""
        batch_size = int(batch_size)
        with self._lock:
            self._batch_sizes[batch_size] = self._batch_sizes.get(batch_size, 0) + 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_shed(self) -> None:
        """Record one request rejected by admission control (HTTP 429)."""
        with self._lock:
            self.sheds += 1

    def record_deadline(self) -> None:
        """Record one request that missed its deadline (HTTP 504)."""
        with self._lock:
            self.deadline_exceeded += 1

    def record_cache_hit(self) -> None:
        """Record one prediction answered from the request-level cache."""
        with self._lock:
            self.cache_hits += 1

    def record_cache_miss(self) -> None:
        """Record one prediction that had to run inference."""
        with self._lock:
            self.cache_misses += 1

    def record_stage(self, stage: str, seconds: float) -> None:
        """Record one *stage* timing (histogram created on first use).

        The common case — the stage histogram already exists — holds the
        model lock only for a dict lookup; the record itself runs under the
        histogram's own lock, so stage recording never serialises against
        the request counters.
        """
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = LatencyHistogram()
        histogram.record(seconds)

    def stage(self, name: str) -> "LatencyHistogram":
        """The histogram for *name* (creating it empty on first use)."""
        with self._lock:
            histogram = self._stages.get(name)
            if histogram is None:
                histogram = self._stages[name] = LatencyHistogram()
            return histogram

    @property
    def batch_size_distribution(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def snapshot(self) -> Dict[str, object]:
        # All counters are read in one critical section so a concurrent
        # record_request can never yield a snapshot where e.g. ``samples``
        # reflects an update that ``requests`` does not.
        with self._lock:
            requests = self.requests
            samples = self.samples
            errors = self.errors
            sheds = self.sheds
            deadline_exceeded = self.deadline_exceeded
            cache_hits = self.cache_hits
            cache_misses = self.cache_misses
            batches = dict(sorted(self._batch_sizes.items()))
            stages = dict(self._stages)
        total_batches = sum(batches.values())
        batched_samples = sum(size * count for size, count in batches.items())
        lookups = cache_hits + cache_misses
        return {
            "requests": requests,
            "samples": samples,
            "errors": errors,
            "sheds": sheds,
            "deadline_exceeded": deadline_exceeded,
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": cache_hits / lookups if lookups else 0.0,
            },
            "latency": self.latency.snapshot(),
            "batches": total_batches,
            "mean_batch_size": (
                batched_samples / total_batches if total_batches else 0.0
            ),
            "batch_size_distribution": {
                str(size): count for size, count in batches.items()
            },
            "stages": {name: histogram.snapshot() for name, histogram in stages.items()},
        }


class MetricsRegistry:
    """Thread-safe name → :class:`ModelMetrics` map for the whole server."""

    def __init__(self):
        self._lock = threading.Lock()
        self._models: Dict[str, ModelMetrics] = {}

    def for_model(self, name: str) -> ModelMetrics:
        """Return (creating on first use) the metrics of model *name*."""
        with self._lock:
            metrics = self._models.get(name)
            if metrics is None:
                metrics = self._models[name] = ModelMetrics()
            return metrics

    def model_names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot of every model's metrics."""
        with self._lock:
            models = dict(self._models)
        return {
            "models": {name: metrics.snapshot() for name, metrics in models.items()}
        }


__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "LatencyHistogram",
    "ModelMetrics",
    "MetricsRegistry",
]
