"""Serving metrics: per-model counters, latency histograms, batch-size stats.

Everything here is pure stdlib + NumPy-free on the hot path (recording a
latency is two dict updates under a lock), so the metrics layer never competes
with the inference kernels it is measuring.  Snapshots are plain dictionaries
ready for ``json.dumps`` — that is what ``GET /v1/metrics`` returns — and the
same objects are reused by the serving benchmark to report percentiles.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Sequence

#: Default latency bucket upper bounds in seconds: log-spaced from 50 µs to
#: 20 s, which brackets everything from a packed single-sample lookup to a
#: cold full-batch encode on a slow machine.
_DEFAULT_BOUNDS = tuple(
    round(base * scale, 9)
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (5.0, 10.0, 20.0)
)


class LatencyHistogram:
    """A fixed-bucket histogram with approximate percentile queries.

    Parameters
    ----------
    bounds:
        Increasing bucket upper bounds in seconds.  Observations above the
        last bound land in an overflow bucket whose reported value is the
        largest observation seen.
    """

    def __init__(self, bounds: Sequence[float] = _DEFAULT_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bounds must be strictly increasing")
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one observation (in seconds)."""
        seconds = float(seconds)
        index = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Mean observed latency in seconds (0.0 when empty)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate *p*-th percentile in seconds (bucket upper bound).

        The estimate is the upper bound of the bucket containing the
        percentile rank; the overflow bucket reports the maximum observation.
        Returns 0.0 when nothing has been recorded.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"p must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = p / 100.0 * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self._max
            return self._max

    def snapshot(self) -> Dict[str, float]:
        """Summary dictionary with millisecond-denominated statistics."""
        return {
            "count": self._count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": self._max * 1e3,
        }


class ModelMetrics:
    """Counters and histograms for one served model."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.samples = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.latency = LatencyHistogram()
        self._batch_sizes: Dict[int, int] = {}

    def record_request(self, num_samples: int, seconds: float) -> None:
        """Record one successful inference call over *num_samples* samples."""
        self.latency.record(seconds)
        with self._lock:
            self.requests += 1
            self.samples += int(num_samples)

    def record_batch(self, batch_size: int) -> None:
        """Record the size of one coalesced micro-batch."""
        batch_size = int(batch_size)
        with self._lock:
            self._batch_sizes[batch_size] = self._batch_sizes.get(batch_size, 0) + 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_cache_hit(self) -> None:
        """Record one prediction answered from the request-level cache."""
        with self._lock:
            self.cache_hits += 1

    def record_cache_miss(self) -> None:
        """Record one prediction that had to run inference."""
        with self._lock:
            self.cache_misses += 1

    @property
    def batch_size_distribution(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def snapshot(self) -> Dict[str, object]:
        batches = self.batch_size_distribution
        total_batches = sum(batches.values())
        batched_samples = sum(size * count for size, count in batches.items())
        lookups = self.cache_hits + self.cache_misses
        return {
            "requests": self.requests,
            "samples": self.samples,
            "errors": self.errors,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            },
            "latency": self.latency.snapshot(),
            "batches": total_batches,
            "mean_batch_size": (
                batched_samples / total_batches if total_batches else 0.0
            ),
            "batch_size_distribution": {
                str(size): count for size, count in batches.items()
            },
        }


class MetricsRegistry:
    """Thread-safe name → :class:`ModelMetrics` map for the whole server."""

    def __init__(self):
        self._lock = threading.Lock()
        self._models: Dict[str, ModelMetrics] = {}

    def for_model(self, name: str) -> ModelMetrics:
        """Return (creating on first use) the metrics of model *name*."""
        with self._lock:
            metrics = self._models.get(name)
            if metrics is None:
                metrics = self._models[name] = ModelMetrics()
            return metrics

    def model_names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot of every model's metrics."""
        with self._lock:
            models = dict(self._models)
        return {
            "models": {name: metrics.snapshot() for name, metrics in models.items()}
        }


__all__ = ["LatencyHistogram", "ModelMetrics", "MetricsRegistry"]
