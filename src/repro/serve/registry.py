"""Model registry: versioned, hot-swappable, LRU-bounded engine residency.

A serving process typically fronts several models (one per dataset, plus
candidate versions being rolled out).  :class:`ModelRegistry` owns that
lifecycle:

* ``register`` adds a model version from a saved ``.npz`` path (loaded
  lazily on first use) or from an already-built engine/pipeline;
* ``promote`` flips which version a bare model name resolves to — the
  hot-swap primitive: in-flight requests finish on the old engine, the next
  batch resolves the new one;
* ``evict`` drops a version (or a whole model);
* at most ``max_resident`` *path-backed* engines are kept in memory; the
  least-recently-used one is compiled away and transparently reloaded from
  its file on the next request.  Engines registered without a backing path
  cannot be reloaded and are therefore pinned.
"""

from __future__ import annotations

import itertools
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.classifiers.pipeline import HDCPipeline
from repro.serve.engine import PackedInferenceEngine

ModelSource = Union[str, Path, PackedInferenceEngine, HDCPipeline]


class _Entry:
    """One registered model version."""

    __slots__ = ("version", "path", "metadata", "engine", "pinned", "last_used")

    def __init__(self, version, path, metadata, engine, pinned):
        self.version = version
        self.path = path
        self.metadata = metadata
        self.engine = engine
        self.pinned = pinned
        self.last_used = 0

    @property
    def resident(self) -> bool:
        return self.engine is not None


class ModelRegistry:
    """Thread-safe name → versioned engine resolution with an LRU cap.

    Parameters
    ----------
    max_resident:
        Maximum number of path-backed engines kept compiled in memory at
        once.  Pinned (in-memory-only) engines do not count toward the cap.
    """

    def __init__(self, max_resident: int = 4):
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.max_resident = int(max_resident)
        self._lock = threading.RLock()
        self._models: Dict[str, Dict[int, _Entry]] = {}
        self._default_version: Dict[str, int] = {}
        self._clock = itertools.count(1)

    # ------------------------------------------------------------- lifecycle
    def register(
        self,
        name: str,
        source: ModelSource,
        version: Optional[int] = None,
        promote: bool = True,
    ) -> int:
        """Add a model version; returns the version number assigned.

        ``source`` may be a saved-model path (validated now, loaded lazily),
        a compiled :class:`PackedInferenceEngine`, or a fitted
        :class:`HDCPipeline` (compiled immediately).  With ``promote=True``
        (default) the new version becomes what bare ``name`` resolves to.
        """
        path: Optional[Path] = None
        engine: Optional[PackedInferenceEngine] = None
        metadata: dict = {}
        if isinstance(source, (str, Path)):
            from repro.io import read_model_metadata

            path = Path(source)
            metadata = read_model_metadata(path)  # raises early on bad files
        elif isinstance(source, PackedInferenceEngine):
            engine = source
            metadata = dict(engine.metadata)
        elif isinstance(source, HDCPipeline):
            engine = PackedInferenceEngine(source, name=name)
            metadata = {}
        else:
            raise TypeError(
                "source must be a path, PackedInferenceEngine or HDCPipeline, "
                f"got {type(source).__name__}"
            )

        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                version = max(versions) + 1 if versions else 1
            version = int(version)
            if version in versions:
                raise ValueError(f"model {name!r} already has a version {version}")
            entry = _Entry(version, path, metadata, engine, pinned=engine is not None)
            versions[version] = entry
            if promote or name not in self._default_version:
                self._default_version[name] = version
            self._enforce_residency_cap()
            return version

    def promote(self, name: str, version: int) -> None:
        """Make *version* the default resolution for *name*."""
        with self._lock:
            entry = self._find(name, version)
            self._default_version[name] = entry.version

    def evict(self, name: str, version: Optional[int] = None) -> None:
        """Remove one version, or every version of *name* when omitted."""
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise KeyError(f"unknown model {name!r}")
            if version is None:
                del self._models[name]
                self._default_version.pop(name, None)
                return
            self._find(name, version)
            del versions[int(version)]
            if not versions:
                del self._models[name]
                self._default_version.pop(name, None)
            elif self._default_version.get(name) == int(version):
                self._default_version[name] = max(versions)

    # ------------------------------------------------------------ resolution
    def get(self, name: str, version: Optional[int] = None) -> PackedInferenceEngine:
        """Resolve (and if needed load) the engine for *name*.

        Without *version* the promoted default is returned.  Access refreshes
        the entry's LRU stamp; loading may evict the least-recently-used
        path-backed engine once more than ``max_resident`` are resident.
        """
        with self._lock:
            entry = self._find(name, version)
            entry.last_used = next(self._clock)
            if entry.engine is not None:
                return entry.engine
            path, engine_name = entry.path, f"{name}@v{entry.version}"
        # Decompressing the archive and compiling the LUT can take hundreds of
        # milliseconds; doing it outside the lock keeps every other model
        # serving.  Two threads may race to load the same entry — one load is
        # discarded, which is cheaper than serialising all traffic.
        engine = PackedInferenceEngine.from_file(path, name=engine_name)
        with self._lock:
            entry = self._find(name, version)
            if entry.engine is None:
                entry.engine = engine
                self._enforce_residency_cap()
            return entry.engine

    def default_version(self, name: str) -> int:
        """The version bare *name* currently resolves to (the promoted one).

        The serving cache keys on this so a ``promote`` naturally invalidates
        every cached prediction of the superseded version.
        """
        with self._lock:
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            return self._default_version[name]

    def resolver(self, name: str, version: Optional[int] = None):
        """A zero-argument callable resolving the engine on every call.

        Hand this to :class:`~repro.serve.batching.BatchScheduler` so batches
        always run on the currently promoted version.
        """
        return lambda: self.get(name, version)

    # --------------------------------------------------------------- queries
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def list_models(self) -> List[dict]:
        """JSON-ready listing of every registered version."""
        with self._lock:
            rows = []
            for name in sorted(self._models):
                for version, entry in sorted(self._models[name].items()):
                    rows.append(
                        {
                            "name": name,
                            "version": version,
                            "default": self._default_version.get(name) == version,
                            "resident": entry.resident,
                            "path": str(entry.path) if entry.path else None,
                            "strategy": entry.metadata.get("strategy"),
                            "dimension": entry.metadata.get(
                                "dimension",
                                entry.engine.dimension if entry.engine else None,
                            ),
                            "num_classes": entry.metadata.get(
                                "num_classes",
                                entry.engine.num_classes if entry.engine else None,
                            ),
                            # Ensemble models carry their per-class sub-model
                            # count (None for single-hypervector strategies),
                            # so operators can see the K*N residency cost of
                            # a SearcHD bank before it is promoted.
                            "models_per_class": entry.metadata.get("models_per_class"),
                        }
                    )
            return rows

    # -------------------------------------------------------------- internals
    def _find(self, name: str, version: Optional[int] = None) -> _Entry:
        versions = self._models.get(name)
        if not versions:
            raise KeyError(f"unknown model {name!r}")
        if version is None:
            version = self._default_version[name]
        entry = versions.get(int(version))
        if entry is None:
            raise KeyError(f"model {name!r} has no version {version}")
        return entry

    def _enforce_residency_cap(self) -> None:
        evictable = [
            entry
            for versions in self._models.values()
            for entry in versions.values()
            if entry.resident and not entry.pinned
        ]
        excess = len(evictable) - self.max_resident
        if excess <= 0:
            return
        evictable.sort(key=lambda entry: entry.last_used)
        for entry in evictable[:excess]:
            entry.engine = None  # reloaded from entry.path on next access


__all__ = ["ModelRegistry"]
